"""Setuptools shim.

The offline environment ships an older setuptools/pip without the ``wheel``
package, so PEP 660 editable installs (which build a wheel) fail.  Keeping a
``setup.py`` lets ``pip install -e . --no-build-isolation --no-use-pep517``
fall back to the legacy ``setup.py develop`` path, which works offline.  All
project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
