"""Figure 3 benchmark: watch time versus quality tier and stall time."""

import numpy as np

from repro.experiments import fig03_watchtime_qos


def test_fig03_watchtime_qos(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig03_watchtime_qos.run(substrate=substrate), rounds=1, iterations=1
    )
    print("\nFigure 3 — normalized watch time")
    for name, value in zip(result.tier_names, result.watch_time_by_tier):
        print(f"  tier {name}: {value:.3f}")
    for edge, value in zip(result.stall_bins_s, result.watch_time_by_stall):
        print(f"  stall >= {edge:>4.1f}s: {value:.3f}")
    finite = result.watch_time_by_tier[np.isfinite(result.watch_time_by_tier)]
    assert np.nanmax(finite) == 1.0
    # Heavier stalling sessions watch less than stall-free ones.
    stall_series = result.watch_time_by_stall
    finite_stall = stall_series[np.isfinite(stall_series)]
    assert finite_stall[-1] <= finite_stall[0] + 1e-9
