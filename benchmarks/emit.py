"""Machine-readable benchmark results.

Every benchmark that prints a table also calls :func:`emit_bench` to write a
``BENCH_<name>.json`` file — one JSON document per benchmark with the
configuration and the measured rows — so the repo's performance trajectory
can be tracked across commits and CI runs instead of living in scrollback.

The output directory defaults to the current working directory and can be
redirected with ``BENCH_OUTPUT_DIR``.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import numpy as np


def _to_builtin(value):
    """JSON fallback for numpy scalars/arrays."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)!r}")


def host_metadata() -> dict:
    """Host fingerprint stamped into every benchmark document.

    Baselines are only comparable across machines when the machine is
    recorded: interpreter and numpy versions move the numbers, and so do
    core count and platform.
    """
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def _obs_summary() -> dict | None:
    """Condensed observability snapshot, when the run was profiled."""
    try:
        from repro import obs
    except ImportError:  # benchmarks runnable without src/ on the path
        return None
    collector = obs.active()
    if collector is None:
        return None
    snapshot = collector.snapshot()
    return {
        "spans": snapshot["spans"],
        "counters": snapshot["metrics"]["counters"],
        "peak_rss_bytes": obs.peak_rss_bytes(),
    }


def emit_bench(name: str, results, config: dict | None = None) -> Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``results`` is the benchmark's row list (or any JSON-serialisable
    structure); ``config`` records the knobs the numbers were measured under.
    The document is stamped with :func:`host_metadata`, and — when the
    process has observability enabled — an ``obs`` summary (span tree,
    counters, peak RSS).
    """
    out_dir = Path(os.environ.get("BENCH_OUTPUT_DIR", "."))
    out_dir.mkdir(parents=True, exist_ok=True)
    path = out_dir / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "host": host_metadata(),
        "config": config or {},
        "results": results,
    }
    obs_summary = _obs_summary()
    if obs_summary is not None:
        document["obs"] = obs_summary
    path.write_text(json.dumps(document, indent=2, default=_to_builtin) + "\n")
    return path
