"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table/figure of the paper at laptop scale and
prints the same rows/series the paper reports.  ``benchmark.pedantic`` with a
single round is used throughout: the interesting output is the experiment's
result (and its wall-clock), not statistical timing of repeated runs.
"""

from __future__ import annotations

import pytest

from repro.experiments.common import SubstrateConfig, build_substrate


@pytest.fixture(scope="session")
def substrate():
    """The shared experiment substrate (population, logs, trained predictor)."""
    return build_substrate(SubstrateConfig())


@pytest.fixture(scope="session")
def ab_result(substrate):
    """The AA/AB campaign shared by the Figure 12–15 benchmarks."""
    from repro.experiments import fig12_ab_test

    return fig12_ab_test.run(substrate=substrate)
