"""Figure 9 benchmark: exit-rate predictor across dataset compositions and sampling."""

from repro.experiments import fig09_predictor
from repro.experiments.common import format_table


def test_fig09_predictor(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig09_predictor.run(substrate=substrate, seeds=(0, 1, 2)),
        rounds=1,
        iterations=1,
    )
    rows = []
    for composition, summary in result.by_composition.items():
        rows.append(
            [
                composition,
                f"{summary.mean['accuracy']:.3f}",
                f"{summary.mean['precision']:.3f}",
                f"{summary.mean['recall']:.3f}",
                f"{summary.mean['f1']:.3f}",
            ]
        )
    rows.append(
        [
            "stall (unbalanced)",
            f"{result.stall_unbalanced.mean['accuracy']:.3f}",
            f"{result.stall_unbalanced.mean['precision']:.3f}",
            f"{result.stall_unbalanced.mean['recall']:.3f}",
            f"{result.stall_unbalanced.mean['f1']:.3f}",
        ]
    )
    print("\nFigure 9 — exit-rate predictor (mean over seeds)")
    print(format_table(["dataset", "acc", "prec", "recall", "f1"], rows))
    stall = result.by_composition["stall"].mean
    all_metrics = result.by_composition["all"].mean
    event = result.by_composition["event"].mean
    # Stall-only training isolates QoS-driven exits: best precision and F1.
    assert stall["precision"] > event["precision"] > all_metrics["precision"]
    assert stall["f1"] > all_metrics["f1"]
    # Removing balanced sampling costs recall (Figure 9b).
    assert result.recall_drop_without_balancing > 0
