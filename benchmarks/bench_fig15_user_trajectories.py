"""Figure 15 benchmark: per-user parameter trajectories."""

from repro.experiments import fig15_user_trajectories


def test_fig15_user_trajectories(benchmark, substrate, ab_result):
    result = benchmark.pedantic(
        lambda: fig15_user_trajectories.run(substrate=substrate, ab_result=ab_result),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 15 — per-user parameter trajectories")
    for label, trajectories in (
        ("high tolerance", result.high_tolerance),
        ("stall sensitive", result.stall_sensitive),
    ):
        for trajectory in trajectories:
            print(
                f"  [{label}] {trajectory.user_id} (tolerance {trajectory.tolerance_s:.1f}s, "
                f"{trajectory.archetype}): {len(trajectory.events)} stall events, "
                f"mean parameter {trajectory.mean_parameter:.3f}, "
                f"final {trajectory.final_parameter:.3f}"
            )
    print(f"  tolerant-minus-sensitive parameter separation: {result.separation:+.3f}")
    assert len(result.high_tolerance) == 2
    assert len(result.stall_sensitive) == 2
    for trajectory in result.high_tolerance + result.stall_sensitive:
        for event in trajectory.events:
            assert event.stall_time > 0
            assert 0.0 <= event.parameter_after <= 1.0
