"""Figure 4 benchmark: exit rate versus quality, smoothness and stall time."""

import numpy as np

from repro.experiments import fig04_exit_rate_qos


def test_fig04_exit_rate_qos(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig04_exit_rate_qos.run(substrate=substrate), rounds=1, iterations=1
    )
    print("\nFigure 4 — segment-level exit rates")
    for name, value in zip(result.tier_names, result.exit_rate_by_tier):
        print(f"  quality {name}: {value:.4f}")
    for granularity, value in sorted(result.exit_rate_by_switch.items()):
        print(f"  switch {granularity:+d}: {value:.4f}")
    for edge, value in zip(result.stall_bins_s, result.exit_rate_by_stall):
        print(f"  stall >= {edge:>4.1f}s: {value:.4f}")
    print(
        "  influence magnitudes — quality: "
        f"{result.quality_magnitude:.4f}, smoothness: {result.smoothness_magnitude:.4f}, "
        f"stall: {result.stall_magnitude:.4f}"
    )
    # Takeaway 1: hierarchical influence magnitudes (stall >> smoothness >= quality).
    assert result.stall_magnitude > result.smoothness_magnitude
    assert result.stall_magnitude > result.quality_magnitude
    # Stall exit rates rise with cumulative stall time.
    stall_series = result.exit_rate_by_stall
    finite = stall_series[np.isfinite(stall_series)]
    assert finite[-1] > finite[0]
