"""Figure 5 benchmark: personalized perception of stall time."""

import numpy as np

from repro.experiments import fig05_personalized_stall


def test_fig05_personalized_stall(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig05_personalized_stall.run(substrate=substrate), rounds=1, iterations=1
    )
    print("\nFigure 5 — personalized stall perception")
    print(f"  users with tolerance < 1s: {result.fraction_low_tolerance * 100:.1f}%")
    print(f"  users tolerating > 5s: {result.fraction_above_5s * 100:.1f}%")
    for name, curve in result.example_curves.items():
        print(f"  example {name}: exit prob at 2s={curve[8]:.2f}, at 6s={curve[24]:.2f}")
    assert result.tolerance_cdf[-1] == 1.0
    assert set(result.example_curves) >= {"sensitive", "threshold"}
    # Sensitive users exit more readily than insensitive ones at a moderate stall.
    if "insensitive" in result.example_curves:
        assert np.max(result.example_curves["sensitive"]) > np.max(
            result.example_curves["insensitive"]
        )
