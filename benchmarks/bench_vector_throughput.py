"""Vector-vs-scalar backend throughput: sessions/second at N ∈ {1, 64, 1024}.

The workload is the fleet shape: N homogeneous HYB sessions (same video and
bandwidth trace) with per-user QoS-aware exit models and per-session `Philox`
RNG substreams.  Both backends execute the *same* spec batch — the vector
backend's output is segment-for-segment identical (verified here before
timing), so the comparison is purely about execution strategy.

Run directly (CI smoke uses ``VECTOR_BENCH_SIZES`` for a tiny run)::

    PYTHONPATH=src python benchmarks/bench_vector_throughput.py
    PYTHONPATH=src VECTOR_BENCH_SIZES=1,64 python benchmarks/bench_vector_throughput.py

or through pytest alongside the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_vector_throughput.py -q -s
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from emit import emit_bench
from repro.abr.hyb import HYB
from repro.experiments.common import format_table
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.session import SessionConfig
from repro.sim.bandwidth import StationaryTraceGenerator
from repro.sim.video import Video
from repro.users.population import UserPopulation

DEFAULT_SIZES = (1, 64, 1024)
#: Acceptance floor for the struct-of-arrays engine at the largest batch.
MIN_SPEEDUP_AT_1024 = 5.0


def _build_specs(num_sessions: int) -> list[SessionSpec]:
    population = UserPopulation.generate(
        num_sessions, seed=7, bandwidth_median_kbps=3000.0
    )
    video = Video(num_segments=60, seed=3)
    trace = StationaryTraceGenerator(2500.0, 600.0).generate(
        100, np.random.default_rng(0)
    )
    abr = HYB()
    seeds = spawn_session_seeds(0, num_sessions)
    return [
        SessionSpec(
            abr=abr,
            video=video,
            trace=trace,
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
        )
        for i, profile in enumerate(population)
    ]


def _time_backend(backend_name: str, specs: list[SessionSpec]) -> tuple[float, list]:
    backend = get_backend(backend_name)
    config = SessionConfig()
    backend.run_batch(specs[:1], config)  # warm-up (imports, caches)
    start = time.perf_counter()
    traces = backend.run_batch(specs, config)
    return time.perf_counter() - start, traces


def run_bench(sizes=DEFAULT_SIZES, check_speedup: bool = True) -> list[dict]:
    """Measure both backends at each batch size; returns one row per size."""
    rows = []
    for num_sessions in sizes:
        specs = _build_specs(num_sessions)
        scalar_time, scalar_traces = _time_backend("scalar", specs)
        vector_time, vector_traces = _time_backend("vector", specs)
        assert all(
            s.records == v.records for s, v in zip(scalar_traces, vector_traces)
        ), "vector backend diverged from scalar traces"
        num_segments = sum(len(trace) for trace in scalar_traces)
        rows.append(
            {
                "sessions": num_sessions,
                "segments": num_segments,
                "scalar_sps": num_sessions / scalar_time,
                "vector_sps": num_sessions / vector_time,
                "speedup": scalar_time / vector_time,
            }
        )

    print("\nvector backend throughput (identical traces, same spec batch):")
    print(
        format_table(
            ["N", "segments", "scalar sessions/s", "vector sessions/s", "speedup"],
            [
                [
                    row["sessions"],
                    row["segments"],
                    f"{row['scalar_sps']:.0f}",
                    f"{row['vector_sps']:.0f}",
                    f"{row['speedup']:.1f}x",
                ]
                for row in rows
            ],
        )
    )
    if check_speedup:
        for row in rows:
            if row["sessions"] >= 1024:
                assert row["speedup"] >= MIN_SPEEDUP_AT_1024, (
                    f"vector backend only {row['speedup']:.2f}x at "
                    f"N={row['sessions']} (need >= {MIN_SPEEDUP_AT_1024}x)"
                )
    emit_bench(
        "vector_throughput",
        rows,
        config={"sizes": [row["sessions"] for row in rows]},
    )
    return rows


def _sizes_from_env() -> tuple[int, ...]:
    raw = os.environ.get("VECTOR_BENCH_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def test_vector_backend_throughput(benchmark):
    """Pytest entry point (sizes overridable via VECTOR_BENCH_SIZES)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    run_bench(_sizes_from_env())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated batch sizes (default: env VECTOR_BENCH_SIZES or 1,64,1024)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the >=5x speedup assertion at N>=1024",
    )
    args = parser.parse_args()
    sizes = (
        tuple(int(part) for part in args.sizes.split(",") if part.strip())
        if args.sizes
        else _sizes_from_env()
    )
    run_bench(sizes, check_speedup=not args.no_assert)


if __name__ == "__main__":
    main()
