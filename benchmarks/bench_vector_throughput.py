"""Vector-vs-scalar backend throughput: sessions/second at N ∈ {1, 64, 1024}.

Two workloads are measured, both fleet-shaped with per-user QoS-aware exit
models and per-session `Philox` RNG substreams, and both verified
segment-for-segment identical across backends before their timings count:

* **plain** — N homogeneous HYB sessions (the PR-2 workload), gating the
  raw struct-of-arrays engine at >= 5x over scalar at N=1024;
* **lingxi** — N optimization-enabled ``LingXi(HYB)`` sessions over a
  heterogeneous bandwidth mix (only the low-bandwidth tail stalls enough to
  trigger per-user Monte-Carlo optimization, like a production fleet),
  gating the batched control plane — struct-of-arrays controller state plus
  cross-session lockstep evaluations — at >= 3x over scalar at N=1024.

Run directly (CI smoke uses ``VECTOR_BENCH_SIZES`` / ``LINGXI_BENCH_SIZES``
for a tiny run)::

    PYTHONPATH=src python benchmarks/bench_vector_throughput.py
    PYTHONPATH=src VECTOR_BENCH_SIZES=1,64 LINGXI_BENCH_SIZES=64 \
        python benchmarks/bench_vector_throughput.py

or through pytest alongside the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_vector_throughput.py -q -s
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from emit import emit_bench
from repro.abr.hyb import HYB
from repro.core.controller import ControllerConfig, LingXiABR, LingXiController
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig
from repro.core.parameter_space import ParameterSpace
from repro.core.triggers import TriggerPolicy
from repro.experiments.common import format_table
from repro.fleet import BatchedMonteCarloEvaluator
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.session import SessionConfig
from repro.sim.bandwidth import StationaryTraceGenerator
from repro.sim.video import Video
from repro.users.population import UserPopulation

DEFAULT_SIZES = (1, 64, 1024)
DEFAULT_LINGXI_SIZES = (64, 1024)
#: Acceptance floor for the struct-of-arrays engine at the largest batch.
MIN_SPEEDUP_AT_1024 = 5.0
#: Acceptance floor for the batched LingXi control plane at the largest batch.
MIN_LINGXI_SPEEDUP_AT_1024 = 3.0


def _build_specs(num_sessions: int) -> list[SessionSpec]:
    population = UserPopulation.generate(
        num_sessions, seed=7, bandwidth_median_kbps=3000.0
    )
    video = Video(num_segments=60, seed=3)
    trace = StationaryTraceGenerator(2500.0, 600.0).generate(
        100, np.random.default_rng(0)
    )
    abr = HYB()
    seeds = spawn_session_seeds(0, num_sessions)
    return [
        SessionSpec(
            abr=abr,
            video=video,
            trace=trace,
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
        )
        for i, profile in enumerate(population)
    ]


def _time_backend(backend_name: str, specs: list[SessionSpec]) -> tuple[float, list]:
    backend = get_backend(backend_name)
    config = SessionConfig()
    backend.run_batch(specs[:1], config)  # warm-up (imports, caches)
    start = time.perf_counter()
    traces = backend.run_batch(specs, config)
    return time.perf_counter() - start, traces


_LINGXI_TRACE_MEANS = (
    1000.0,
    1600.0,
    2200.0,
    3000.0,
    4200.0,
    6000.0,
    8000.0,
    2600.0,
)


def _build_lingxi_specs(num_sessions: int, predictor) -> list[SessionSpec]:
    """Optimization-enabled fleet mix: per-user controllers, mixed bandwidth.

    Eight stationary trace families from deep-tail 1 Mbps to 8 Mbps: the
    low-bandwidth tail stalls and triggers per-user optimization, the fast
    users get pruned — the production-like activation pattern whose control
    plane this benchmark gates.
    """
    population = UserPopulation.generate(
        num_sessions, seed=7, bandwidth_median_kbps=3000.0
    )
    video = Video(num_segments=72, seed=3)
    rng = np.random.default_rng(0)
    traces = [
        StationaryTraceGenerator(mean, mean * 0.25).generate(100, rng)
        for mean in _LINGXI_TRACE_MEANS
    ]
    seeds = spawn_session_seeds(0, num_sessions)
    specs = []
    for i, profile in enumerate(population):
        controller = LingXiController(
            parameter_space=ParameterSpace.for_hyb(),
            predictor=predictor,
            monte_carlo=MonteCarloConfig(num_samples=2, max_sample_duration_s=12.0),
            trigger=TriggerPolicy(),
            config=ControllerConfig(mode="fixed", max_sample_times=3, seed=1000 + i),
        )
        controller.evaluator = BatchedMonteCarloEvaluator(
            predictor, config=controller.evaluator.config, pruning=controller.pruning
        )
        specs.append(
            SessionSpec(
                abr=LingXiABR(HYB(), controller),
                video=video,
                trace=traces[i % len(traces)],
                exit_model=profile.exit_model(),
                seed=seeds[i],
                user_id=profile.user_id,
            )
        )
    return specs


def _print_rows(title: str, rows: list[dict]) -> None:
    print(f"\n{title}")
    print(
        format_table(
            ["N", "segments", "scalar sessions/s", "vector sessions/s", "speedup"],
            [
                [
                    row["sessions"],
                    row["segments"],
                    f"{row['scalar_sps']:.0f}",
                    f"{row['vector_sps']:.0f}",
                    f"{row['speedup']:.1f}x",
                ]
                for row in rows
            ],
        )
    )


def run_bench(sizes=DEFAULT_SIZES, check_speedup: bool = True) -> list[dict]:
    """Measure both backends at each batch size; returns one row per size."""
    rows = []
    for num_sessions in sizes:
        specs = _build_specs(num_sessions)
        scalar_time, scalar_traces = _time_backend("scalar", specs)
        vector_time, vector_traces = _time_backend("vector", specs)
        assert all(
            s.records == v.records for s, v in zip(scalar_traces, vector_traces)
        ), "vector backend diverged from scalar traces"
        num_segments = sum(len(trace) for trace in scalar_traces)
        rows.append(
            {
                "workload": "plain",
                "sessions": num_sessions,
                "segments": num_segments,
                "scalar_sps": num_sessions / scalar_time,
                "vector_sps": num_sessions / vector_time,
                "speedup": scalar_time / vector_time,
            }
        )

    _print_rows(
        "vector backend throughput (identical traces, same spec batch):", rows
    )
    if check_speedup:
        for row in rows:
            if row["sessions"] >= 1024:
                assert row["speedup"] >= MIN_SPEEDUP_AT_1024, (
                    f"vector backend only {row['speedup']:.2f}x at "
                    f"N={row['sessions']} (need >= {MIN_SPEEDUP_AT_1024}x)"
                )
    return rows


def run_lingxi_bench(
    sizes=DEFAULT_LINGXI_SIZES, check_speedup: bool = True, repeats: int = 2
) -> list[dict]:
    """Measure the batched LingXi control plane against the scalar loop.

    Controllers are stateful, so each timed run gets a freshly built
    (deterministic, identical) spec batch; per backend the best of
    ``repeats`` runs counts, which keeps the gate stable against scheduler
    noise.  Trace equality *and* per-controller activation-history equality
    are asserted before any timing is trusted.
    """
    predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
    rows = []
    for num_sessions in sizes:
        get_backend("vector").run_batch(
            _build_lingxi_specs(min(num_sessions, 16), predictor)
        )  # warm-up
        scalar_time = float("inf")
        vector_time = float("inf")
        scalar_specs = vector_specs = None
        scalar_traces = vector_traces = None
        for _ in range(repeats):
            scalar_specs = _build_lingxi_specs(num_sessions, predictor)
            start = time.perf_counter()
            scalar_traces = get_backend("scalar").run_batch(scalar_specs)
            scalar_time = min(scalar_time, time.perf_counter() - start)
            vector_specs = _build_lingxi_specs(num_sessions, predictor)
            start = time.perf_counter()
            vector_traces = get_backend("vector").run_batch(vector_specs)
            vector_time = min(vector_time, time.perf_counter() - start)
        assert all(
            s.records == v.records for s, v in zip(scalar_traces, vector_traces)
        ), "vector backend diverged from scalar traces (lingxi)"
        assert all(
            s.abr.controller.history == v.abr.controller.history
            for s, v in zip(scalar_specs, vector_specs)
        ), "vector controller host diverged from scalar activations"
        activations = sum(
            len(spec.abr.controller.history) for spec in scalar_specs
        )
        rows.append(
            {
                "workload": "lingxi",
                "sessions": num_sessions,
                "segments": sum(len(trace) for trace in scalar_traces),
                "activations": activations,
                "scalar_sps": num_sessions / scalar_time,
                "vector_sps": num_sessions / vector_time,
                "speedup": scalar_time / vector_time,
            }
        )

    _print_rows(
        "LingXi-enabled batch throughput (batched control plane vs scalar):", rows
    )
    if check_speedup:
        for row in rows:
            if row["sessions"] >= 1024:
                assert row["speedup"] >= MIN_LINGXI_SPEEDUP_AT_1024, (
                    f"batched LingXi control plane only {row['speedup']:.2f}x at "
                    f"N={row['sessions']} (need >= {MIN_LINGXI_SPEEDUP_AT_1024}x)"
                )
            assert row["activations"] > 0, "workload never triggered optimization"
    return rows


def run_all(sizes, lingxi_sizes, check_speedup: bool = True) -> list[dict]:
    """Both workloads + one combined ``BENCH_vector_throughput.json``."""
    rows = run_bench(sizes, check_speedup=check_speedup)
    rows += run_lingxi_bench(lingxi_sizes, check_speedup=check_speedup)
    emit_bench(
        "vector_throughput",
        rows,
        config={
            "sizes": list(sizes),
            "lingxi_sizes": list(lingxi_sizes),
            "min_speedup_at_1024": MIN_SPEEDUP_AT_1024,
            "min_lingxi_speedup_at_1024": MIN_LINGXI_SPEEDUP_AT_1024,
        },
    )
    return rows


def _sizes_from_env() -> tuple[int, ...]:
    raw = os.environ.get("VECTOR_BENCH_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _lingxi_sizes_from_env() -> tuple[int, ...]:
    raw = os.environ.get("LINGXI_BENCH_SIZES")
    if not raw:
        return DEFAULT_LINGXI_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def test_vector_backend_throughput(benchmark):
    """Pytest entry point (sizes overridable via VECTOR_BENCH_SIZES)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    run_all(_sizes_from_env(), _lingxi_sizes_from_env())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated batch sizes (default: env VECTOR_BENCH_SIZES or 1,64,1024)",
    )
    parser.add_argument(
        "--lingxi-sizes",
        default=None,
        help="comma-separated LingXi batch sizes (default: env LINGXI_BENCH_SIZES or 64,1024)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the speedup assertions at N>=1024",
    )
    args = parser.parse_args()
    sizes = (
        tuple(int(part) for part in args.sizes.split(",") if part.strip())
        if args.sizes
        else _sizes_from_env()
    )
    lingxi_sizes = (
        tuple(int(part) for part in args.lingxi_sizes.split(",") if part.strip())
        if args.lingxi_sizes
        else _lingxi_sizes_from_env()
    )
    run_all(sizes, lingxi_sizes, check_speedup=not args.no_assert)


if __name__ == "__main__":
    main()
