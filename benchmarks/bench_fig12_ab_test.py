"""Figure 12 benchmark: 10-day difference-in-differences A/B campaign."""


def test_fig12_ab_test(benchmark, ab_result):
    result = benchmark.pedantic(lambda: ab_result, rounds=1, iterations=1)
    print("\nFigure 12 — difference-in-differences A/B test")
    print("  day  group      watch_time  bitrate  stall_s_per_h")
    for control, treatment in zip(result.control_daily, result.treatment_daily):
        print(
            f"  {control.day + 1:>3}  control    {control.total_watch_time:>10.0f}  "
            f"{control.mean_bitrate_kbps:>7.0f}  {control.stall_seconds_per_hour:>12.2f}"
        )
        print(
            f"  {treatment.day + 1:>3}  treatment  {treatment.total_watch_time:>10.0f}  "
            f"{treatment.mean_bitrate_kbps:>7.0f}  {treatment.stall_seconds_per_hour:>12.2f}"
        )
    print("  " + result.watch_time.summary())
    print("  " + result.bitrate.summary())
    print("  " + result.stall_time.summary())
    assert len(result.control_daily) == result.days_pre + result.days_post
    # Watch time (the optimization target) should not regress after deployment.
    assert result.watch_time.effect > -0.05
