"""Figure 13 benchmark: learned beta and stall change per bandwidth bin."""

import numpy as np

from repro.experiments import fig13_bandwidth_bins


def test_fig13_bandwidth_bins(benchmark, substrate, ab_result):
    result = benchmark.pedantic(
        lambda: fig13_bandwidth_bins.run(substrate=substrate, ab_result=ab_result),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 13 — LingXi across bandwidth regimes")
    for label, beta, std, stall in zip(
        result.bin_labels, result.mean_beta, result.std_beta, result.stall_change_percent
    ):
        print(
            f"  {label:>12}: beta {beta:.3f} ± {std:.3f}, stall change {stall:+.1f}%"
        )
    finite_beta = [b for b in result.mean_beta if np.isfinite(b)]
    assert all(0.4 <= b <= 1.0 for b in finite_beta)
    # The long tail (<2 Mbps) must see a stall-time reduction.
    assert result.low_bandwidth_stall_change < 0
    # Learned beta in the top bandwidth bin is at least as high as in the lowest.
    if np.isfinite(result.mean_beta[0]) and np.isfinite(result.mean_beta[-1]):
        assert result.mean_beta[-1] >= result.mean_beta[0] - 1e-6
