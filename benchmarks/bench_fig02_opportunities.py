"""Figure 2 benchmark: bandwidth CDF and daily stall-count CDF."""

import numpy as np

from repro.experiments import fig02_opportunities


def test_fig02_opportunities(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig02_opportunities.run(substrate=substrate), rounds=1, iterations=1
    )
    print("\nFigure 2 — optimization opportunities")
    print(f"  max encoding bitrate: {result.max_bitrate_mbps:.1f} Mbps")
    print(f"  users below max bitrate: {result.fraction_below_max_bitrate * 100:.1f}%")
    print(f"  stall-free user-days: {result.fraction_stall_free * 100:.1f}%")
    print(f"  user-days with <=2 stalls: {result.fraction_at_most_two_stalls * 100:.1f}%")
    for quantile in (0.1, 0.5, 0.9):
        index = int(quantile * (result.bandwidth_mbps_sorted.size - 1))
        print(f"  bandwidth p{int(quantile * 100)}: {result.bandwidth_mbps_sorted[index]:.1f} Mbps")
    # Long tail exists but is a minority, as in Figure 2(a).
    assert 0.02 <= result.fraction_below_max_bitrate <= 0.5
    assert result.fraction_at_most_two_stalls >= result.fraction_stall_free
    assert np.all(np.diff(result.bandwidth_cdf) >= 0)
