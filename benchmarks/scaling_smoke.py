"""Multicore scaling smoke: warm pool with 4 workers vs inline 1 worker.

CI runs this on a multi-core runner to catch the failure mode the persistent
pool was built to eliminate: parallel dispatch whose per-task overhead
(process spawn, task pickling, result transfer) eats the parallelism.  The
same fleet day is timed twice — inline single-shard, and 4 shards on an
already-running 4-worker pool — and the pooled run must be at least
``--min-speedup`` times faster (best of three each, identical outputs are
asserted before any timing counts).

On hosts with fewer than 4 cores the four workers time-slice one core, so
the speedup assertion is skipped (the timings are still printed); pass
``--force-assert`` to enforce it anyway.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), os.pardir, "src"))

from repro.fleet import (  # noqa: E402
    FleetConfig,
    FleetOrchestrator,
    shared_pool,
    shutdown_shared_pools,
)
from repro.sim.video import VideoLibrary  # noqa: E402
from repro.users.population import UserPopulation  # noqa: E402


def best_wall_time(orchestrator, population, library, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        start = time.perf_counter()
        orchestrator.run(population, library)
        times.append(time.perf_counter() - start)
    return min(times)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--sessions-per-user", type=int, default=3)
    parser.add_argument("--trace-length", type=int, default=100)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=1.5,
        help="required pooled-vs-inline speedup on multi-core hosts",
    )
    parser.add_argument(
        "--force-assert",
        action="store_true",
        help="enforce --min-speedup even when the host has fewer cores "
        "than --workers",
    )
    args = parser.parse_args(argv)

    population = UserPopulation.generate(
        args.users, seed=0, bandwidth_median_kbps=6000.0
    )
    library = VideoLibrary(
        num_videos=8, mean_duration=40.0, std_duration=15.0, seed=1
    )

    def config(shards: int) -> FleetConfig:
        return FleetConfig(
            num_shards=shards,
            num_workers=shards,
            sessions_per_user=args.sessions_per_user,
            trace_length=args.trace_length,
            seed=0,
        )

    # Inline reference: single shard, no pool.
    inline = FleetOrchestrator(config(1))
    inline_result = inline.run(population, library)
    inline_time = best_wall_time(inline, population, library, args.rounds)

    # Pooled: pool pre-started, first run primes the worker object caches.
    pool = shared_pool(args.workers)
    try:
        pooled = FleetOrchestrator(config(args.workers), pool=pool)
        pooled_result = pooled.run(population, library)
        pooled_time = best_wall_time(pooled, population, library, args.rounds)
    finally:
        shutdown_shared_pools()

    if pooled_result.metrics.num_sessions != inline_result.metrics.num_sessions:
        raise SystemExit(
            "pooled run produced a different session count: "
            f"{pooled_result.metrics.num_sessions} vs "
            f"{inline_result.metrics.num_sessions}"
        )

    speedup = inline_time / pooled_time
    cpu_count = os.cpu_count() or 1
    sessions = inline_result.metrics.num_sessions
    print(
        f"scaling smoke — {sessions} sessions, best of {args.rounds}: "
        f"inline {inline_time:.2f}s, "
        f"{args.workers}-worker warm pool {pooled_time:.2f}s "
        f"-> {speedup:.2f}x (host cpu_count={cpu_count})"
    )
    if cpu_count < args.workers and not args.force_assert:
        print(
            f"host has {cpu_count} core(s) for {args.workers} workers; "
            f"speedup floor of {args.min_speedup:.1f}x not enforced"
        )
        return
    if speedup < args.min_speedup:
        raise SystemExit(
            f"warm {args.workers}-worker pool only {speedup:.2f}x faster than "
            f"inline (floor {args.min_speedup:.1f}x)"
        )


if __name__ == "__main__":
    main()
