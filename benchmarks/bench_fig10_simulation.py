"""Figure 10 benchmark: pre-deployment simulation (fixed parameters vs LingXi)."""

import pytest

from repro.experiments import fig10_simulation


@pytest.mark.parametrize(
    "baseline,user_modeling",
    [
        ("hyb", "rule"),
        ("robust_mpc", "rule"),
        ("robust_mpc", "data"),
        ("pensieve", "rule"),
    ],
)
def test_fig10_simulation(benchmark, substrate, baseline, user_modeling):
    result = benchmark.pedantic(
        lambda: fig10_simulation.run(
            baseline=baseline, user_modeling=user_modeling, substrate=substrate
        ),
        rounds=1,
        iterations=1,
    )
    print(f"\nFigure 10 — {baseline} / {user_modeling}-based user modelling")
    for key, value in sorted(result.completion_by_fixed.items()):
        print(f"  fixed {key}: completion {value * 100:.1f}%")
    print(f"  best fixed: {result.best_fixed * 100:.1f}%  mean fixed: {result.mean_fixed * 100:.1f}%")
    print(f"  LingXi(F): {result.completion_lingxi_fixed * 100:.1f}%")
    print(f"  LingXi(B): {result.completion_lingxi_bayesian * 100:.1f}%")
    assert 0.0 <= result.best_fixed <= 1.0
    assert 0.0 <= result.completion_lingxi_bayesian <= 1.0
