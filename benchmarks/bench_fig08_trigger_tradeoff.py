"""Figure 8 benchmark: stall counts per bandwidth bin and recall versus history."""

from repro.experiments import fig08_trigger_tradeoff


def test_fig08_trigger_tradeoff(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig08_trigger_tradeoff.run(substrate=substrate), rounds=1, iterations=1
    )
    print("\nFigure 8 — trigger threshold trade-off")
    for label, (values, cdf) in result.stall_count_cdfs.items():
        zero_fraction = float(cdf[(values <= 0).sum() - 1]) if (values <= 0).any() else 0.0
        print(f"  {label}: stall-free user-days {zero_fraction * 100:.0f}%")
    for count, recall in zip(result.history_counts, result.recall_by_history):
        print(f"  accumulated stalls >= {count}: recall {recall:.3f}")
    assert len(result.recall_by_history) == len(result.history_counts)
    finite = [r for r in result.recall_by_history if r == r]
    assert all(0.0 <= r <= 1.0 for r in finite)
