"""Append ``BENCH_*.json`` documents to the benchmark history ledger.

``benchmarks/history.jsonl`` accumulates one line per (commit, benchmark)
pair so the repo's performance trajectory is greppable across commits
instead of living in per-run CI artifacts.  Each line carries the commit,
the benchmark name, the measurement timestamp, the config knobs, and the
result rows; the host fingerprint is kept so numbers from different
machines are never conflated.

Usage (CI appends after the benchmark steps)::

    python benchmarks/append_history.py --results-dir bench-results
    python benchmarks/append_history.py --results-dir . --commit abc1234

Appending is idempotent per (commit, bench): re-running on the same commit
skips benchmarks already recorded, so a retried CI job never duplicates
lines.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
from pathlib import Path

DEFAULT_HISTORY = Path(__file__).resolve().parent / "history.jsonl"


def current_commit() -> str:
    """Commit hash from CI env or git; "unknown" outside both."""
    for var in ("GITHUB_SHA", "CI_COMMIT_SHA"):
        value = os.environ.get(var, "").strip()
        if value:
            return value
    try:
        return subprocess.check_output(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            text=True,
            stderr=subprocess.DEVNULL,
        ).strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"


def load_history(path: Path) -> list[dict]:
    if not path.exists():
        return []
    entries = []
    for line in path.read_text(encoding="utf-8").splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    return entries


def append_results(
    results_dir: Path,
    history_path: Path = DEFAULT_HISTORY,
    commit: str | None = None,
) -> list[dict]:
    """Append every fresh BENCH_*.json under ``results_dir``; returns them."""
    commit = commit or current_commit()
    seen = {
        (entry.get("commit"), entry.get("bench"))
        for entry in load_history(history_path)
    }
    appended: list[dict] = []
    for bench_file in sorted(results_dir.rglob("BENCH_*.json")):
        doc = json.loads(bench_file.read_text(encoding="utf-8"))
        bench = doc.get("bench") or bench_file.stem.removeprefix("BENCH_")
        if (commit, bench) in seen:
            print(f"skip {bench}: commit {commit[:12]} already recorded")
            continue
        entry = {
            "commit": commit,
            "bench": bench,
            "timestamp": doc.get("timestamp"),
            "host": doc.get("host", {}),
            "config": doc.get("config", {}),
            "results": doc.get("results", []),
        }
        appended.append(entry)
        seen.add((commit, bench))
    if appended:
        with history_path.open("a", encoding="utf-8") as handle:
            for entry in appended:
                handle.write(json.dumps(entry) + "\n")
    print(
        f"{history_path}: appended {len(appended)} entr"
        f"{'y' if len(appended) == 1 else 'ies'} for commit {commit[:12]}"
    )
    return appended


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--results-dir",
        default=".",
        help="directory searched recursively for BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--history",
        default=str(DEFAULT_HISTORY),
        help=f"history ledger to append to (default: {DEFAULT_HISTORY})",
    )
    parser.add_argument(
        "--commit",
        default=None,
        help="commit hash to stamp (default: GITHUB_SHA / CI_COMMIT_SHA / git HEAD)",
    )
    args = parser.parse_args(argv)
    results_dir = Path(args.results_dir)
    if not results_dir.is_dir():
        print(f"error: {results_dir} is not a directory", file=sys.stderr)
        return 2
    append_results(results_dir, Path(args.history), args.commit)
    return 0


if __name__ == "__main__":
    sys.exit(main())
