"""Figure 11 benchmark: chosen stall parameter versus user exit thresholds."""

import numpy as np

from repro.experiments import fig11_heatmap


def test_fig11_heatmap(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig11_heatmap.run(substrate=substrate, baselines=("robust_mpc",)),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 11 — mean chosen stall parameter per (time threshold, count threshold)")
    for baseline, matrix in result.heatmaps.items():
        print(f"  baseline {baseline}:")
        for i, time_threshold in enumerate(result.thresholds):
            row = "  ".join(
                f"{matrix[i, j]:5.2f}" if np.isfinite(matrix[i, j]) else "  n/a"
                for j in range(len(result.thresholds))
            )
            print(f"    time>={time_threshold:>3.0f}s: {row}")
    matrix = result.heatmaps["robust_mpc"]
    assert matrix.shape == (len(result.thresholds), len(result.thresholds))
    assert np.all(np.isfinite(matrix))
