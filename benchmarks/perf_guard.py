"""Performance guard: compare fresh ``BENCH_*.json`` files against baselines.

CI runs the benchmark smokes with ``BENCH_OUTPUT_DIR=bench-results`` and then
invokes this guard to compare every throughput figure against the committed
documents in ``benchmarks/baselines/``::

    python benchmarks/perf_guard.py --current bench-results \
        --baseline benchmarks/baselines --threshold 0.30

Rows are matched by their *identity fields* (str/int/bool values such as
``workload``/``sessions``/``users``), and every *throughput field* — a name
ending in ``_per_second``, ``_sps`` or ``_per_s``, or exactly ``speedup`` —
must stay within ``threshold`` of the baseline (higher is better; the guard
only fails on regressions, never on improvements).  Rows or files present on
only one side are reported but never fail the guard, so new benchmarks can
land before their baselines do.

The guard also enforces a *scaling-efficiency* rule on the fresh fleet
throughput documents (disable with ``--no-scaling-check``): the warm-pool
4-shard run must not be slower than the warm-pool 1-shard run.  If
multiprocess dispatch has any headroom at all, four workers must at least
break even against the inline path; a 4-shard run that loses to 1 shard
means the pool is re-paying a per-run cost it was built to amortise.  The
rule is strict only when the *measuring* host has 4+ cores (recorded in the
document's ``host.cpu_count``) — on smaller hosts four workers time-slice
one core and the comparison is noise, so it degrades to a note.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: A field is a throughput measurement when its name has one of these shapes.
_THROUGHPUT_SUFFIXES = ("_per_second", "_sps", "_per_s")
_THROUGHPUT_EXACT = frozenset({"speedup"})


def is_throughput_field(name: str) -> bool:
    return name in _THROUGHPUT_EXACT or name.endswith(_THROUGHPUT_SUFFIXES)


def row_identity(row: dict) -> tuple:
    """Hashable identity of a row: its non-measurement fields, sorted.

    Strings, ints and bools identify *what* was measured (workload name,
    session count, shard count); floats are the measurements themselves.
    """
    return tuple(
        (key, value)
        for key, value in sorted(row.items())
        if isinstance(value, (str, bool)) or (
            isinstance(value, int) and not is_throughput_field(key)
        )
    )


def iter_row_groups(results) -> list[tuple[str, list[dict]]]:
    """Normalise a document's ``results`` into named row-list groups.

    Benchmarks emit either a flat list of row dicts or a mapping of group
    name -> row list (e.g. ``network_throughput``'s ``overhead`` and
    ``congestion`` tables).  Anything else contributes no comparable rows.
    """
    if isinstance(results, list):
        rows = [row for row in results if isinstance(row, dict)]
        return [("", rows)] if rows else []
    if isinstance(results, dict):
        groups = []
        for name in sorted(results):
            value = results[name]
            if isinstance(value, list):
                rows = [row for row in value if isinstance(row, dict)]
                if rows:
                    groups.append((name, rows))
        return groups
    return []


def compare_documents(
    bench: str, current: dict, baseline: dict, threshold: float
) -> tuple[list[str], list[str]]:
    """Compare one benchmark document pair.

    Returns ``(failures, notes)`` — human-readable lines; any failure line
    means a throughput field regressed past the threshold.
    """
    failures: list[str] = []
    notes: list[str] = []
    baseline_groups = dict(iter_row_groups(baseline.get("results")))
    for group_name, current_rows in iter_row_groups(current.get("results")):
        baseline_rows = baseline_groups.get(group_name)
        if baseline_rows is None:
            notes.append(f"{bench}: group {group_name!r} has no baseline; skipped")
            continue
        baseline_by_id = {row_identity(row): row for row in baseline_rows}
        label = f"{bench}/{group_name}" if group_name else bench
        for row in current_rows:
            identity = row_identity(row)
            base_row = baseline_by_id.get(identity)
            row_label = " ".join(f"{k}={v}" for k, v in identity) or "<row>"
            if base_row is None:
                notes.append(f"{label}: no baseline row for ({row_label}); skipped")
                continue
            for field in sorted(row):
                if not is_throughput_field(field):
                    continue
                if field not in base_row:
                    continue
                base_value = float(base_row[field])
                value = float(row[field])
                if base_value <= 0.0:
                    continue
                floor = base_value * (1.0 - threshold)
                delta = (value - base_value) / base_value
                line = (
                    f"{label} ({row_label}) {field}: "
                    f"{value:.2f} vs baseline {base_value:.2f} ({delta:+.1%})"
                )
                if value < floor:
                    failures.append(line + f" — below -{threshold:.0%} floor")
                else:
                    notes.append(line)
    return failures, notes


def _warm_sessions_per_second(document: dict) -> float | None:
    """The warm-mode ``sessions_per_second`` of a fleet throughput document."""
    for _, rows in iter_row_groups(document.get("results")):
        for row in rows:
            if row.get("mode") == "warm" and "sessions_per_second" in row:
                return float(row["sessions_per_second"])
    return None


def check_scaling(current_dir: Path) -> tuple[list[str], list[str]]:
    """Scaling-efficiency rule: warm 4-shard must not lose to warm 1-shard.

    Returns ``(failures, notes)``.  The comparison is strict only when the
    measuring host recorded 4+ cores; on smaller hosts (or when either
    document/row is missing) it reports a note instead.
    """
    documents = {}
    for shards in (1, 4):
        path = current_dir / f"BENCH_fleet_throughput_{shards}shard.json"
        if not path.is_file():
            return [], [f"scaling: {path.name} not measured; skipped"]
        documents[shards] = json.loads(path.read_text())
    single = _warm_sessions_per_second(documents[1])
    pooled = _warm_sessions_per_second(documents[4])
    if single is None or pooled is None:
        return [], ["scaling: no warm rows in fleet throughput documents; skipped"]
    cpu_count = documents[4].get("host", {}).get("cpu_count") or 0
    line = (
        f"scaling: warm 4-shard {pooled:.2f} sessions/s vs "
        f"warm 1-shard {single:.2f} sessions/s "
        f"({pooled / single:.2f}x, host cpu_count={cpu_count})"
    )
    if pooled >= single:
        return [], [line]
    if cpu_count < 4:
        return [], [line + " — host has <4 cores, not enforced"]
    return [line + " — pooled dispatch slower than inline"], []


def run_guard(
    current_dir: Path,
    baseline_dir: Path,
    threshold: float,
    verbose: bool = True,
    scaling: bool = True,
) -> int:
    """Compare every BENCH_*.json pair; returns the number of regressions."""
    baseline_files = {p.name: p for p in sorted(baseline_dir.glob("BENCH_*.json"))}
    current_files = {p.name: p for p in sorted(current_dir.glob("BENCH_*.json"))}
    if not current_files:
        print(f"perf-guard: no BENCH_*.json files in {current_dir}", file=sys.stderr)
        return 1

    all_failures: list[str] = []
    compared = 0
    for name, path in current_files.items():
        baseline_path = baseline_files.get(name)
        if baseline_path is None:
            if verbose:
                print(f"perf-guard: {name} has no committed baseline; skipped")
            continue
        current = json.loads(path.read_text())
        baseline = json.loads(baseline_path.read_text())
        failures, notes = compare_documents(
            current.get("bench", name), current, baseline, threshold
        )
        compared += 1
        if verbose:
            for note in notes:
                print(f"  ok   {note}")
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        all_failures.extend(failures)

    if scaling:
        failures, notes = check_scaling(current_dir)
        if verbose:
            for note in notes:
                print(f"  ok   {note}")
        for failure in failures:
            print(f"  FAIL {failure}", file=sys.stderr)
        all_failures.extend(failures)

    print(
        f"perf-guard: {compared} benchmark(s) compared, "
        f"{len(all_failures)} regression(s) beyond -{threshold:.0%}"
    )
    return len(all_failures)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__.split("\n", 1)[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("bench-results"),
        help="directory holding the freshly measured BENCH_*.json files",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baselines"),
        help="directory holding the committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.30,
        help="allowed fractional throughput regression (default: 0.30)",
    )
    parser.add_argument("--quiet", action="store_true", help="only print failures")
    parser.add_argument(
        "--no-scaling-check",
        action="store_true",
        help="skip the warm 4-shard vs 1-shard scaling-efficiency rule",
    )
    args = parser.parse_args(argv)
    regressions = run_guard(
        args.current,
        args.baseline,
        args.threshold,
        verbose=not args.quiet,
        scaling=not args.no_scaling_check,
    )
    if regressions:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
