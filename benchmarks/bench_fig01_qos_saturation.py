"""Figure 1 benchmark: three fixed-objective algorithms in a 5-day A/B test."""

from repro.experiments import fig01_qos_saturation
from repro.experiments.common import format_table


def test_fig01_qos_saturation(benchmark, substrate):
    result = benchmark.pedantic(
        lambda: fig01_qos_saturation.run(substrate=substrate, days=3),
        rounds=1,
        iterations=1,
    )
    rows = result.rows()
    print("\nFigure 1 — normalized daily metrics (reference = Alg2)")
    print(format_table(["alg", "day", "bitrate", "stall", "qoe_lin", "watch_time"], rows))
    # Alg3 (quality-leaning) should deliver the highest bitrate on average.
    mean_bitrate = {name: sum(series) / len(series) for name, series in result.bitrate.items()}
    assert mean_bitrate["Alg3"] >= mean_bitrate["Alg1"] - 1e-6
