"""Longitudinal campaign throughput: days/second at N = 1,000 users.

Runs the same engagement-coupled multi-day campaign (retention-driven churn,
profile drift, new-user influx) through both backends and reports days per
second.  Because a longitudinal campaign forces the spec-batched fleet path
(``spec_batched=True``), a scalar campaign and a vector campaign execute the
*same* specs with the same per-user RNG substreams — the timing difference is
purely the engine, and the DAU series / retention decisions are verified
identical before the timings count.

Acceptance floor: the vector backend runs the N=1000 campaign **>= 3x**
faster than scalar (the churn loop and drift bookkeeping are shared
campaign-level costs, so the end-to-end factor sits below the raw engine's
~10x).

Run directly (CI smoke uses ``LONGITUDINAL_BENCH_USERS`` /
``LONGITUDINAL_BENCH_DAYS`` for a tiny run)::

    PYTHONPATH=src python benchmarks/bench_longitudinal.py
    PYTHONPATH=src LONGITUDINAL_BENCH_USERS=64 LONGITUDINAL_BENCH_DAYS=2 \
        python benchmarks/bench_longitudinal.py --no-assert
"""

from __future__ import annotations

import argparse
import os
import time

from emit import emit_bench
from repro.experiments.common import format_table
from repro.fleet import DriftConfig, LongitudinalCampaign, LongitudinalConfig
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation

DEFAULT_USERS = 1000
DEFAULT_DAYS = 2
#: Acceptance floor: vector campaign >= 3x scalar at N=1000.
MIN_SPEEDUP = 3.0


def _campaign_config(backend: str, days: int) -> LongitudinalConfig:
    return LongitudinalConfig(
        days=days,
        seed=13,
        num_shards=1,
        num_workers=0,
        sessions_per_user=2,
        trace_length=60,
        backend=backend,
        drift=DriftConfig(influx_per_day=8),
    )


def _run(backend: str, population, library, days: int):
    campaign = LongitudinalCampaign(_campaign_config(backend, days))
    start = time.perf_counter()
    result = campaign.run(population, library)
    return time.perf_counter() - start, result


def run_bench(
    num_users: int = DEFAULT_USERS,
    days: int = DEFAULT_DAYS,
    check_speedup: bool = True,
) -> dict:
    """Time both backends on the same campaign; returns the result row."""
    population = UserPopulation.generate(
        num_users, seed=7, bandwidth_median_kbps=3000.0
    )
    library = VideoLibrary(num_videos=6, mean_duration=45.0, std_duration=15.0, seed=2)

    # warm-up at a tiny size (imports, caches) before the timed runs
    warm = UserPopulation(list(population)[: min(8, num_users)])
    _run("scalar", warm, library, 1)
    _run("vector", warm, library, 1)

    scalar_time, scalar_result = _run("scalar", population, library, days)
    vector_time, vector_result = _run("vector", population, library, days)

    assert scalar_result.dau_series == vector_result.dau_series, (
        "backends diverged on DAU"
    )
    for scalar_day, vector_day in zip(scalar_result.days, vector_result.days):
        assert scalar_day.decisions == vector_day.decisions, (
            "backends diverged on retention decisions"
        )

    num_sessions = sum(len(day.result.logs) for day in scalar_result.days)
    row = {
        "users": num_users,
        "days": days,
        "sessions": num_sessions,
        "scalar_days_per_s": days / scalar_time,
        "vector_days_per_s": days / vector_time,
        "scalar_s": scalar_time,
        "vector_s": vector_time,
        "speedup": scalar_time / vector_time,
    }

    print("\nlongitudinal campaign throughput (identical DAU/retention/traces):")
    print(
        format_table(
            ["users", "days", "sessions", "scalar days/s", "vector days/s", "speedup"],
            [[
                row["users"],
                row["days"],
                row["sessions"],
                f"{row['scalar_days_per_s']:.3f}",
                f"{row['vector_days_per_s']:.3f}",
                f"{row['speedup']:.1f}x",
            ]],
        )
    )

    if check_speedup and num_users >= DEFAULT_USERS:
        assert row["speedup"] >= MIN_SPEEDUP, (
            f"vector campaign speedup {row['speedup']:.2f}x below the "
            f"{MIN_SPEEDUP}x floor at N={num_users}"
        )

    emit_bench(
        "longitudinal_throughput",
        [row],
        config={
            "users": num_users,
            "days": days,
            "sessions_per_user": 2,
            "trace_length": 60,
            "influx_per_day": 8,
            "min_speedup": MIN_SPEEDUP,
        },
    )
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--no-assert", action="store_true", help="skip the speedup floor assertion"
    )
    args = parser.parse_args()
    num_users = int(os.environ.get("LONGITUDINAL_BENCH_USERS", DEFAULT_USERS))
    days = int(os.environ.get("LONGITUDINAL_BENCH_DAYS", DEFAULT_DAYS))
    run_bench(num_users=num_users, days=days, check_speedup=not args.no_assert)


if __name__ == "__main__":
    main()
