"""Networked-vs-uncoupled vector backend: allocator overhead and congestion.

Two measurements on the same N-session HYB workload:

* **Overhead** — sessions/second of the vector backend with and without a
  shared-bottleneck topology at N ∈ {64, 1024}.  The per-slot fair-share
  allocation must stay bounded: ≤2x slowdown at N=1024 (asserted).  The
  topology is provisioned generously so the traces stay comparable in
  length (congestion changes session dynamics, not just timing).  A third
  column times the **path-aware** allocator on a 3-tier variant of the same
  topology (edges → peering → origin with a 50% CDN cache): the iterated
  per-path water-fill plus the cache draws must stay within a bounded
  multiple of the flat allocator (≤4x over uncoupled at N=1024, asserted).
* **Emergent congestion** — on a fixed hot link, mean allocated throughput
  per session must fall monotonically as concurrency rises (asserted), with
  the utilization climbing toward 1: nobody scales a trace, the collapse
  comes from the allocator dividing finite capacity.

Run directly (CI smoke uses ``NETWORK_BENCH_SIZES`` for a tiny run)::

    PYTHONPATH=src python benchmarks/bench_network_throughput.py
    PYTHONPATH=src NETWORK_BENCH_SIZES=16,64 python benchmarks/bench_network_throughput.py

or through pytest alongside the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_network_throughput.py -q -s
"""

from __future__ import annotations

import argparse
import os
import time

import numpy as np

from emit import emit_bench
from repro.abr.hyb import HYB
from repro.analytics.logs import LinkUtilizationLog
from repro.experiments.common import format_table
from repro.net import CacheModel, EdgeLink, NetworkTopology
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.bandwidth import StationaryTraceGenerator
from repro.sim.session import SessionConfig
from repro.sim.video import Video
from repro.users.population import UserPopulation

DEFAULT_SIZES = (64, 1024)
#: Acceptance ceiling: the allocator's cost at the largest batch.
MAX_SLOWDOWN_AT_1024 = 2.0
#: Ceiling for the path-aware (multi-tier) allocator over the uncoupled run.
MAX_TIERED_SLOWDOWN_AT_1024 = 4.0


def _build_specs(num_sessions: int) -> list[SessionSpec]:
    population = UserPopulation.generate(
        num_sessions, seed=7, bandwidth_median_kbps=3000.0
    )
    video = Video(num_segments=60, seed=3)
    trace = StationaryTraceGenerator(2500.0, 600.0).generate(
        100, np.random.default_rng(0)
    )
    abr = HYB()
    seeds = spawn_session_seeds(0, num_sessions)
    return [
        SessionSpec(
            abr=abr,
            video=video,
            trace=trace,
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
        )
        for i, profile in enumerate(population)
    ]


def _roomy_topology(num_sessions: int) -> NetworkTopology:
    """Eight links with headroom: exercises the allocator, not congestion."""
    per_link_sessions = max(num_sessions / 8, 1.0)
    capacity = 4000.0 * per_link_sessions
    return NetworkTopology(
        name="roomy8",
        links=tuple(EdgeLink(f"edge{i}", capacity) for i in range(8)),
    )


def _tiered_topology(num_sessions: int) -> NetworkTopology:
    """The roomy 8-edge topology with peering/origin tiers and a warm cache."""
    per_link_sessions = max(num_sessions / 8, 1.0)
    capacity = 4000.0 * per_link_sessions
    edges = tuple(
        EdgeLink(
            f"edge{i}",
            capacity,
            uplinks=(f"peer{i % 2}", "origin"),
        )
        for i in range(8)
    )
    upstream = (
        EdgeLink("peer0", capacity * 4, tier="peering"),
        EdgeLink("peer1", capacity * 4, tier="peering"),
        EdgeLink("origin", capacity * 8, tier="origin"),
    )
    return NetworkTopology(
        name="roomy8_3tier",
        links=edges + upstream,
        cache=CacheModel(hit_ratio=0.5),
    )


def _time_run(specs, network) -> float:
    backend = get_backend("vector")
    config = SessionConfig()
    backend.run_batch(specs[:1], config, network=network)  # warm-up
    start = time.perf_counter()
    backend.run_batch(specs, config, network=network)
    return time.perf_counter() - start


def run_overhead_bench(sizes=DEFAULT_SIZES, check_overhead: bool = True) -> list[dict]:
    """Networked vs uncoupled vector throughput at each batch size."""
    rows = []
    for num_sessions in sizes:
        specs = _build_specs(num_sessions)
        plain_time = _time_run(specs, None)
        networked_time = _time_run(specs, _roomy_topology(num_sessions))
        tiered_time = _time_run(specs, _tiered_topology(num_sessions))
        rows.append(
            {
                "sessions": num_sessions,
                "plain_sps": num_sessions / plain_time,
                "networked_sps": num_sessions / networked_time,
                "tiered_sps": num_sessions / tiered_time,
                "slowdown": networked_time / plain_time,
                "tiered_slowdown": tiered_time / plain_time,
            }
        )

    print("\nnetworked vector backend overhead (8-link roomy topology):")
    print(
        format_table(
            [
                "N",
                "uncoupled sessions/s",
                "networked sessions/s",
                "slowdown",
                "3-tier sessions/s",
                "3-tier slowdown",
            ],
            [
                [
                    row["sessions"],
                    f"{row['plain_sps']:.0f}",
                    f"{row['networked_sps']:.0f}",
                    f"{row['slowdown']:.2f}x",
                    f"{row['tiered_sps']:.0f}",
                    f"{row['tiered_slowdown']:.2f}x",
                ]
                for row in rows
            ],
        )
    )
    if check_overhead:
        for row in rows:
            if row["sessions"] >= 1024:
                assert row["slowdown"] <= MAX_SLOWDOWN_AT_1024, (
                    f"allocator overhead {row['slowdown']:.2f}x at "
                    f"N={row['sessions']} (need <= {MAX_SLOWDOWN_AT_1024}x)"
                )
                assert row["tiered_slowdown"] <= MAX_TIERED_SLOWDOWN_AT_1024, (
                    f"path-aware overhead {row['tiered_slowdown']:.2f}x at "
                    f"N={row['sessions']} (need <= {MAX_TIERED_SLOWDOWN_AT_1024}x)"
                )
    return rows


def run_congestion_bench(sizes=(16, 64, 256, 1024), check: bool = True) -> list[dict]:
    """Mean per-session allocation on one hot link as concurrency rises."""
    topology = NetworkTopology(
        name="hotlink", links=(EdgeLink("hot", 200_000.0),)
    )
    rows = []
    for num_sessions in sizes:
        usage = []
        get_backend("vector").run_batch(
            _build_specs(num_sessions),
            SessionConfig(),
            network=topology,
            link_usage=usage,
        )
        log = LinkUtilizationLog(usage)
        rows.append(
            {
                "sessions": num_sessions,
                "per_session_kbps": log.mean_allocated_per_session_kbps("hot"),
                "utilization": log.mean_utilization("hot"),
                "congested_slots": log.congested_slot_fraction("hot"),
            }
        )

    print("\nemergent congestion on one 200 Mbps link:")
    print(
        format_table(
            ["N", "mean kbps/session", "utilization", "congested slots"],
            [
                [
                    row["sessions"],
                    f"{row['per_session_kbps']:.0f}",
                    f"{row['utilization']:.2f}",
                    f"{row['congested_slots'] * 100:.0f}%",
                ]
                for row in rows
            ],
        )
    )
    if check:
        # Only congested sizes are comparable: below saturation every demand
        # is served in full and the busy-slot average drifts with exit
        # timing, not load.  Once the link congests, more concurrency must
        # strictly mean less per-session throughput.
        congested = [row for row in rows if row["congested_slots"] > 0.5]
        throughputs = [row["per_session_kbps"] for row in congested]
        assert all(
            earlier > later for earlier, later in zip(throughputs, throughputs[1:])
        ), f"per-session throughput must fall with congested concurrency: {throughputs}"
        if congested and len(rows) > len(congested):
            assert congested[-1]["per_session_kbps"] < rows[0]["per_session_kbps"]
    return rows


def _sizes_from_env() -> tuple[int, ...]:
    raw = os.environ.get("NETWORK_BENCH_SIZES")
    if not raw:
        return DEFAULT_SIZES
    return tuple(int(part) for part in raw.split(",") if part.strip())


def run_bench(sizes=None, check_overhead: bool = True) -> dict:
    sizes = sizes or _sizes_from_env()
    overhead = run_overhead_bench(sizes, check_overhead=check_overhead)
    congestion = run_congestion_bench(
        tuple(sorted({max(size // 4, 2) for size in sizes} | set(sizes))),
        check=check_overhead,
    )
    results = {"overhead": overhead, "congestion": congestion}
    emit_bench(
        "network_throughput",
        results,
        config={
            "sizes": list(sizes),
            "max_slowdown_at_1024": MAX_SLOWDOWN_AT_1024,
            "max_tiered_slowdown_at_1024": MAX_TIERED_SLOWDOWN_AT_1024,
        },
    )
    return results


def test_network_throughput(benchmark):
    """Pytest entry point (sizes overridable via NETWORK_BENCH_SIZES)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    run_bench()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--sizes",
        default=None,
        help="comma-separated batch sizes (default: env NETWORK_BENCH_SIZES or 64,1024)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help=(
            "report only; skip the <=2x overhead assertion at N>=1024 and "
            "the congestion monotonicity assertion"
        ),
    )
    args = parser.parse_args()
    sizes = (
        tuple(int(part) for part in args.sizes.split(",") if part.strip())
        if args.sizes
        else None
    )
    run_bench(sizes, check_overhead=not args.no_assert)


if __name__ == "__main__":
    main()
