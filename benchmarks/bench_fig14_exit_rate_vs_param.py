"""Figure 14 benchmark: per-day correlation between stall exit rate and parameter."""

import numpy as np

from repro.experiments import fig14_exit_rate_vs_param


def test_fig14_exit_rate_vs_param(benchmark, substrate, ab_result):
    result = benchmark.pedantic(
        lambda: fig14_exit_rate_vs_param.run(substrate=substrate, ab_result=ab_result),
        rounds=1,
        iterations=1,
    )
    print("\nFigure 14 — stall exit rate vs assigned parameter")
    for day in result.daily:
        print(
            f"  day {day.day + 1}: n={len(day.exit_rates):>3}  corr={day.correlation:+.3f}  "
            f"slope={day.slope:+.3f}"
        )
    finite = [c for c in result.correlations if np.isfinite(c)]
    mean_correlation = float(np.mean(finite)) if finite else float("nan")
    print(f"  mean correlation: {mean_correlation:+.3f}")
    assert len(result.daily) >= 1
    assert all(-1.0 <= c <= 1.0 for c in finite)
