"""Out-of-core telemetry reader benchmark: throughput and peak memory.

Measures aggregation over a fleet telemetry file at growing size factors,
comparing the in-memory replay path (``replay_log_collection`` +
``fleet_metrics``) against the streaming reader
(:func:`repro.obs.telemetry_reader.stream_fleet_metrics`), with and without
the sidecar chunk index.  For each run both wall time and the
``tracemalloc`` peak are recorded; the acceptance gate is the reader's whole
point: **streaming peak memory must stay flat as the file grows** while the
in-memory peak scales with it, and the streamed aggregates must equal the
replayed ones exactly.

Run directly (CI smoke uses ``TELEMETRY_BENCH_FACTORS`` for a tiny run)::

    PYTHONPATH=src python benchmarks/bench_telemetry_reader.py
    PYTHONPATH=src TELEMETRY_BENCH_FACTORS=1,4 \
        python benchmarks/bench_telemetry_reader.py --no-assert

or through pytest alongside the other benchmarks::

    PYTHONPATH=src python -m pytest benchmarks/bench_telemetry_reader.py -q -s
"""

from __future__ import annotations

import argparse
import os
import tempfile
import time
import tracemalloc
from pathlib import Path

from emit import emit_bench
from repro.experiments.common import format_table
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    fleet_metrics,
    replay_log_collection,
)
from repro.obs.telemetry_reader import load_or_build_index, stream_fleet_metrics
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation

DEFAULT_FACTORS = (1, 4, 10)
#: The streaming reader's peak memory at the largest factor may exceed the
#: smallest factor's peak by at most this ratio (flat-memory acceptance).
MAX_STREAM_PEAK_GROWTH = 2.0


def _factors_from_env() -> tuple[int, ...]:
    raw = os.environ.get("TELEMETRY_BENCH_FACTORS", "")
    if not raw.strip():
        return DEFAULT_FACTORS
    return tuple(int(part) for part in raw.split(",") if part.strip())


def _make_corpus(out_dir: Path) -> Path:
    """One fleet day's telemetry file — the unit the factors multiply."""
    users = int(os.environ.get("TELEMETRY_BENCH_USERS", "64"))
    population = UserPopulation.generate(users, seed=0, bandwidth_median_kbps=4000.0)
    library = VideoLibrary(num_videos=4, mean_duration=40.0, std_duration=12.0, seed=1)
    path = out_dir / "telemetry.jsonl"
    FleetOrchestrator(
        FleetConfig(
            num_shards=2,
            num_workers=0,
            sessions_per_user=2,
            trace_length=60,
            seed=0,
            backend="vector",
        )
    ).run(population, library, telemetry_path=path)
    return path


def _enlarge(base: Path, out: Path, factor: int) -> Path:
    """Repeat the session events ``factor`` times (run events kept once)."""
    lines = base.read_bytes().splitlines(keepends=True)
    sessions = [line for line in lines if b'"event": "session"' in line]
    head = [line for line in lines if line not in sessions]
    with out.open("wb") as handle:
        if head:
            handle.write(head[0])
        for _ in range(factor):
            for line in sessions:
                handle.write(line)
        for line in head[1:]:
            handle.write(line)
    return out


def _measure(fn) -> tuple[float, int, object]:
    """(wall seconds, tracemalloc peak bytes, fn() result)."""
    tracemalloc.start()
    try:
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return elapsed, peak, result


def run_bench(factors=DEFAULT_FACTORS, check: bool = True) -> list[dict]:
    rows: list[dict] = []
    with tempfile.TemporaryDirectory(prefix="bench_telemetry_") as tmp:
        tmp_path = Path(tmp)
        base = _make_corpus(tmp_path)
        # warm-up: imports and allocator pools settle before anything counts
        stream_fleet_metrics(base)
        fleet_metrics(replay_log_collection(base))
        for factor in factors:
            path = _enlarge(base, tmp_path / f"telemetry_x{factor}.jsonl", factor)
            file_mb = path.stat().st_size / (1024 * 1024)
            index_time, _, index = _measure(lambda: load_or_build_index(path))
            mem_time, mem_peak, replayed = _measure(
                lambda: fleet_metrics(replay_log_collection(path))
            )
            stream_time, stream_peak, streamed = _measure(
                lambda: stream_fleet_metrics(path)
            )
            idx_time, idx_peak, indexed = _measure(
                lambda: stream_fleet_metrics(path, index=index)
            )
            assert streamed.as_dict() == replayed.as_dict(), (
                f"streamed aggregates diverged from replay at factor {factor}"
            )
            assert indexed.as_dict() == replayed.as_dict()
            sessions = streamed.num_sessions
            rows.append(
                {
                    "factor": factor,
                    "file_mb": file_mb,
                    "sessions": sessions,
                    "index_build_s": index_time,
                    "replay_sps": sessions / mem_time,
                    "replay_peak_mb": mem_peak / (1024 * 1024),
                    "stream_sps": sessions / stream_time,
                    "stream_peak_mb": stream_peak / (1024 * 1024),
                    "stream_indexed_sps": sessions / idx_time,
                    "stream_indexed_peak_mb": idx_peak / (1024 * 1024),
                }
            )

    print("\ntelemetry reader — in-memory replay vs out-of-core streaming:")
    print(
        format_table(
            ["x", "MiB", "sessions", "replay s/s", "peak MiB",
             "stream s/s", "peak MiB", "indexed s/s", "peak MiB"],
            [
                [
                    row["factor"],
                    f"{row['file_mb']:.1f}",
                    row["sessions"],
                    f"{row['replay_sps']:.0f}",
                    f"{row['replay_peak_mb']:.1f}",
                    f"{row['stream_sps']:.0f}",
                    f"{row['stream_peak_mb']:.1f}",
                    f"{row['stream_indexed_sps']:.0f}",
                    f"{row['stream_indexed_peak_mb']:.1f}",
                ]
                for row in rows
            ],
        )
    )

    if check and len(rows) > 1:
        first, last = rows[0], rows[-1]
        growth = last["stream_peak_mb"] / max(first["stream_peak_mb"], 1e-9)
        assert growth <= MAX_STREAM_PEAK_GROWTH, (
            f"streaming peak grew {growth:.2f}x from factor {first['factor']} "
            f"to {last['factor']} (flat-memory gate is {MAX_STREAM_PEAK_GROWTH}x)"
        )
        # the in-memory path is the contrast: its peak must actually scale,
        # otherwise the corpus is too small for the gate to mean anything
        assert last["replay_peak_mb"] > 2.0 * first["stream_peak_mb"], (
            "corpus too small: in-memory replay peak does not dominate "
            "the streaming peak"
        )

    emit_bench(
        "telemetry_reader",
        rows,
        config={
            "factors": list(factors),
            "users": int(os.environ.get("TELEMETRY_BENCH_USERS", "64")),
        },
    )
    return rows


def test_telemetry_reader_throughput(benchmark):
    """Pytest entry point (factors overridable via TELEMETRY_BENCH_FACTORS)."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    run_bench(_factors_from_env())


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--factors",
        default=None,
        help="comma-separated size factors (default: env TELEMETRY_BENCH_FACTORS or 1,4,10)",
    )
    parser.add_argument(
        "--no-assert",
        action="store_true",
        help="report only; skip the flat-memory assertions",
    )
    args = parser.parse_args()
    factors = (
        tuple(int(part) for part in args.factors.split(",") if part.strip())
        if args.factors
        else _factors_from_env()
    )
    run_bench(factors, check=not args.no_assert)


if __name__ == "__main__":
    main()
