"""Tests for the video model (ladders, segment sizes, library)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.video import BitrateLadder, Video, VideoLibrary


class TestBitrateLadder:
    def test_default_ladder_has_four_tiers(self, ladder):
        assert ladder.num_levels == 4
        assert ladder.tier_names == ("LD", "SD", "HD", "FullHD")

    def test_bitrates_must_be_sorted(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_kbps=(1000.0, 500.0))

    def test_bitrates_must_be_positive(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_kbps=(-1.0, 500.0))

    def test_needs_at_least_two_levels(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_kbps=(500.0,))

    def test_tier_names_length_checked(self):
        with pytest.raises(ValueError):
            BitrateLadder(bitrates_kbps=(500.0, 1000.0), tier_names=("only-one",))

    def test_quality_is_bitrate_in_mbps(self, ladder):
        for level in range(ladder.num_levels):
            assert ladder.quality(level) == pytest.approx(ladder.bitrate(level) / 1000.0)

    def test_qualities_vector_matches_scalar(self, ladder):
        np.testing.assert_allclose(
            ladder.qualities(), [ladder.quality(i) for i in range(ladder.num_levels)]
        )

    def test_level_out_of_range_raises(self, ladder):
        with pytest.raises(IndexError):
            ladder.bitrate(ladder.num_levels)
        with pytest.raises(IndexError):
            ladder.quality(-1)

    def test_level_for_bitrate_picks_highest_affordable(self, ladder):
        assert ladder.level_for_bitrate(ladder.max_bitrate + 1) == ladder.num_levels - 1
        assert ladder.level_for_bitrate(ladder.min_bitrate - 1) == 0
        mid = ladder.bitrates_kbps[1]
        assert ladder.level_for_bitrate(mid + 1) == 1

    @given(st.floats(min_value=1.0, max_value=1e6, allow_nan=False))
    def test_level_for_bitrate_never_exceeds_budget_above_min(self, bitrate):
        ladder = BitrateLadder()
        level = ladder.level_for_bitrate(bitrate)
        assert 0 <= level < ladder.num_levels
        if bitrate >= ladder.min_bitrate:
            assert ladder.bitrate(level) <= bitrate


class TestVideo:
    def test_segment_sizes_shape(self, video):
        assert video.segment_sizes_kbit.shape == (20, 4)

    def test_sizes_scale_with_bitrate(self, video):
        sizes = video.segment_sizes_kbit
        assert np.all(np.diff(sizes, axis=1) > 0)

    def test_sizes_near_nominal(self, video, ladder):
        nominal = np.asarray(ladder.bitrates_kbps) * video.segment_duration
        ratio = video.segment_sizes_kbit / nominal[None, :]
        assert np.all(ratio >= 0.5) and np.all(ratio <= 1.5)

    def test_segment_index_wraps(self, video):
        assert video.segment_size(0, 1) == video.segment_size(video.num_segments, 1)

    def test_duration(self, video):
        assert video.duration == pytest.approx(40.0)

    def test_deterministic_for_seed(self, ladder):
        a = Video(ladder=ladder, num_segments=10, seed=5)
        b = Video(ladder=ladder, num_segments=10, seed=5)
        np.testing.assert_allclose(a.segment_sizes_kbit, b.segment_sizes_kbit)

    def test_invalid_parameters(self, ladder):
        with pytest.raises(ValueError):
            Video(ladder=ladder, num_segments=0)
        with pytest.raises(ValueError):
            Video(ladder=ladder, segment_duration=0)
        with pytest.raises(ValueError):
            Video(ladder=ladder, vbr_std=1.5)


class TestVideoLibrary:
    def test_library_len_and_iteration(self, library):
        assert len(library) == 4
        assert len(list(library)) == 4

    def test_mean_duration_positive(self, library):
        assert library.mean_duration > 0

    def test_sample_returns_member(self, library, rng):
        video = library.sample(rng)
        assert video in library.videos

    def test_indexing_wraps(self, library):
        assert library[0] is library[len(library)]

    def test_invalid_num_videos(self):
        with pytest.raises(ValueError):
            VideoLibrary(num_videos=0)
