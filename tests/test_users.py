"""Tests for user perception, engagement models and populations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.session import ExitObservation
from repro.users import (
    BaselineExitModel,
    DataDrivenUser,
    QoSAwareExitModel,
    RuleBasedUser,
    UserPopulation,
    features_from_segment_records,
    fit_data_driven_user,
)
from repro.users.perception import (
    SensitivityArchetype,
    StallSensitivityProfile,
    sample_profile,
)


def make_observation(
    stall_time=0.0,
    cumulative=0.0,
    stall_count=0,
    watch_time=10.0,
    level=2,
    previous_level=2,
    bitrate=1850.0,
):
    return ExitObservation(
        segment_index=5,
        level=level,
        previous_level=previous_level,
        bitrate_kbps=bitrate,
        stall_time=stall_time,
        cumulative_stall_time=cumulative,
        stall_count=stall_count,
        watch_time=watch_time,
        buffer=5.0,
        segments_since_last_stall=3,
        throughput_kbps=3000.0,
    )


class TestStallSensitivityProfile:
    def test_zero_stall_zero_probability(self):
        profile = StallSensitivityProfile()
        assert profile.stall_exit_probability(0.0) == 0.0

    @pytest.mark.parametrize("archetype", list(SensitivityArchetype))
    def test_monotone_in_stall_time(self, archetype):
        profile = StallSensitivityProfile(archetype=archetype, tolerance_s=4.0)
        values = [profile.stall_exit_probability(s) for s in (0.5, 2.0, 5.0, 10.0, 30.0)]
        assert all(b >= a - 1e-9 for a, b in zip(values, values[1:]))
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_threshold_jump_around_tolerance(self):
        profile = StallSensitivityProfile(
            archetype=SensitivityArchetype.THRESHOLD, tolerance_s=4.0, peak_exit_probability=0.9
        )
        assert profile.stall_exit_probability(1.0) < 0.1
        assert profile.stall_exit_probability(8.0) > 0.7

    def test_multiple_stalls_raise_probability(self):
        profile = StallSensitivityProfile(tolerance_s=4.0)
        single = profile.stall_exit_probability(5.0, stall_count=1)
        repeated = profile.stall_exit_probability(5.0, stall_count=4)
        assert repeated >= single

    def test_drift_changes_tolerance_but_not_shape(self, rng):
        profile = StallSensitivityProfile(daily_drift_s=2.0)
        drifted = profile.drifted(rng)
        assert drifted.archetype == profile.archetype
        assert drifted.tolerance_s > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            StallSensitivityProfile(tolerance_s=0)
        with pytest.raises(ValueError):
            StallSensitivityProfile(peak_exit_probability=0)
        with pytest.raises(ValueError):
            StallSensitivityProfile(daily_drift_s=-1)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0, max_value=60), st.integers(min_value=1, max_value=10))
    def test_probability_always_valid(self, stall_time, count):
        profile = StallSensitivityProfile()
        assert 0.0 <= profile.stall_exit_probability(stall_time, count) <= 1.0

    def test_population_sampling_heterogeneous(self):
        rng = np.random.default_rng(0)
        profiles = [sample_profile(rng) for _ in range(300)]
        tolerances = np.asarray([p.tolerance_s for p in profiles])
        assert tolerances.min() < 2.0
        assert tolerances.max() > 8.0
        archetypes = {p.archetype for p in profiles}
        assert archetypes == set(SensitivityArchetype)


class TestExitModels:
    def test_baseline_hazard_decays_with_watch_time(self):
        model = BaselineExitModel()
        early = model.exit_probability(make_observation(watch_time=2.0))
        late = model.exit_probability(make_observation(watch_time=120.0))
        assert early > late >= model.floor_hazard - 1e-9

    def test_qos_aware_orders_of_magnitude(self):
        model = QoSAwareExitModel()
        base = model.exit_probability(make_observation(level=3, previous_level=3))
        low_quality = model.exit_probability(make_observation(level=0, previous_level=0))
        switched = model.exit_probability(make_observation(level=1, previous_level=3))
        stalled = model.exit_probability(
            make_observation(stall_time=3.0, cumulative=6.0, stall_count=1)
        )
        assert low_quality > base
        assert switched > low_quality
        assert stalled > switched
        assert stalled - base > 0.05

    def test_qos_aware_engagement_discount(self):
        model = QoSAwareExitModel()
        fresh = model.exit_probability(
            make_observation(stall_time=3.0, cumulative=6.0, stall_count=1, watch_time=6.0)
        )
        engaged = model.exit_probability(
            make_observation(stall_time=3.0, cumulative=6.0, stall_count=1, watch_time=60.0)
        )
        assert engaged < fresh

    def test_rule_based_thresholds(self):
        user = RuleBasedUser(stall_time_threshold_s=4.0, stall_count_threshold=3)
        assert user.exit_probability(make_observation(cumulative=1.0, stall_count=1)) == 0.0
        assert user.exit_probability(make_observation(cumulative=4.5, stall_count=1)) == 1.0
        assert user.exit_probability(make_observation(cumulative=1.0, stall_count=3)) == 1.0
        with pytest.raises(ValueError):
            RuleBasedUser(stall_time_threshold_s=0)

    def test_probabilities_always_valid(self):
        models = [BaselineExitModel(), QoSAwareExitModel(), RuleBasedUser()]
        for model in models:
            for stall in (0.0, 1.0, 10.0):
                p = model.exit_probability(
                    make_observation(stall_time=stall, cumulative=stall, stall_count=1)
                )
                assert 0.0 <= p <= 1.0


class TestDataDrivenUser:
    def test_fit_learns_stall_direction(self):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(400, 7))
        features[:, 0] = np.abs(features[:, 0])
        labels = (features[:, 0] > 0.8).astype(int)
        user = fit_data_driven_user(features, labels)
        assert isinstance(user, DataDrivenUser)
        high = user.exit_probability(make_observation(stall_time=5.0, cumulative=5.0, stall_count=2))
        low = user.exit_probability(make_observation(stall_time=0.0))
        assert high > low

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            fit_data_driven_user(np.zeros((0, 7)), np.zeros(0))
        with pytest.raises(ValueError):
            fit_data_driven_user(np.zeros((3, 7)), np.zeros(4))

    def test_features_from_segment_records(self, video, low_bandwidth_trace, rng):
        from repro.abr.hyb import HYB
        from repro.sim.session import PlaybackSession

        trace = PlaybackSession().run(HYB(), video, low_bandwidth_trace, rng=rng)
        features, labels = features_from_segment_records(trace.records)
        assert features.shape == (len(trace), 7)
        assert labels.shape == (len(trace),)
        with pytest.raises(ValueError):
            features_from_segment_records([])


class TestUserPopulation:
    def test_generation_size_and_ids_unique(self, population):
        assert len(population) == 30
        ids = [p.user_id for p in population]
        assert len(set(ids)) == 30

    def test_bandwidth_distribution_long_tail(self):
        population = UserPopulation.generate(300, seed=1, bandwidth_median_kbps=8000)
        bandwidths = population.mean_bandwidths()
        below = np.mean(bandwidths < 4300)
        assert 0.02 < below < 0.45

    def test_low_bandwidth_filter(self, population):
        low = population.low_bandwidth_users(2000)
        assert all(p.mean_bandwidth_kbps < 2000 for p in low)

    def test_split_disjoint_and_complete(self, population):
        a, b = population.split(0.5, seed=2)
        ids_a = {p.user_id for p in a}
        ids_b = {p.user_id for p in b}
        assert ids_a.isdisjoint(ids_b)
        assert len(ids_a) + len(ids_b) == len(population)

    def test_next_day_keeps_users(self, population, rng):
        tomorrow = population.next_day(rng)
        assert [p.user_id for p in tomorrow] == [p.user_id for p in population]

    def test_profile_exit_model_and_trace(self, population, rng):
        profile = population[0]
        model = profile.exit_model()
        assert 0.0 <= model.exit_probability(make_observation()) <= 1.0
        trace = profile.bandwidth_trace(20, rng)
        assert len(trace) == 20

    def test_validation(self):
        with pytest.raises(ValueError):
            UserPopulation([])
        with pytest.raises(ValueError):
            UserPopulation.generate(0)
        with pytest.raises(ValueError):
            UserPopulation.generate(5).split(1.5)
