"""Persistent worker pool: bit-identity vs the inline path, lifecycle, and
shared-memory hygiene.

The pool's contract is brutal on purpose: a pooled fleet (or campaign) run
must be **bit-identical** to the inline reference path — traces, controller
states, link usage, replayed telemetry — across every shard/worker-count
combination, two runs on one pool must equal two runs on fresh pools, a dead
worker must surface as a clean error (never a hang), and a graceful shutdown
must leave zero shared-memory segments and zero resource-tracker warnings
behind.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import textwrap

import numpy as np
import pytest

from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    LongitudinalCampaign,
    LongitudinalConfig,
    PoolError,
    ShardTaskError,
    WorkerCrashError,
    WorkerPool,
    load_resume_state,
    read_events,
    replay_link_usage,
    replay_log_collection,
    replay_run_summary,
    shared_pool,
    shutdown_shared_pools,
)
from repro.fleet.pool import _SHARED_POOLS
from repro.sim.session import PlaybackTrace, SegmentRecord
from repro.sim.vector import (
    export_trace_columns,
    import_trace_columns,
    trace_columns_nbytes,
)
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@pytest.fixture(autouse=True)
def fresh_pools():
    """Each test starts and ends without process-global pools."""
    shutdown_shared_pools()
    yield
    shutdown_shared_pools()


@pytest.fixture(scope="module")
def population() -> UserPopulation:
    return UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture(scope="module")
def library() -> VideoLibrary:
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def _run_fleet(population, library, *, shards, workers, pool=None,
               telemetry=None, **overrides):
    defaults = dict(
        num_shards=shards,
        num_workers=workers,
        sessions_per_user=2,
        trace_length=40,
        seed=9,
        backend="vector",
        network="dual_isp",
    )
    defaults.update(overrides)
    config = FleetConfig(**defaults)
    return FleetOrchestrator(config, pool=pool).run(
        population, library, telemetry_path=telemetry
    )


def _fingerprint(result):
    """Everything deterministic about a fleet result, hashable-comparable."""
    return (
        {
            (log.user_id, log.session_index): (
                log.day,
                log.mean_bandwidth_kbps,
                log.trace.video_duration,
                log.trace.segment_duration,
                log.trace.trace_name,
                log.trace.exited_early,
                tuple(log.trace.records),
            )
            for log in result.logs
        },
        result.controller_states,
        tuple(result.link_usage),
        result.metrics.as_dict(),
        result.total_fallback_sessions,
        result.total_batch_sessions,
    )


class TestTraceColumns:
    def _trace(self, n, uid="u1", name="t", exited=False):
        records = [
            SegmentRecord(
                segment_index=i,
                level=i % 4,
                bitrate_kbps=300.0 * (1 + i % 4),
                size_kbit=1200.0 + 0.125 * i,
                bandwidth_kbps=2500.0 + i,
                download_time=0.5 + 0.001 * i,
                stall_time=0.0 if i % 3 else 0.25,
                wait_time=0.125,
                buffer_before=4.0 + i * 0.5,
                buffer_after=5.0 + i * 0.5,
                watch_time=(i + 1) * 4.0,
                cumulative_stall_time=0.25 * (i // 3 + 1),
                stall_count=i // 3,
                exit_probability=0.01 * i,
                exited=exited and i == n - 1,
            )
            for i in range(n)
        ]
        return PlaybackTrace(
            user_id=uid, video_duration=n * 4.0, segment_duration=4.0,
            trace_name=name, records=records, exited_early=exited,
        )

    def test_roundtrip_is_value_identical_with_python_types(self):
        traces = [self._trace(6, "a", "t1", exited=True), self._trace(0, "b", "t2"),
                  self._trace(3, "c", "t1")]
        size = trace_columns_nbytes(len(traces), sum(len(t.records) for t in traces))
        buffer = bytearray(size + 32)
        layout, end = export_trace_columns(traces, buffer, offset=16)
        assert end <= len(buffer)
        assert json.loads(json.dumps(layout)) == layout  # JSON-safe layout
        back = import_trace_columns(
            buffer, layout, user_ids=["a", "b", "c"], trace_names=["t1", "t2", "t1"]
        )
        assert back == traces
        for trace in back:
            for record in trace.records:
                assert type(record.segment_index) is int
                assert type(record.level) is int
                assert type(record.stall_count) is int
                assert type(record.exited) is bool
                assert type(record.bitrate_kbps) is float

    def test_import_validates_string_columns_and_version(self):
        traces = [self._trace(2)]
        buffer = bytearray(trace_columns_nbytes(1, 2))
        layout, _ = export_trace_columns(traces, buffer)
        with pytest.raises(ValueError):
            import_trace_columns(buffer, layout, user_ids=[], trace_names=[])
        bad = dict(layout, version=99)
        with pytest.raises(ValueError):
            import_trace_columns(buffer, bad, user_ids=["u1"], trace_names=["t"])


class TestPooledBitIdentity:
    @pytest.mark.parametrize("shards", [1, 2, 4])
    @pytest.mark.parametrize(
        "backend,network",
        [("vector", "dual_isp"), ("vector", None), ("scalar", None)],
    )
    def test_pooled_equals_inline_across_shards(
        self, population, library, shards, backend, network
    ):
        inline = _run_fleet(
            population, library, shards=shards, workers=0,
            backend=backend, network=network,
        )
        pooled = _run_fleet(
            population, library, shards=shards, workers=2,
            backend=backend, network=network,
        )
        assert _fingerprint(pooled) == _fingerprint(inline)

    def test_worker_count_does_not_matter(self, population, library):
        reference = _run_fleet(population, library, shards=4, workers=0)
        for workers in (2, 3, 4):
            pooled = _run_fleet(population, library, shards=4, workers=workers)
            assert _fingerprint(pooled) == _fingerprint(reference)

    def test_pool_reuse_is_deterministic(self, population, library):
        """Two runs on one pool == two runs on fresh pools == inline."""
        inline = _fingerprint(_run_fleet(population, library, shards=4, workers=0))
        with WorkerPool(2) as pool:
            first = _run_fleet(population, library, shards=4, workers=2, pool=pool)
            second = _run_fleet(population, library, shards=4, workers=2, pool=pool)
        with WorkerPool(2) as fresh:
            third = _run_fleet(population, library, shards=4, workers=2, pool=fresh)
        assert _fingerprint(first) == _fingerprint(second) == _fingerprint(third) == inline

    def test_pooled_telemetry_replays_identically(
        self, population, library, tmp_path
    ):
        inline_path = tmp_path / "inline.jsonl"
        pooled_path = tmp_path / "pooled.jsonl"
        _run_fleet(population, library, shards=4, workers=0, telemetry=inline_path)
        _run_fleet(population, library, shards=4, workers=2, telemetry=pooled_path)
        assert list(replay_log_collection(pooled_path)) == list(
            replay_log_collection(inline_path)
        )
        assert replay_link_usage(read_events(pooled_path)) == replay_link_usage(
            read_events(inline_path)
        )
        assert replay_run_summary(pooled_path) == replay_run_summary(inline_path)
        # Byte-for-byte identical except the wall-clock fields, which differ
        # between *any* two runs (inline vs inline included).
        inline_lines = inline_path.read_text().splitlines()
        pooled_lines = pooled_path.read_text().splitlines()
        assert len(inline_lines) == len(pooled_lines)
        for left, right in zip(inline_lines, pooled_lines):
            if left == right:
                continue
            left_doc, right_doc = json.loads(left), json.loads(right)
            left_doc["payload"].pop("wall_time_s", None)
            right_doc["payload"].pop("wall_time_s", None)
            assert left_doc == right_doc

    def test_descriptors_stay_small(self, population, library):
        """The dispatch unit is the descriptor, not the task: a few hundred
        bytes even though the task closes over libraries and factories."""
        from repro.fleet.orchestrator import HybFleetFactory, ShardTask
        from repro.fleet.pool import CacheRef, ShardDescriptor

        descriptor = ShardDescriptor(
            run_id="fleet-00000009-s4-d0",
            shard_index=3,
            num_shards=4,
            seed=9,
            day=0,
            sessions_per_user=2,
            trace_length=40,
            backend="vector",
            spec_batched=False,
            population=CacheRef(0),
            scenario=CacheRef(1),
            library=CacheRef(2),
            abr_factory=CacheRef(3),
            session_config=CacheRef(4),
            network=CacheRef(5),
            telemetry=True,
        )
        assert len(pickle.dumps(descriptor)) < 512


class _ExplodingFactory:
    """Picklable factory that raises inside the worker."""

    def __call__(self, profile, seed):
        raise ValueError("boom in worker")


class _CrashingFactory:
    """Picklable factory that hard-kills the worker process."""

    def __init__(self, exitcode: int) -> None:
        self.exitcode = exitcode

    def __call__(self, profile, seed):
        os._exit(self.exitcode)


class TestPoolLifecycle:
    def test_shared_pool_reuses_and_replaces(self):
        pool = shared_pool(2)
        assert shared_pool(2) is pool
        pool.shutdown()
        replacement = shared_pool(2)
        assert replacement is not pool
        assert not replacement.closed
        replacement.shutdown()

    def test_closed_pool_rejects_work(self):
        pool = WorkerPool(1)
        pool.shutdown()
        pool.shutdown()  # idempotent
        with pytest.raises(PoolError):
            pool.run([])

    def test_worker_exception_propagates_and_pool_survives(
        self, population, library
    ):
        with WorkerPool(2) as pool:
            config = FleetConfig(
                num_shards=4, num_workers=2, sessions_per_user=1,
                trace_length=20, seed=3, backend="vector",
            )
            with pytest.raises(ShardTaskError, match="boom in worker"):
                FleetOrchestrator(config, pool=pool).run(
                    population, library, abr_factory=_ExplodingFactory()
                )
            # The pool is still healthy: same workers run the next fleet.
            result = _run_fleet(population, library, shards=4, workers=2, pool=pool)
            assert len(result.logs) > 0

    def test_worker_crash_is_clean_error_not_hang(self, population, library):
        pool = WorkerPool(2)
        config = FleetConfig(
            num_shards=2, num_workers=2, sessions_per_user=1,
            trace_length=20, seed=3, backend="vector",
        )
        with pytest.raises(WorkerCrashError, match="died"):
            FleetOrchestrator(config, pool=pool).run(
                population, library, abr_factory=_CrashingFactory(17)
            )
        assert pool.closed  # crash poisons the pool ...
        fresh = shared_pool(2)  # ... and shared_pool hands out a new one
        assert not fresh.closed

    def test_crashed_shared_pool_is_replaced_transparently(
        self, population, library
    ):
        config = FleetConfig(
            num_shards=2, num_workers=2, sessions_per_user=1,
            trace_length=20, seed=3, backend="vector",
        )
        with pytest.raises(WorkerCrashError):
            FleetOrchestrator(config).run(
                population, library, abr_factory=_CrashingFactory(11)
            )
        # Next orchestrator call transparently gets a fresh shared pool.
        result = _run_fleet(population, library, shards=2, workers=2)
        assert len(result.logs) > 0

    def test_shutdown_reaps_arenas_of_terminated_workers(self, population, library):
        """SHM-005 regression: a worker that never honours "stop" gets
        terminated by shutdown(); its finally-block unlink never runs, so
        the parent must reap the arenas it knows about or they leak in
        /dev/shm until interpreter exit."""
        import signal

        pool = WorkerPool(2)
        _run_fleet(population, library, shards=4, workers=2, pool=pool)
        names = sorted({name for name, _shm in pool._attachments.values()})
        assert names, "expected parent-side arena attachments after a pooled run"
        pids = [process.pid for process in pool._processes]
        for pid in pids:
            os.kill(pid, signal.SIGSTOP)  # workers can no longer honour "stop"
        try:
            pool.shutdown(timeout=0.2)
            if os.path.isdir("/dev/shm"):
                leaked = [
                    n for n in names if os.path.exists("/dev/shm/" + n.lstrip("/"))
                ]
                assert not leaked, f"terminated workers' arenas leaked: {leaked}"
        finally:
            for pid in pids:
                try:
                    os.kill(pid, signal.SIGCONT)
                    os.kill(pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass

    def test_shutdown_releases_all_shm_segments(self, population, library):
        before = set(os.listdir("/dev/shm")) if os.path.isdir("/dev/shm") else None
        pool = WorkerPool(2)
        _run_fleet(population, library, shards=4, workers=2, pool=pool)
        pool.shutdown()
        if before is not None:
            leaked = set(os.listdir("/dev/shm")) - before
            assert not leaked, f"segments left behind: {leaked}"

    def test_clean_shutdown_emits_no_resource_tracker_warnings(self, tmp_path):
        """End-to-end in a subprocess: run pooled fleets, shut down, and
        require stderr free of resource_tracker leak chatter at exit."""
        script = textwrap.dedent(
            """
            from repro.fleet import FleetConfig, FleetOrchestrator, shutdown_shared_pools
            from repro.sim.video import VideoLibrary
            from repro.users.population import UserPopulation

            population = UserPopulation.generate(12, seed=5)
            library = VideoLibrary(num_videos=2, seed=2)
            config = FleetConfig(num_shards=4, num_workers=2, sessions_per_user=1,
                                 trace_length=20, seed=7, backend="vector")
            for _ in range(2):
                FleetOrchestrator(config).run(population, library)
            shutdown_shared_pools()
            print("done")
            """
        )
        env = dict(os.environ, PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", script], capture_output=True, text=True,
            timeout=300, cwd=os.path.dirname(os.path.dirname(__file__)), env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "done" in proc.stdout
        assert "resource_tracker" not in proc.stderr, proc.stderr
        assert "leaked" not in proc.stderr, proc.stderr

    def test_arena_grows_for_large_results_and_is_reused(self, population, library):
        with WorkerPool(1) as pool:
            small = _run_fleet(population, library, shards=2, workers=2,
                               pool=pool, trace_length=20)
            large = _run_fleet(population, library, shards=2, workers=2,
                               pool=pool, trace_length=160)
            again = _run_fleet(population, library, shards=2, workers=2,
                               pool=pool, trace_length=20)
        assert _fingerprint(small) == _fingerprint(again)
        assert len(large.logs) == len(small.logs)

    def test_cache_is_identity_keyed_and_bounded(self):
        from repro.fleet.pool import CACHE_CAPACITY

        pool = WorkerPool(1)
        try:
            obj = ("payload",)
            first = pool.cache(obj)
            assert pool.cache(obj) == first  # same object → same token
            tokens = {pool.cache(("other", i)).token for i in range(CACHE_CAPACITY + 8)}
            assert len(tokens) == CACHE_CAPACITY + 8
            assert len(pool._cache) <= CACHE_CAPACITY
        finally:
            pool.shutdown()


class TestPooledLongitudinal:
    def _config(self, workers, days=3):
        return LongitudinalConfig(
            days=days,
            seed=11,
            num_shards=2,
            num_workers=workers,
            sessions_per_user=2,
            trace_length=30,
            backend="vector",
            network="dual_isp",
        )

    def _day_map(self, result):
        return {
            (day.day, log.user_id, log.session_index): tuple(log.trace.records)
            for day in result.days
            for log in day.result.logs
        }

    def test_campaign_pooled_equals_inline(self, population, library):
        inline = LongitudinalCampaign(self._config(0)).run(population, library)
        pooled = LongitudinalCampaign(self._config(2)).run(population, library)
        assert self._day_map(pooled) == self._day_map(inline)
        np.testing.assert_array_equal(
            [d.retention_rate for d in pooled.days],
            [d.retention_rate for d in inline.days],
        )

    def test_resume_from_checkpoint_unchanged_under_pooled_path(
        self, population, library, tmp_path
    ):
        full = LongitudinalCampaign(self._config(2, days=4)).run(
            population, library,
            checkpoint_dir=tmp_path / "full",
        )
        # Run days 0-1 pooled, then resume days 2-3 pooled from disk state.
        LongitudinalCampaign(self._config(2, days=2)).run(
            population, library, checkpoint_dir=tmp_path / "part"
        )
        resume = load_resume_state(
            tmp_path / "part" / "resume_day_001.json",
            tmp_path / "part" / "day_001.json",
        )
        resumed = LongitudinalCampaign(self._config(2, days=2)).run(
            resume.population(), library,
            checkpoint_dir=tmp_path / "part",
            resume_state=resume,
        )
        full_map = self._day_map(full)
        resumed_map = self._day_map(resumed)
        assert resumed_map == {
            key: value for key, value in full_map.items() if key[0] >= 2
        }


class TestPooledObservability:
    def test_pool_counters_present_in_profiled_pooled_run(
        self, population, library
    ):
        from repro import obs

        obs.enable()
        try:
            result = _run_fleet(population, library, shards=4, workers=2)
        finally:
            obs.disable()
        counters = result.obs_report["metrics"]["counters"]
        assert counters["pool.shm_result_bytes"] > 0
        assert counters.get("pool.shm_telemetry_bytes", 0) == 0  # no telemetry path
        assert counters["pool.dispatch_bytes"] < 4 * 2048
        names = obs.span_names(result.obs_report["spans"])
        assert "fleet.run_day/fleet.run_shards/shard.map/pool.dispatch" in names
        assert "fleet.run_day/fleet.run_shards/shard.map/pool.drain" in names
