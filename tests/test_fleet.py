"""Tests for the fleet subsystem: orchestration, telemetry, batching, scenarios."""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import QoEParameters
from repro.abr.hyb import HYB
from repro.core.controller import ControllerConfig, LingXiController
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig, MonteCarloEvaluator
from repro.core.parameter_space import ParameterSpace
from repro.core.persistence import controller_state_payload
from repro.core.state import PlayerSnapshot, UserState
from repro.fleet import (
    BatchedExitPredictor,
    BatchedMonteCarloEvaluator,
    DeviceMixScenario,
    FlashCrowdScenario,
    FleetConfig,
    FleetOrchestrator,
    LingXiFleetFactory,
    RegionalDegradationScenario,
    SteadyStateScenario,
    available_scenarios,
    get_scenario,
    load_fleet_checkpoint,
    read_events,
    replay_log_collection,
    save_fleet_checkpoint,
)
from repro.sim.bandwidth import BandwidthModel
from repro.sim.video import BitrateLadder, VideoLibrary
from repro.users.population import UserPopulation

STALL_BINS = [0.0, 1.0, 2.0, 4.0, 8.0]


@pytest.fixture
def fleet_population() -> UserPopulation:
    """Small population skewed low-bandwidth so stalls and exits occur."""
    return UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture
def fleet_library() -> VideoLibrary:
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def run_small_fleet(population, library, tmp_path=None, **overrides):
    defaults = dict(
        num_shards=4, num_workers=0, sessions_per_user=2, trace_length=60, seed=9
    )
    defaults.update(overrides)
    telemetry = None if tmp_path is None else tmp_path / "telemetry.jsonl"
    return FleetOrchestrator(FleetConfig(**defaults)).run(
        population, library, telemetry_path=telemetry
    )


class TestOrchestrator:
    def test_shards_are_round_robin_and_cover_population(self, fleet_population):
        shards = fleet_population.shards(3)
        assert sum(len(s) for s in shards) == len(fleet_population)
        assert [p.user_id for p in shards[0]] == [
            p.user_id for i, p in enumerate(fleet_population) if i % 3 == 0
        ]

    def test_fleet_run_produces_expected_sessions(
        self, fleet_population, fleet_library, tmp_path
    ):
        result = run_small_fleet(fleet_population, fleet_library, tmp_path)
        assert result.metrics.num_sessions == 2 * len(fleet_population)
        assert result.metrics.num_segments > 0
        assert len(result.shard_outputs) == 4
        assert result.telemetry_path is not None and result.telemetry_path.exists()

    def test_determinism_same_seed_same_metrics(self, fleet_population, fleet_library):
        first = run_small_fleet(fleet_population, fleet_library)
        second = run_small_fleet(fleet_population, fleet_library)
        assert first.metrics == second.metrics

    def test_determinism_across_worker_counts(self, fleet_population, fleet_library):
        inline = run_small_fleet(fleet_population, fleet_library, num_workers=0)
        pooled = run_small_fleet(fleet_population, fleet_library, num_workers=2)
        assert inline.metrics == pooled.metrics
        np.testing.assert_array_equal(
            inline.logs.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
            pooled.logs.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
        )

    def test_different_seed_changes_traffic(self, fleet_population, fleet_library):
        first = run_small_fleet(fleet_population, fleet_library, seed=9)
        second = run_small_fleet(fleet_population, fleet_library, seed=10)
        assert first.metrics != second.metrics

    def test_rejects_invalid_config(self):
        with pytest.raises(ValueError):
            FleetConfig(num_shards=0)
        with pytest.raises(ValueError):
            FleetConfig(sessions_per_user=0)


class TestTelemetry:
    def test_roundtrip_equals_in_memory_aggregates(
        self, fleet_population, fleet_library, tmp_path
    ):
        result = run_small_fleet(fleet_population, fleet_library, tmp_path)
        replayed = replay_log_collection(result.telemetry_path)
        assert len(replayed) == len(result.logs)
        np.testing.assert_array_equal(
            result.logs.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
            replayed.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
        )
        assert replayed.segment_exit_rate() == result.logs.segment_exit_rate()
        assert sum(s.watch_time for s in replayed) == sum(
            s.watch_time for s in result.logs
        )
        assert sum(s.total_stall_time for s in replayed) == sum(
            s.total_stall_time for s in result.logs
        )

    def test_event_stream_structure(self, fleet_population, fleet_library, tmp_path):
        result = run_small_fleet(fleet_population, fleet_library, tmp_path)
        events = list(read_events(result.telemetry_path))
        assert events[0].event == "run_start"
        assert events[-1].event == "run_end"
        kinds = {event.event for event in events}
        assert kinds == {"run_start", "session", "shard_summary", "run_end"}
        sessions = [e for e in events if e.event == "session"]
        assert len(sessions) == result.metrics.num_sessions
        assert all(e.run_id == result.run_id for e in events)
        assert {e.shard for e in sessions} == {0, 1, 2, 3}
        # run_end carries the deterministic fleet metrics
        assert events[-1].payload["num_sessions"] == result.metrics.num_sessions


class TestBatchedPredictor:
    @pytest.fixture(scope="class")
    def predictor(self) -> ExitRatePredictor:
        return ExitRatePredictor(channels=8, hidden=16, seed=0)

    def test_predict_many_matches_per_row(self, predictor, rng):
        batched = BatchedExitPredictor(predictor)
        n = 48
        features = rng.normal(size=(n, 5, 8))
        levels = rng.integers(0, 4, size=n)
        switches = rng.integers(-3, 4, size=n)
        stalled = rng.random(n) < 0.5
        batch_values = batched.predict_many(features, levels, switches, stalled)
        row_values = np.asarray(
            [
                predictor.predict(
                    features[i],
                    level=int(levels[i]),
                    switch_magnitude=int(switches[i]),
                    stalled=bool(stalled[i]),
                )
                for i in range(n)
            ]
        )
        np.testing.assert_allclose(batch_values, row_values, atol=1e-9)

    def test_baseline_many_matches_statistics_model(self, predictor):
        batched = BatchedExitPredictor(predictor)
        levels = np.asarray([0, 1, 2, 3, 3])
        switches = np.asarray([0, 1, -1, 3, -3])
        expected = [
            predictor.statistics_model.predict(int(l), int(s))
            for l, s in zip(levels, switches)
        ]
        np.testing.assert_allclose(
            batched.baseline_many(levels, switches), expected, atol=1e-12
        )

    def test_predict_many_rejects_bad_shapes(self, predictor):
        batched = BatchedExitPredictor(predictor)
        with pytest.raises(ValueError):
            batched.predict_many(
                np.zeros((2, 4, 8)),
                np.asarray([0, 1]),
                np.asarray([0, 0]),
                np.asarray([True, True]),
            )


def _snapshot_and_state() -> tuple[PlayerSnapshot, UserState]:
    bandwidth = BandwidthModel(window=8)
    for value in (600.0, 560.0, 640.0, 580.0, 620.0, 600.0, 590.0, 610.0):
        bandwidth.update(value)
    snapshot = PlayerSnapshot(
        ladder=BitrateLadder(),
        segment_duration=2.0,
        buffer=2.0,
        last_level=1,
        bandwidth_model=bandwidth,
    )
    state = UserState()
    for k in range(8):
        state.observe_segment(
            bitrate_kbps=750.0,
            throughput_kbps=600.0,
            stall_time=0.4 if k % 2 == 0 else 0.0,
            segment_duration=2.0,
        )
    return snapshot, state


class TestBatchedMonteCarlo:
    @pytest.fixture(scope="class")
    def predictor(self) -> ExitRatePredictor:
        return ExitRatePredictor(channels=8, hidden=16, seed=0)

    def test_deterministic_for_fixed_seed(self, predictor):
        snapshot, state = _snapshot_and_state()
        evaluator = BatchedMonteCarloEvaluator(
            predictor, config=MonteCarloConfig(num_samples=6, seed=3)
        )
        abr = HYB()
        parameters = QoEParameters(beta=0.8)
        first = evaluator.evaluate(
            parameters, abr, snapshot, state, rng=np.random.default_rng(7)
        )
        second = evaluator.evaluate(
            parameters, abr, snapshot, state, rng=np.random.default_rng(7)
        )
        assert first == second
        assert 0.0 <= first <= 1.0

    def test_restores_live_parameters(self, predictor):
        snapshot, state = _snapshot_and_state()
        evaluator = BatchedMonteCarloEvaluator(
            predictor, config=MonteCarloConfig(num_samples=4, seed=3)
        )
        abr = HYB(parameters=QoEParameters(beta=0.9))
        evaluator.evaluate(QoEParameters(beta=0.5), abr, snapshot, state)
        assert abr.parameters.beta == 0.9

    def test_constant_probability_bounds(self, predictor):
        snapshot, state = _snapshot_and_state()

        class ConstantPredictor(BatchedExitPredictor):
            def __init__(self, value):
                super().__init__(ExitRatePredictor(channels=8, hidden=16, seed=1))
                self.value = value

            def predict_many(self, features, levels, switches, stalled):
                return np.full(np.asarray(levels).size, self.value)

        always = BatchedMonteCarloEvaluator(
            ConstantPredictor(1.0), config=MonteCarloConfig(num_samples=5, seed=0)
        )
        never = BatchedMonteCarloEvaluator(
            ConstantPredictor(0.0), config=MonteCarloConfig(num_samples=5, seed=0)
        )
        abr = HYB()
        parameters = QoEParameters(beta=0.8)
        assert always.evaluate(parameters, abr, snapshot, state) == 1.0
        assert never.evaluate(parameters, abr, snapshot, state) == 0.0

    def test_agrees_with_sequential_estimator(self, predictor):
        """Both estimators target the same quantity; with many samples the
        estimates must land in the same neighbourhood."""
        snapshot, state = _snapshot_and_state()
        config = MonteCarloConfig(num_samples=48, max_sample_duration_s=40.0, seed=3)
        abr = HYB()
        parameters = QoEParameters(beta=0.8)
        sequential = MonteCarloEvaluator(predictor, config=config).evaluate(
            parameters, abr, snapshot, state, rng=np.random.default_rng(11)
        )
        lockstep = BatchedMonteCarloEvaluator(predictor, config=config).evaluate(
            parameters, abr, snapshot, state, rng=np.random.default_rng(11)
        )
        assert abs(sequential - lockstep) < 0.2

    def test_drops_into_controller(self, predictor):
        controller = LingXiController(
            parameter_space=ParameterSpace.for_hyb(),
            predictor=predictor,
            monte_carlo=MonteCarloConfig(num_samples=2, seed=0),
            config=ControllerConfig(mode="fixed", fixed_candidates_per_dimension=2),
        )
        controller.evaluator = BatchedMonteCarloEvaluator(
            predictor, config=MonteCarloConfig(num_samples=2, seed=0)
        )
        snapshot, state = _snapshot_and_state()
        controller.user_state = state
        chosen = controller.optimize(HYB(), snapshot)
        assert isinstance(chosen, QoEParameters)
        assert len(controller.history) == 1


class TestScenarios:
    def test_registry_contains_builtin_workloads(self):
        names = available_scenarios()
        for expected in (
            "steady_state",
            "flash_crowd",
            "regional_degradation",
            "device_mix",
        ):
            assert expected in names
        with pytest.raises(KeyError):
            get_scenario("not_a_scenario")

    def test_flash_crowd_multiplies_sessions_and_congests(self, fleet_population, rng):
        steady = SteadyStateScenario()
        crowd = FlashCrowdScenario(session_multiplier=3.0, congestion_factor=0.5)
        profile = fleet_population[0]
        assert crowd.sessions_for(profile, rng) == 3 * steady.sessions_for(profile, rng)
        steady_trace = steady.trace_for(profile, np.random.default_rng(0), 80)
        crowd_trace = crowd.trace_for(profile, np.random.default_rng(0), 80)
        assert crowd_trace.mean < steady_trace.mean

    def test_regional_degradation_hits_fixed_cohort(self, fleet_population):
        scenario = RegionalDegradationScenario(
            affected_fraction=0.5, degradation_factor=0.25
        )
        affected = [p for p in fleet_population if scenario.is_affected(p)]
        unaffected = [p for p in fleet_population if not scenario.is_affected(p)]
        assert affected and unaffected
        profile = affected[0]
        degraded = scenario.trace_for(profile, np.random.default_rng(1), 120)
        baseline = profile.bandwidth_trace(120, np.random.default_rng(1))
        assert degraded.mean < baseline.mean
        # cohort membership is stable (hash-based, not RNG-consuming)
        assert [scenario.is_affected(p) for p in fleet_population] == [
            scenario.is_affected(p) for p in fleet_population
        ]

    def test_device_mix_assigns_ladders(self, fleet_population, rng):
        scenario = DeviceMixScenario(mobile_fraction=0.5, tv_fraction=0.2, seed=0)
        library = VideoLibrary(num_videos=2, seed=0)
        devices = {scenario.device_for(p) for p in fleet_population}
        assert devices <= {"mobile", "desktop", "tv"}
        full_levels = BitrateLadder().num_levels
        for profile in fleet_population:
            video = scenario.video_for(profile, library, rng)
            if scenario.device_for(profile) == "mobile":
                assert video.ladder.num_levels == full_levels - 1
            else:
                assert video.ladder.num_levels == full_levels

    def test_scenario_shapes_fleet_traffic(self, fleet_population, fleet_library):
        steady = run_small_fleet(fleet_population, fleet_library)
        crowd = FleetOrchestrator(
            FleetConfig(
                num_shards=2, num_workers=0, sessions_per_user=2, trace_length=60, seed=9
            )
        ).run(fleet_population, fleet_library, scenario="flash_crowd")
        assert crowd.metrics.num_sessions == 3 * steady.metrics.num_sessions


class TestCheckpoint:
    def _controller(self, seed: int = 0) -> LingXiController:
        return LingXiController(
            parameter_space=ParameterSpace.for_hyb(),
            predictor=ExitRatePredictor(channels=8, hidden=16, seed=seed),
            config=ControllerConfig(seed=seed),
        )

    def test_checkpoint_roundtrip_via_fleet_run(
        self, fleet_population, fleet_library, tmp_path
    ):
        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        factory = LingXiFleetFactory(
            predictor, monte_carlo=MonteCarloConfig(num_samples=2, seed=0)
        )
        small = UserPopulation(list(fleet_population)[:4])
        config = FleetConfig(
            num_shards=2, num_workers=0, sessions_per_user=1, trace_length=40, seed=3
        )
        result = FleetOrchestrator(config).run(small, fleet_library, abr_factory=factory)
        assert set(result.controller_states) == {p.user_id for p in small}

        path = save_fleet_checkpoint(result, tmp_path / "ckpt.json")
        checkpoint = load_fleet_checkpoint(path)
        assert checkpoint.num_users == 4
        assert checkpoint.states == result.controller_states

        # Restoring into a fresh controller reproduces the long-term layer.
        user_id = next(iter(checkpoint.states))
        controller = self._controller()
        from repro.core.persistence import restore_controller_state

        restore_controller_state(controller, checkpoint.states[user_id])
        assert (
            controller_state_payload(controller)["user_state"]
            == checkpoint.states[user_id]["user_state"]
        )

    def test_resumed_run_carries_lifetime_state(
        self, fleet_population, fleet_library
    ):
        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        factory = LingXiFleetFactory(
            predictor, monte_carlo=MonteCarloConfig(num_samples=2, seed=0)
        )
        small = UserPopulation(list(fleet_population)[:3])
        config = FleetConfig(
            num_shards=1, num_workers=0, sessions_per_user=1, trace_length=40, seed=3
        )
        day0 = FleetOrchestrator(config).run(small, fleet_library, abr_factory=factory)
        day1 = FleetOrchestrator(config).run(
            small,
            fleet_library,
            abr_factory=factory,
            controller_states=day0.controller_states,
        )
        total = lambda result: sum(  # noqa: E731
            s["user_state"]["lifetime_segments"]
            for s in result.controller_states.values()
        )
        assert total(day0) > 0
        assert total(day1) > total(day0)

    def test_bumped_version_checkpoint_is_rejected(self, tmp_path):
        """A checkpoint from a different schema version must never restore blindly."""
        import json

        from repro.fleet.checkpoint import CHECKPOINT_VERSION, save_checkpoint_states

        path = save_checkpoint_states({"u0": {"user_state": {}}}, tmp_path / "c.json")
        raw = json.loads(path.read_text())
        raw["version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_fleet_checkpoint(path)
        # missing version field counts as version 0 and is rejected too
        del raw["version"]
        path.write_text(json.dumps(raw))
        with pytest.raises(ValueError, match="unsupported checkpoint version"):
            load_fleet_checkpoint(path)

    def test_registered_migration_upgrades_old_checkpoint(self, tmp_path):
        import json

        from repro.fleet.checkpoint import (
            _MIGRATIONS,
            CHECKPOINT_VERSION,
            register_checkpoint_migration,
            save_checkpoint_states,
        )

        path = save_checkpoint_states(
            {"u0": {"user_state": {}}}, tmp_path / "c.json", run_id="legacy", day=2
        )
        raw = json.loads(path.read_text())
        raw["version"] = 0
        path.write_text(json.dumps(raw))

        def upgrade(document: dict) -> dict:
            document = dict(document)
            document["version"] = CHECKPOINT_VERSION
            return document

        with pytest.raises(ValueError):
            register_checkpoint_migration(CHECKPOINT_VERSION, upgrade)
        register_checkpoint_migration(0, upgrade)
        try:
            checkpoint = load_fleet_checkpoint(path)
            assert checkpoint.version == CHECKPOINT_VERSION
            assert checkpoint.run_id == "legacy" and checkpoint.day == 2
            assert checkpoint.num_users == 1
        finally:
            _MIGRATIONS.pop(0, None)

    def test_stuck_migration_chain_is_rejected(self, tmp_path):
        import json

        from repro.fleet.checkpoint import _MIGRATIONS, register_checkpoint_migration

        path = tmp_path / "c.json"
        path.write_text(json.dumps({"version": 0, "states": {}}))
        register_checkpoint_migration(0, lambda document: dict(document))
        try:
            with pytest.raises(ValueError, match="does not progress"):
                load_fleet_checkpoint(path)
        finally:
            _MIGRATIONS.pop(0, None)


class TestPlaybackTraceCache:
    def test_aggregates_match_manual_computation(self, fleet_population, fleet_library):
        result = run_small_fleet(fleet_population, fleet_library, num_shards=1)
        trace = result.logs[0].trace
        assert trace.total_stall_time == pytest.approx(
            sum(r.stall_time for r in trace.records)
        )
        assert trace.stall_count == sum(
            1 for r in trace.records if r.stall_time > 1e-12
        )
        assert trace.mean_bitrate_kbps == pytest.approx(
            float(np.mean([r.bitrate_kbps for r in trace.records]))
        )
        assert trace.num_switches == int(
            np.count_nonzero(np.diff([r.level for r in trace.records]))
        )

    def test_cache_invalidated_by_append(self, fleet_population, fleet_library):
        from repro.sim.session import SegmentRecord

        result = run_small_fleet(fleet_population, fleet_library, num_shards=1)
        trace = result.logs[0].trace
        before = trace.total_stall_time
        trace.records.append(
            SegmentRecord(
                segment_index=len(trace),
                level=0,
                bitrate_kbps=350.0,
                size_kbit=700.0,
                bandwidth_kbps=500.0,
                download_time=1.4,
                stall_time=2.5,
                wait_time=0.0,
                buffer_before=1.0,
                buffer_after=1.6,
                watch_time=trace.watch_time + 2.0,
                cumulative_stall_time=before + 2.5,
                stall_count=trace.stall_count + 1,
                exit_probability=0.0,
                exited=False,
            )
        )
        assert trace.total_stall_time == pytest.approx(before + 2.5)
