"""Observability layer: registry merging, span trees, and trace neutrality.

The hard requirement on ``repro.obs`` is that it is *provably inert*: every
simulated byte must be bit-exact whether profiling is enabled or disabled
(spans read ``time.perf_counter`` and nothing else — never the simulation
RNG).  This suite pins that, plus the deterministic cross-process merge
semantics (counters sum, gauges max, histograms bucket-wise) and the
structural identity of the span tree across shard/worker counts.
"""

from __future__ import annotations

import json

import pytest
from test_golden_traces import GOLDEN_CASES, _roundtrip, _run_case

from repro import obs
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    LongitudinalCampaign,
    LongitudinalConfig,
    replay_run_report,
    replay_run_summary,
)
from repro.obs.registry import Histogram
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@pytest.fixture(autouse=True)
def obs_disabled_after():
    """No test may leak an enabled collector into the rest of the suite."""
    yield
    obs.disable()


@pytest.fixture(scope="module")
def population() -> UserPopulation:
    return UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture(scope="module")
def library() -> VideoLibrary:
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def _run_fleet(population, library, *, shards, workers=0, profile=False,
               telemetry=None, **overrides):
    if profile:
        obs.enable()
    try:
        config = FleetConfig(
            num_shards=shards,
            num_workers=workers,
            sessions_per_user=2,
            trace_length=40,
            seed=9,
            backend="vector",
            network="dual_isp",
            **overrides,
        )
        return FleetOrchestrator(config).run(
            population, library, telemetry_path=telemetry
        )
    finally:
        obs.disable()


def _session_map(result):
    return {
        (log.user_id, log.session_index): (
            log.trace.exited_early,
            tuple(log.trace.records),
        )
        for log in result.logs
    }


class TestRegistry:
    def test_counters_sum_gauges_max_histograms_bucketwise(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter_add("x", 2)
        b.counter_add("x", 3)
        a.gauge_max("g", 5.0)
        b.gauge_max("g", 4.0)
        a.observe("h", 0.5)
        b.observe("h", 2.0)
        a.merge(b)
        payload = a.as_payload()
        assert payload["counters"]["x"] == 5
        assert payload["gauges"]["g"] == 5.0
        assert payload["histograms"]["h"]["count"] == 2
        assert payload["histograms"]["h"]["total"] == 2.5
        assert payload["histograms"]["h"]["min"] == 0.5
        assert payload["histograms"]["h"]["max"] == 2.0

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_merge_is_partition_invariant(self, num_shards):
        """Merging k shard registries gives the same payload for every k."""
        # dyadic values: their float sums are exact in any order, so the
        # payload comparison below is bit-exact rather than approximate
        observations = [(i % 5, 0.25 * (i + 1)) for i in range(40)]

        shards = [obs.MetricsRegistry() for _ in range(num_shards)]
        for i, (bucket, value) in enumerate(observations):
            registry = shards[i % num_shards]
            registry.counter_add(f"c{bucket}")
            registry.gauge_max("peak", value)
            registry.observe("latency", value)

        merged = obs.MetricsRegistry()
        for shard in shards:
            # merge accepts live registries and serialised payloads alike
            # (the orchestrator receives payloads from pool workers)
            merged.merge(shard.as_payload() if num_shards % 2 else shard)

        reference = obs.MetricsRegistry()
        for bucket, value in observations:
            reference.counter_add(f"c{bucket}")
            reference.gauge_max("peak", value)
            reference.observe("latency", value)
        assert merged.as_payload() == reference.as_payload()

    def test_histogram_payload_roundtrip(self):
        h = Histogram()
        for value in (1e-7, 0.003, 4.2, 1e7):
            h.observe(value)
        assert Histogram.from_payload(h.as_payload()).as_payload() == h.as_payload()
        empty = Histogram()
        assert empty.as_payload()["min"] is None
        assert empty.as_payload()["max"] is None


class TestSpans:
    def test_span_tree_shape_and_helpers(self):
        with obs.collect() as collector:
            with obs.span("outer"):
                for _ in range(3):
                    with obs.span("inner"):
                        pass
                with obs.span("other"):
                    pass
        snapshot = collector.snapshot()
        assert obs.span_names(snapshot["spans"]) == [
            "outer",
            "outer/inner",
            "outer/other",
        ]
        inner = obs.find_span(snapshot["spans"], "outer/inner")
        assert inner["count"] == 3
        assert obs.find_span(snapshot["spans"], "outer/missing") is None
        outer = obs.find_span(snapshot["spans"], "outer")
        assert 0.0 <= obs.span_coverage(outer) <= 1.0

    def test_merge_shard_snapshot_grafts_under_open_span(self):
        with obs.collect() as worker:
            with obs.span("shard.run"):
                obs.counter_add("work", 7)
        shard_snapshot = worker.snapshot()

        with obs.collect() as parent:
            with obs.span("fleet.run_shards"):
                obs.merge_shard_snapshot(shard_snapshot)
            snapshot = parent.snapshot()
        assert obs.span_names(snapshot["spans"]) == [
            "fleet.run_shards",
            "fleet.run_shards/shard.run",
        ]
        assert snapshot["metrics"]["counters"]["work"] == 7

    def test_disabled_is_inert_noop(self):
        assert not obs.enabled()
        assert obs.active() is None
        noop = obs.span("anything")
        assert noop is obs.span("anything else")  # shared singleton, no alloc
        with noop:
            pass
        obs.counter_add("ignored")
        obs.gauge_max("ignored", 1.0)
        obs.observe("ignored", 1.0)
        with obs.collect() as collector:
            obs.counter_add("seen")
        assert collector.snapshot()["metrics"]["counters"] == {"seen": 1}
        assert not obs.enabled()

    def test_disabled_span_overhead_smoke(self):
        """No-op spans must be cheap; generous bound to stay CI-safe."""
        import time

        start = time.perf_counter()
        for _ in range(100_000):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0


class TestFleetProfile:
    def test_profiled_run_is_bit_exact_vs_unprofiled(self, population, library):
        plain = _run_fleet(population, library, shards=2)
        profiled = _run_fleet(population, library, shards=2, profile=True)
        assert _session_map(plain) == _session_map(profiled)
        assert plain.metrics.as_dict() == profiled.metrics.as_dict()
        assert plain.obs_report is None
        assert profiled.obs_report is not None

    def test_span_structure_identical_across_shard_and_worker_counts(
        self, population, library
    ):
        reports = [
            _run_fleet(population, library, shards=shards, workers=workers,
                       profile=True).obs_report
            for shards, workers in [(1, 0), (2, 0), (2, 2), (4, 2)]
        ]
        names = [obs.span_names(report["spans"]) for report in reports]
        assert names[0] == names[1] == names[2] == names[3]
        # the pooled and inline paths emit the same skeleton
        assert "fleet.run_day/fleet.run_shards/shard.spawn" in names[0]
        assert "fleet.run_day/fleet.run_shards/shard.run/shard.run_batch" in names[0]

    def test_report_contents_and_coverage(self, population, library):
        result = _run_fleet(population, library, shards=2, workers=2, profile=True)
        report = result.obs_report
        assert report["version"] == obs.REPORT_VERSION
        assert report["sessions"] == result.metrics.num_sessions
        assert report["sessions"] == sum(
            s["sessions"] for s in report["per_shard"]
        )
        assert report["span_coverage"] >= 0.9
        assert report["fallback"]["total_batch_sessions"] == report["sessions"]
        counters = report["metrics"]["counters"]
        assert counters["fleet.shards"] == 2
        assert counters["allocator.slots"] > 0
        assert report["peak_rss_bytes"] is None or report["peak_rss_bytes"] > 0

    def test_run_report_and_fallback_fields_replay_from_telemetry(
        self, population, library, tmp_path
    ):
        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(
            population, library, shards=2, profile=True, telemetry=telemetry
        )
        summary = replay_run_summary(telemetry)
        assert summary["total_fallback_sessions"] == result.total_fallback_sessions
        assert summary["total_batch_sessions"] == result.total_batch_sessions
        assert summary["last_fallback_sessions"] == result.total_fallback_sessions
        assert summary["num_sessions"] == result.metrics.num_sessions
        replayed = replay_run_report(telemetry)
        assert replayed == json.loads(json.dumps(result.obs_report))

    def test_unprofiled_telemetry_has_no_run_report(
        self, population, library, tmp_path
    ):
        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(population, library, shards=2, telemetry=telemetry)
        assert replay_run_report(telemetry) is None
        summary = replay_run_summary(telemetry)
        assert summary["total_batch_sessions"] == result.total_batch_sessions


class TestLongitudinalProfile:
    def _campaign(self, population, library):
        config = LongitudinalConfig(
            days=2,
            seed=11,
            num_shards=2,
            num_workers=0,
            sessions_per_user=2,
            trace_length=40,
            backend="vector",
            network="dual_isp",
        )
        return LongitudinalCampaign(config).run(population, library)

    def test_campaign_bit_exact_and_span_shape(self, population, library):
        plain = self._campaign(population, library)
        obs.enable()
        try:
            profiled = self._campaign(population, library)
            report = obs.build_run_report(run_id="campaign")
        finally:
            obs.disable()

        def day_map(result):
            return {
                (day.day, log.user_id, log.session_index): tuple(log.trace.records)
                for day in result.days
                for log in day.result.logs
            }

        assert day_map(plain) == day_map(profiled)

        names = set(obs.span_names(report["spans"]))
        assert "campaign.run/campaign.day" in names
        assert "campaign.run/campaign.day/fleet.run_day" in names
        assert (
            "campaign.run/campaign.day/fleet.run_day/fleet.run_shards/"
            "shard.run/shard.run_batch" in names
        )
        assert "campaign.run/campaign.day/campaign.retention" in names
        day = obs.find_span(report["spans"], "campaign.run/campaign.day")
        assert day["count"] == 2  # days merge by name into one node
        assert report["span_coverage"] >= 0.9


class TestGoldenTraceNeutrality:
    @pytest.mark.parametrize("case", ["hyb", "bola_networked"])
    @pytest.mark.parametrize("backend_name", ["scalar", "vector"])
    def test_golden_case_bit_exact_with_obs_enabled(self, case, backend_name):
        assert case in GOLDEN_CASES
        baseline = _roundtrip(_run_case(case, backend_name))
        obs.enable()
        try:
            profiled = _roundtrip(_run_case(case, backend_name))
        finally:
            obs.disable()
        assert profiled == baseline
