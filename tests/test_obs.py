"""Observability layer: registry merging, span trees, and trace neutrality.

The hard requirement on ``repro.obs`` is that it is *provably inert*: every
simulated byte must be bit-exact whether profiling is enabled or disabled
(spans read ``time.perf_counter`` and nothing else — never the simulation
RNG).  This suite pins that, plus the deterministic cross-process merge
semantics (counters sum, gauges max, histograms bucket-wise) and the
structural identity of the span tree across shard/worker counts.
"""

from __future__ import annotations

import json

import pytest
from test_golden_traces import GOLDEN_CASES, _roundtrip, _run_case

from repro import obs
from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    LongitudinalCampaign,
    LongitudinalConfig,
    replay_run_report,
    replay_run_summary,
)
from repro.obs.registry import Histogram
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@pytest.fixture(autouse=True)
def obs_disabled_after():
    """No test may leak an enabled collector into the rest of the suite."""
    yield
    obs.disable()


@pytest.fixture(scope="module")
def population() -> UserPopulation:
    return UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture(scope="module")
def library() -> VideoLibrary:
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def _run_fleet(population, library, *, shards, workers=0, profile=False,
               telemetry=None, **overrides):
    if profile:
        obs.enable()
    try:
        config = FleetConfig(
            num_shards=shards,
            num_workers=workers,
            sessions_per_user=2,
            trace_length=40,
            seed=9,
            backend="vector",
            network="dual_isp",
            **overrides,
        )
        return FleetOrchestrator(config).run(
            population, library, telemetry_path=telemetry
        )
    finally:
        obs.disable()


def _session_map(result):
    return {
        (log.user_id, log.session_index): (
            log.trace.exited_early,
            tuple(log.trace.records),
        )
        for log in result.logs
    }


class TestRegistry:
    def test_counters_sum_gauges_max_histograms_bucketwise(self):
        a, b = obs.MetricsRegistry(), obs.MetricsRegistry()
        a.counter_add("x", 2)
        b.counter_add("x", 3)
        a.gauge_max("g", 5.0)
        b.gauge_max("g", 4.0)
        a.observe("h", 0.5)
        b.observe("h", 2.0)
        a.merge(b)
        payload = a.as_payload()
        assert payload["counters"]["x"] == 5
        assert payload["gauges"]["g"] == 5.0
        assert payload["histograms"]["h"]["count"] == 2
        assert payload["histograms"]["h"]["total"] == 2.5
        assert payload["histograms"]["h"]["min"] == 0.5
        assert payload["histograms"]["h"]["max"] == 2.0

    @pytest.mark.parametrize("num_shards", [1, 2, 4, 7])
    def test_merge_is_partition_invariant(self, num_shards):
        """Merging k shard registries gives the same payload for every k."""
        # dyadic values: their float sums are exact in any order, so the
        # payload comparison below is bit-exact rather than approximate
        observations = [(i % 5, 0.25 * (i + 1)) for i in range(40)]

        shards = [obs.MetricsRegistry() for _ in range(num_shards)]
        for i, (bucket, value) in enumerate(observations):
            registry = shards[i % num_shards]
            registry.counter_add(f"c{bucket}")
            registry.gauge_max("peak", value)
            registry.observe("latency", value)

        merged = obs.MetricsRegistry()
        for shard in shards:
            # merge accepts live registries and serialised payloads alike
            # (the orchestrator receives payloads from pool workers)
            merged.merge(shard.as_payload() if num_shards % 2 else shard)

        reference = obs.MetricsRegistry()
        for bucket, value in observations:
            reference.counter_add(f"c{bucket}")
            reference.gauge_max("peak", value)
            reference.observe("latency", value)
        assert merged.as_payload() == reference.as_payload()

    def test_histogram_payload_roundtrip(self):
        h = Histogram()
        for value in (1e-7, 0.003, 4.2, 1e7):
            h.observe(value)
        assert Histogram.from_payload(h.as_payload()).as_payload() == h.as_payload()
        empty = Histogram()
        assert empty.as_payload()["min"] is None
        assert empty.as_payload()["max"] is None


class TestSpans:
    def test_span_tree_shape_and_helpers(self):
        with obs.collect() as collector:
            with obs.span("outer"):
                for _ in range(3):
                    with obs.span("inner"):
                        pass
                with obs.span("other"):
                    pass
        snapshot = collector.snapshot()
        assert obs.span_names(snapshot["spans"]) == [
            "outer",
            "outer/inner",
            "outer/other",
        ]
        inner = obs.find_span(snapshot["spans"], "outer/inner")
        assert inner["count"] == 3
        assert obs.find_span(snapshot["spans"], "outer/missing") is None
        outer = obs.find_span(snapshot["spans"], "outer")
        assert 0.0 <= obs.span_coverage(outer) <= 1.0

    def test_merge_shard_snapshot_grafts_under_open_span(self):
        with obs.collect() as worker:
            with obs.span("shard.run"):
                obs.counter_add("work", 7)
        shard_snapshot = worker.snapshot()

        with obs.collect() as parent:
            with obs.span("fleet.run_shards"):
                obs.merge_shard_snapshot(shard_snapshot)
            snapshot = parent.snapshot()
        assert obs.span_names(snapshot["spans"]) == [
            "fleet.run_shards",
            "fleet.run_shards/shard.run",
        ]
        assert snapshot["metrics"]["counters"]["work"] == 7

    def test_disabled_is_inert_noop(self):
        assert not obs.enabled()
        assert obs.active() is None
        noop = obs.span("anything")
        assert noop is obs.span("anything else")  # shared singleton, no alloc
        with noop:
            pass
        obs.counter_add("ignored")
        obs.gauge_max("ignored", 1.0)
        obs.observe("ignored", 1.0)
        with obs.collect() as collector:
            obs.counter_add("seen")
        assert collector.snapshot()["metrics"]["counters"] == {"seen": 1}
        assert not obs.enabled()

    def test_disabled_span_overhead_smoke(self):
        """No-op spans must be cheap; generous bound to stay CI-safe."""
        import time

        start = time.perf_counter()
        for _ in range(100_000):
            with obs.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        assert elapsed < 2.0


class TestFleetProfile:
    def test_profiled_run_is_bit_exact_vs_unprofiled(self, population, library):
        plain = _run_fleet(population, library, shards=2)
        profiled = _run_fleet(population, library, shards=2, profile=True)
        assert _session_map(plain) == _session_map(profiled)
        assert plain.metrics.as_dict() == profiled.metrics.as_dict()
        assert plain.obs_report is None
        assert profiled.obs_report is not None

    def test_span_structure_identical_across_shard_and_worker_counts(
        self, population, library
    ):
        reports = [
            _run_fleet(population, library, shards=shards, workers=workers,
                       profile=True).obs_report
            for shards, workers in [(1, 0), (2, 0), (2, 2), (4, 2)]
        ]
        names = [obs.span_names(report["spans"]) for report in reports]
        assert names[0] == names[1] == names[2] == names[3]
        # the pooled and inline paths emit the same skeleton
        assert "fleet.run_day/fleet.run_shards/shard.spawn" in names[0]
        assert "fleet.run_day/fleet.run_shards/shard.run/shard.run_batch" in names[0]

    def test_report_contents_and_coverage(self, population, library):
        result = _run_fleet(population, library, shards=2, workers=2, profile=True)
        report = result.obs_report
        assert report["version"] == obs.REPORT_VERSION
        assert report["sessions"] == result.metrics.num_sessions
        assert report["sessions"] == sum(
            s["sessions"] for s in report["per_shard"]
        )
        assert report["span_coverage"] >= 0.9
        assert report["fallback"]["total_batch_sessions"] == report["sessions"]
        counters = report["metrics"]["counters"]
        assert counters["fleet.shards"] == 2
        assert counters["allocator.slots"] > 0
        assert report["peak_rss_bytes"] is None or report["peak_rss_bytes"] > 0

    def test_run_report_and_fallback_fields_replay_from_telemetry(
        self, population, library, tmp_path
    ):
        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(
            population, library, shards=2, profile=True, telemetry=telemetry
        )
        summary = replay_run_summary(telemetry)
        assert summary["total_fallback_sessions"] == result.total_fallback_sessions
        assert summary["total_batch_sessions"] == result.total_batch_sessions
        assert summary["last_fallback_sessions"] == result.total_fallback_sessions
        assert summary["num_sessions"] == result.metrics.num_sessions
        replayed = replay_run_report(telemetry)
        assert replayed == json.loads(json.dumps(result.obs_report))

    def test_unprofiled_telemetry_has_no_run_report(
        self, population, library, tmp_path
    ):
        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(population, library, shards=2, telemetry=telemetry)
        assert replay_run_report(telemetry) is None
        summary = replay_run_summary(telemetry)
        assert summary["total_batch_sessions"] == result.total_batch_sessions


class TestLongitudinalProfile:
    def _campaign(self, population, library):
        config = LongitudinalConfig(
            days=2,
            seed=11,
            num_shards=2,
            num_workers=0,
            sessions_per_user=2,
            trace_length=40,
            backend="vector",
            network="dual_isp",
        )
        return LongitudinalCampaign(config).run(population, library)

    def test_campaign_bit_exact_and_span_shape(self, population, library):
        plain = self._campaign(population, library)
        obs.enable()
        try:
            profiled = self._campaign(population, library)
            report = obs.build_run_report(run_id="campaign")
        finally:
            obs.disable()

        def day_map(result):
            return {
                (day.day, log.user_id, log.session_index): tuple(log.trace.records)
                for day in result.days
                for log in day.result.logs
            }

        assert day_map(plain) == day_map(profiled)

        names = set(obs.span_names(report["spans"]))
        assert "campaign.run/campaign.day" in names
        assert "campaign.run/campaign.day/fleet.run_day" in names
        assert (
            "campaign.run/campaign.day/fleet.run_day/fleet.run_shards/"
            "shard.run/shard.run_batch" in names
        )
        assert "campaign.run/campaign.day/campaign.retention" in names
        day = obs.find_span(report["spans"], "campaign.run/campaign.day")
        assert day["count"] == 2  # days merge by name into one node
        assert report["span_coverage"] >= 0.9


class TestReportVersions:
    """v1/v2 schema compatibility, empty-run rendering, flexible loading."""

    def _v1_report(self):
        # the shape build_run_report produced before the `live` section
        return {
            "version": 1,
            "run_id": "legacy",
            "wall_time_s": 2.0,
            "sessions": 10,
            "segments": 400,
            "sessions_per_second": 5.0,
            "segments_per_second": 200.0,
            "fallback": {"total_fallback_sessions": 0, "total_batch_sessions": 10},
            "peak_rss_bytes": None,
            "span_coverage": 1.0,
            "spans": {"children": []},
            "metrics": {"counters": {"fleet.sessions": 10}},
        }

    def test_normalize_fills_v1_and_partial_documents(self):
        v1 = self._v1_report()
        normalized = obs.normalize_report(v1)
        assert normalized["live"] is None
        assert normalized["per_shard"] == []
        assert normalized["sessions"] == 10  # existing keys never overwritten
        assert "live" not in v1  # input not mutated
        empty = obs.normalize_report({})
        assert empty["version"] == 1
        assert empty["spans"] == {}

    def test_v2_reports_carry_live_section(self, population, library):
        result = _run_fleet(population, library, shards=2, profile=True)
        report = result.obs_report
        assert report["version"] == 2
        assert "live" in report and report["live"] is None  # no LiveRun attached

    def test_format_report_handles_v1_v2_and_empty(self, population, library):
        v1_text = obs.format_report(self._v1_report())
        assert "legacy" in v1_text and "(no spans recorded)" in v1_text
        # zero-session / empty documents render rather than crash
        empty_text = obs.format_report({})
        assert "run health report" in empty_text
        assert "(no spans recorded)" in empty_text
        result = _run_fleet(population, library, shards=2, workers=2, profile=True)
        v2_text = obs.format_report(result.obs_report)
        assert "per-shard" in v2_text
        assert "fleet.run_day" in v2_text

    def test_format_report_renders_live_and_stragglers(self):
        report = self._v1_report()
        report["live"] = {
            "heartbeat_interval_s": 0.25,
            "sessions_done": 10,
            "throughput_sps": 5.0,
            "stragglers": [
                {"shard": 1, "day": 0, "phase": "run_batch", "stalled_intervals": 9}
            ],
        }
        text = obs.format_report(report)
        assert "live monitor" in text
        assert "straggler shard 1" in text
        report["live"]["stragglers"] = []
        assert "stragglers: (none)" in obs.format_report(report)

    def test_load_report_accepts_json_and_telemetry(
        self, population, library, tmp_path
    ):
        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(
            population, library, shards=2, profile=True, telemetry=telemetry
        )
        report_path = tmp_path / "report.json"
        obs.write_report(result.obs_report, report_path)
        from_json = obs.load_report(report_path)
        from_telemetry = obs.load_report(telemetry)
        assert from_json == json.loads(json.dumps(result.obs_report))
        assert from_telemetry == from_json

    def test_load_report_rejects_unprofiled_telemetry(
        self, population, library, tmp_path
    ):
        telemetry = tmp_path / "telemetry.jsonl"
        _run_fleet(population, library, shards=2, telemetry=telemetry)
        with pytest.raises(SystemExit, match="no run_report"):
            obs.load_report(telemetry)

    def test_report_main_prints_both_input_kinds(
        self, population, library, tmp_path, capsys
    ):
        from repro.obs import report as report_mod

        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(
            population, library, shards=2, profile=True, telemetry=telemetry
        )
        report_path = tmp_path / "report.json"
        obs.write_report(result.obs_report, report_path)
        report_mod.main([str(report_path)])
        report_mod.main([str(telemetry)])
        out = capsys.readouterr().out
        assert out.count("run health report") == 2


class TestTraceExport:
    def test_span_tree_to_events_proportional_layout(self):
        from repro.obs.trace_export import span_tree_to_events

        spans = {
            "children": [
                {
                    "name": "outer",
                    "total_s": 2.0,
                    "count": 1,
                    "children": [
                        {"name": "a", "total_s": 0.5, "count": 2, "children": []},
                        {"name": "b", "total_s": 1.0, "count": 1, "children": []},
                    ],
                }
            ]
        }
        events = span_tree_to_events(spans)
        by_name = {e["name"]: e for e in events}
        assert by_name["outer"]["ts"] == 0.0
        assert by_name["outer"]["dur"] == 2_000_000.0
        assert by_name["a"]["ts"] == 0.0 and by_name["a"]["dur"] == 500_000.0
        # children are sequential: b starts where a ends
        assert by_name["b"]["ts"] == 500_000.0
        assert by_name["outer"]["args"]["self_s"] == pytest.approx(0.5)
        assert all(e["ph"] == "X" for e in events)

    def test_export_trace_from_report_and_telemetry(
        self, population, library, tmp_path
    ):
        from repro.obs.trace_export import export_trace

        telemetry = tmp_path / "telemetry.jsonl"
        result = _run_fleet(
            population, library, shards=2, profile=True, telemetry=telemetry
        )
        report_path = tmp_path / "report.json"
        obs.write_report(result.obs_report, report_path)

        out = export_trace(report_path)
        assert out == tmp_path / "report_trace.json"
        doc = json.loads(out.read_text())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        slice_names = {e["name"] for e in slices}
        assert "fleet.run_day" in slice_names
        # one slice per span-tree node
        assert len(slices) == len(obs.span_names(result.obs_report["spans"]))
        assert doc["otherData"]["sessions"] == result.obs_report["sessions"]
        assert doc["otherData"]["run_id"] == result.obs_report["run_id"]
        # nesting is preserved: each child slice fits inside its parent
        by_name = {e["name"]: e for e in slices}
        run_day = by_name["fleet.run_day"]
        for event in slices:
            if event is run_day:
                continue
            assert event["ts"] >= run_day["ts"]

        from_telemetry = export_trace(telemetry, tmp_path / "t_trace.json")
        assert json.loads(from_telemetry.read_text()) == doc

    def test_main_cli(self, population, library, tmp_path, capsys):
        from repro.obs import trace_export

        result = _run_fleet(population, library, shards=1, profile=True)
        report_path = tmp_path / "report.json"
        obs.write_report(result.obs_report, report_path)
        assert trace_export.main([str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "perfetto" in out
        assert (tmp_path / "report_trace.json").exists()


class TestGoldenTraceNeutrality:
    @pytest.mark.parametrize("case", ["hyb", "bola_networked"])
    @pytest.mark.parametrize("backend_name", ["scalar", "vector"])
    def test_golden_case_bit_exact_with_obs_enabled(self, case, backend_name):
        assert case in GOLDEN_CASES
        baseline = _roundtrip(_run_case(case, backend_name))
        obs.enable()
        try:
            profiled = _roundtrip(_run_case(case, backend_name))
        finally:
            obs.disable()
        assert profiled == baseline
