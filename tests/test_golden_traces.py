"""Golden-trace regression corpus: absolute pins on the simulation output.

The equivalence gates (``test_vector_backend.py``, ``test_network.py``) prove
scalar == vector, but both could drift *together* and no test would notice.
This suite pins the engines to committed segment-for-segment traces under
``tests/data/golden/`` — one JSON document per (ABR × networked) case, each
generated from fixed seeds and replayed **bit-exact** on both backends.  Any
change to a single float anywhere in a trace (one ulp is enough) fails the
corresponding case loudly.

Intentional changes regenerate the corpus::

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden

(the scalar run rewrites each file; the vector run immediately re-verifies
it), and the resulting ``tests/data/golden/`` diff is reviewed like code.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

import pytest

from repro.abr.bba import BBA
from repro.abr.bola import BOLA
from repro.abr.hyb import HYB
from repro.abr.robust_mpc import RobustMPC
from repro.abr.throughput import ThroughputRule
from repro.net import CacheModel, EdgeLink, NetworkTopology
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.bandwidth import (
    LowBandwidthTraceGenerator,
    MarkovTraceGenerator,
    StationaryTraceGenerator,
)
from repro.sim.session import SessionConfig
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation

GOLDEN_DIR = Path(__file__).parent / "data" / "golden"

_ABR_FACTORIES = {
    "throughput": ThroughputRule,
    "hyb": HYB,
    "bba": BBA,
    "bola": BOLA,
    "robust_mpc": RobustMPC,
}

_TRACE_GENERATORS = {
    "throughput": StationaryTraceGenerator(1800.0, 500.0),
    "hyb": MarkovTraceGenerator(),
    "bba": StationaryTraceGenerator(2600.0, 700.0),
    "bola": LowBandwidthTraceGenerator(),
    "robust_mpc": MarkovTraceGenerator(),
}


def _toy_topology() -> NetworkTopology:
    return NetworkTopology(
        name="golden_toy",
        links=(
            EdgeLink("east", 9_000.0, user_share=0.6),
            EdgeLink("west", 14_000.0, user_share=0.4),
        ),
    )


def _tiered_topology(allocator: str) -> NetworkTopology:
    """3-tier golden topology: two edges → shared peering → shared origin."""
    return NetworkTopology(
        name="golden_3tier",
        cache=CacheModel(hit_ratio=0.6),
        allocator=allocator,
        links=(
            EdgeLink("east", 9_000.0, user_share=0.6, uplinks=("peer", "origin")),
            EdgeLink("west", 14_000.0, user_share=0.4, uplinks=("peer", "origin")),
            EdgeLink("peer", 12_000.0, tier="peering"),
            EdgeLink("origin", 8_000.0, tier="origin"),
        ),
    )


def _case_topology(networked: bool | str) -> NetworkTopology | None:
    """``networked`` is False, True (flat toy), or an allocator name (tiered)."""
    if not networked:
        return None
    if networked is True:
        return _toy_topology()
    return _tiered_topology(networked)


def _batch(abr_name: str, seed: int, networked: bool | str) -> list[SessionSpec]:
    """Fixed-seed heterogeneous batch for one golden case."""
    import numpy as np

    rng = np.random.default_rng(seed)
    population = UserPopulation.generate(
        6, seed=seed + 1, bandwidth_median_kbps=2500.0
    )
    library = VideoLibrary(num_videos=4, mean_duration=32.0, std_duration=10.0, seed=3)
    generator = _TRACE_GENERATORS[abr_name]
    seeds = spawn_session_seeds(seed, len(population))
    abr = _ABR_FACTORIES[abr_name]()
    topology = _case_topology(networked)
    return [
        SessionSpec(
            abr=abr,
            video=library[i % 4],
            trace=generator.generate(50, rng),
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
            link=topology.link_for(profile.user_id).link_id if networked else None,
            start_step=(i * 3) % 12 if networked else 0,
        )
        for i, profile in enumerate(population)
    ]


#: The committed corpus: case name → (ABR, seed, networked).  ``networked``
#: is False (no network), True (flat toy topology), or an allocator name
#: (3-tier topology with CDN caching, allocated by that engine).
GOLDEN_CASES: dict[str, tuple[str, int, bool | str]] = {
    "throughput": ("throughput", 101, False),
    "hyb": ("hyb", 102, False),
    "bba": ("bba", 103, False),
    "bola": ("bola", 104, False),
    "robust_mpc": ("robust_mpc", 105, False),
    "hyb_networked": ("hyb", 106, True),
    "bola_networked": ("bola", 107, True),
    "bba_tiered": ("bba", 108, "max_min_fair"),
    "throughput_tiered_ll": ("throughput", 109, "low_lapsley"),
}


def _run_case(case: str, backend_name: str) -> dict:
    """Execute one case on one backend and serialise the full output."""
    abr_name, seed, networked = GOLDEN_CASES[case]
    specs = _batch(abr_name, seed, networked)
    backend = get_backend(backend_name)
    link_usage: list = []
    traces = backend.run_batch(
        specs,
        SessionConfig(),
        network=_case_topology(networked),
        link_usage=link_usage if networked else None,
    )
    return {
        "case": case,
        "abr": abr_name,
        "seed": seed,
        "networked": networked,
        "sessions": [
            {
                "user_id": trace.user_id,
                "video_duration": trace.video_duration,
                "segment_duration": trace.segment_duration,
                "trace_name": trace.trace_name,
                "exited_early": trace.exited_early,
                "records": [asdict(record) for record in trace.records],
            }
            for trace in traces
        ],
        "link_usage": [sample.as_payload() for sample in link_usage],
    }


def _roundtrip(document: dict) -> dict:
    """JSON write→read roundtrip (exact for binary64 floats)."""
    return json.loads(json.dumps(document, sort_keys=True))


@pytest.mark.parametrize("backend_name", ["scalar", "vector"])
@pytest.mark.parametrize("case", sorted(GOLDEN_CASES))
def test_golden_trace_replays_bit_exact(case, backend_name, regen_golden):
    path = GOLDEN_DIR / f"{case}.json"
    document = _roundtrip(_run_case(case, backend_name))
    if regen_golden and backend_name == "scalar":
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(document, sort_keys=True, indent=1) + "\n")
    golden = json.loads(path.read_text())
    assert document["sessions"] == golden["sessions"], (
        f"golden case {case!r} drifted on backend {backend_name!r}; if the "
        "change is intentional, rerun with --regen-golden and review the diff"
    )
    assert document["link_usage"] == golden["link_usage"]
    assert document["networked"] == golden["networked"]


def test_corpus_is_complete():
    committed = {path.stem for path in GOLDEN_DIR.glob("*.json")}
    assert committed == set(GOLDEN_CASES), (
        "tests/data/golden/ out of sync with GOLDEN_CASES; "
        "run --regen-golden (and delete stale files)"
    )
