"""Tests for bandwidth models, trace generators and trace I/O."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.sim.bandwidth import (
    BandwidthModel,
    BandwidthTrace,
    LowBandwidthTraceGenerator,
    MarkovTraceGenerator,
    MixedTraceGenerator,
    StationaryTraceGenerator,
    harmonic_mean,
)
from repro.sim.traces import generate_trace_set, load_traces, save_traces


class TestBandwidthModel:
    def test_prior_used_before_observations(self):
        model = BandwidthModel(prior_mean_kbps=5000, prior_std_kbps=800)
        assert model.mean == 5000
        assert model.std == 800

    def test_mean_and_std_track_window(self):
        model = BandwidthModel(window=3)
        model.extend([1000, 2000, 3000, 4000])
        assert model.num_observations == 3
        assert model.mean == pytest.approx(3000)
        assert model.std == pytest.approx(1000)

    def test_rejects_non_positive_throughput(self):
        model = BandwidthModel()
        with pytest.raises(ValueError):
            model.update(0)

    def test_sample_positive(self, rng):
        model = BandwidthModel()
        model.extend([100.0, 120.0])
        samples = model.sample(rng, size=200)
        assert np.all(samples > 0)

    def test_stall_risk_negligible_rule(self):
        model = BandwidthModel()
        model.extend([20000.0, 20500.0, 19800.0, 20100.0])
        assert model.stall_risk_negligible(4300.0)
        low = BandwidthModel()
        low.extend([1500.0, 1300.0, 1600.0])
        assert not low.stall_risk_negligible(4300.0)

    def test_copy_is_independent(self):
        model = BandwidthModel()
        model.extend([1000.0, 1100.0])
        clone = model.copy()
        clone.update(9000.0)
        assert model.num_observations == 2
        assert clone.num_observations == 3

    @given(st.lists(st.floats(min_value=1.0, max_value=1e5), min_size=1, max_size=30))
    def test_mean_within_observed_range(self, values):
        model = BandwidthModel(window=50)
        model.extend(values)
        assert min(values) - 1e-6 <= model.mean <= max(values) + 1e-6


class TestTraces:
    def test_trace_requires_positive_samples(self):
        with pytest.raises(ValueError):
            BandwidthTrace(values_kbps=(1000.0, -5.0))
        with pytest.raises(ValueError):
            BandwidthTrace(values_kbps=())

    def test_trace_wraps(self):
        trace = BandwidthTrace(values_kbps=(100.0, 200.0))
        assert trace.bandwidth_at(2) == 100.0
        assert trace.bandwidth_at(3) == 200.0

    def test_scaled(self):
        trace = BandwidthTrace(values_kbps=(100.0, 200.0))
        scaled = trace.scaled(2.0)
        assert scaled.values_kbps == (200.0, 400.0)
        with pytest.raises(ValueError):
            trace.scaled(0.0)

    def test_stationary_generator_mean(self, rng):
        trace = StationaryTraceGenerator(5000, 500).generate(500, rng)
        assert abs(trace.mean - 5000) < 200

    def test_markov_generator_two_regimes(self, rng):
        generator = MarkovTraceGenerator(good_mean_kbps=8000, bad_mean_kbps=800)
        trace = generator.generate(500, rng)
        values = np.asarray(trace.values_kbps)
        assert values.min() < 3000 < values.max()

    def test_low_bandwidth_generator_stays_low(self, rng):
        trace = LowBandwidthTraceGenerator(mean_kbps=1000, std_kbps=200).generate(300, rng)
        assert trace.mean < 2000

    def test_mixed_generator_population(self, rng):
        generator = MixedTraceGenerator(median_kbps=6000)
        traces = generator.generate_population(10, 50, rng)
        assert len(traces) == 10
        assert all(len(t) == 50 for t in traces)

    def test_invalid_generator_parameters(self):
        with pytest.raises(ValueError):
            StationaryTraceGenerator(-5)
        with pytest.raises(ValueError):
            MarkovTraceGenerator(p_good_to_bad=1.5)
        with pytest.raises(ValueError):
            LowBandwidthTraceGenerator(dropout_prob=1.0)

    def test_generate_trace_set_and_roundtrip(self, tmp_path, rng):
        traces = generate_trace_set(num_traces=6, length=30, low_bandwidth_fraction=0.5, seed=1)
        assert len(traces) == 6
        path = tmp_path / "traces.json"
        save_traces(traces, path)
        loaded = load_traces(path)
        assert [t.name for t in loaded] == [t.name for t in traces]
        np.testing.assert_allclose(loaded[0].values_kbps, traces[0].values_kbps)


class TestHarmonicMean:
    def test_harmonic_mean_below_arithmetic(self):
        values = [1000.0, 4000.0]
        assert harmonic_mean(values) < np.mean(values)
        assert harmonic_mean(values) == pytest.approx(1600.0)

    def test_harmonic_mean_requires_positive(self):
        with pytest.raises(ValueError):
            harmonic_mean([0.0, -1.0])
