"""The contracts subsystem, tested against itself.

Three layers:

- **rules** — fixture modules with planted violations for every rule ID,
  asserting exact finding locations, waiver semantics (same-line and
  preceding-line, wrong-ID non-suppression) and scope boundaries;
- **gate** — ``run_check`` exit codes over fixture trees: baseline
  suppression, ``--write-baseline`` grandfathering, stale keys, the
  machine-readable report, and ledger mutations (deleted entry, deleted
  anchor, missing pinning test) each failing the validator;
- **tripwire** — the ``REPRO_CONTRACTS=strict`` runtime guards raising
  on global RNG / wall-clock calls from trace-affecting frames (planted
  via ``compile()`` filenames) while passing everything else through.

Plus the dogfood gate: the repo's own tree must lint clean and its
ledger must cross-check, from inside the tier-1 suite.
"""

from __future__ import annotations

import io
import json
import random
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.contracts.check import run_check
from repro.contracts.ledger import parse_ledger, validate_ledger
from repro.contracts.rules import ALL_RULES, lint_source, lint_tree, scan_anchors
from repro.contracts.tripwire import (
    ContractViolation,
    strict_mode_requested,
    strict_tripwire,
)

REPO_ROOT = Path(__file__).resolve().parents[1]

#: Fake compile() filenames that land inside guarded packages.
SIM_FILE = "src/repro/sim/vector.py"
FLEET_FILE = "src/repro/fleet/orchestrator.py"


def _write(root: Path, rel: str, text: str) -> Path:
    path = root / rel
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(text))
    return path


def _slug(rule_id: str) -> str:
    return rule_id.lower().replace("-", "_")


def _seed_project(root: Path) -> None:
    """A minimal fixture repo whose ledger cross-checks cleanly."""
    anchor_lines = "\n".join(f"# contract: {rid}" for rid in sorted(ALL_RULES))
    _write(root, "src/repro/anchors.py", f'"""Fixture anchors."""\n{anchor_lines}\n')
    pins = "\n\n\n".join(
        f"def test_pin_{_slug(rid)}():\n    assert True"
        for rid in sorted(ALL_RULES)
    )
    _write(root, "tests/test_pins.py", pins + "\n")
    entries = "\n".join(
        f"## {rid} — fixture invariant\n\n"
        f"- **Statement:** fixture statement for {rid}.\n"
        f"- **Check:** ast (fixture rule).\n"
        f"- **Pinning tests:** `tests/test_pins.py::test_pin_{_slug(rid)}`\n"
        for rid in sorted(ALL_RULES)
    )
    _write(root, "CONTRACTS.md", "# Fixture ledger\n\n" + entries)


# --------------------------------------------------------------------------- #
# Rules: planted violations, exact locations
# --------------------------------------------------------------------------- #


def test_rng_rule_flags_planted_global_rng():
    source = textwrap.dedent(
        """\
        import random

        import numpy as np


        def draw(values):
            a = random.random()
            b = np.random.rand(3)
            rng = np.random.default_rng()
            return a, b, rng
        """
    )
    lint = lint_source("src/repro/sim/planted.py", source)
    assert [(f.rule_id, f.line, f.col) for f in lint.findings] == [
        ("DET-RNG-001", 7, 8),
        ("DET-RNG-001", 8, 8),
        ("DET-RNG-001", 9, 10),
    ]


def test_rng_rule_flags_from_imports_and_aliases():
    source = textwrap.dedent(
        """\
        import numpy.random as npr
        from random import shuffle


        def mix(xs):
            shuffle(xs)
            return npr.randint(0, 4)
        """
    )
    lint = lint_source("src/repro/users/planted.py", source)
    assert [(f.rule_id, f.line) for f in lint.findings] == [
        ("DET-RNG-001", 6),
        ("DET-RNG-001", 7),
    ]


def test_rng_rule_ignores_seeded_generators_and_out_of_scope_paths():
    source = textwrap.dedent(
        """\
        import numpy as np


        def draw(seed):
            rng = np.random.default_rng(seed)
            gen = np.random.Generator(np.random.Philox(np.random.SeedSequence(1)))
            return rng.random(), gen.random()
        """
    )
    assert lint_source("src/repro/sim/clean.py", source).findings == []
    # Same planted global calls are out of scope in tests/ and obs/.
    bad = "import random\nvalue = random.random()\n"
    assert lint_source("tests/test_whatever.py", bad).findings == []
    assert lint_source("src/repro/obs/sampler.py", bad).findings == []


def test_clock_rule_flags_wall_clock_reads():
    source = textwrap.dedent(
        """\
        import time
        from datetime import datetime


        def stamp():
            t = time.time()
            p = time.perf_counter()
            d = datetime.now()
            return t, p, d
        """
    )
    lint = lint_source("src/repro/net/planted.py", source)
    assert [(f.rule_id, f.line, f.col) for f in lint.findings] == [
        ("DET-CLOCK-002", 6, 8),
        ("DET-CLOCK-002", 7, 8),
        ("DET-CLOCK-002", 8, 8),
    ]


def test_iter_rule_flags_set_iteration():
    source = textwrap.dedent(
        """\
        def order(items, other):
            for item in set(items):
                print(item)
            pairs = [x for x in {1, 2, 3}]
            listed = list(set(items))
            good = sorted(set(items))
            for item in sorted(set(other)):
                print(item)
            return pairs, listed, good
        """
    )
    lint = lint_source("src/repro/net/planted_iter.py", source)
    assert [f.rule_id for f in lint.findings] == ["DET-ITER-003"] * 3
    assert sorted(f.line for f in lint.findings) == [2, 4, 5]
    # Out of the order-sensitive packages the same code is fine.
    assert lint_source("src/repro/users/planted_iter.py", source).findings == []


def test_obs_rule_flags_sim_imports():
    source = textwrap.dedent(
        """\
        from repro.sim.session import PlaybackSession


        def attach():
            from repro.fleet.telemetry import read_events
            return PlaybackSession, read_events
        """
    )
    lint = lint_source("src/repro/obs/probe.py", source)
    assert [(f.rule_id, f.line) for f in lint.findings] == [
        ("OBS-NEUTRAL-004", 1),
        ("OBS-NEUTRAL-004", 5),
    ]
    # The same imports are the whole point outside repro.obs.
    assert lint_source("src/repro/fleet/probe.py", source).findings == []


def test_shm_rule_requires_annotation():
    source = textwrap.dedent(
        """\
        from multiprocessing import shared_memory


        def make(nbytes):
            seg = shared_memory.SharedMemory(create=True, size=nbytes)
            ok = shared_memory.SharedMemory(create=True, size=nbytes)  # contract: SHM-005 exempt(fixture owner unlinks in teardown)
            attach = shared_memory.SharedMemory(name="existing")
            return seg, ok, attach
        """
    )
    lint = lint_source("src/repro/fleet/planted_shm.py", source)
    assert [(f.rule_id, f.line) for f in lint.findings] == [("SHM-005", 5)]
    assert [(f.rule_id, f.line) for f, _reason in lint.waived] == [("SHM-005", 6)]


def test_ckpt_rule_flags_handrolled_payloads():
    source = textwrap.dedent(
        """\
        def sneak(states):
            payload = {"version": 3, "states": states}
            return payload


        def poke(registry_module):
            return registry_module._MIGRATIONS
        """
    )
    lint = lint_source("src/repro/fleet/rogue.py", source)
    assert sorted((f.rule_id, f.line) for f in lint.findings) == [
        ("CKPT-006", 2),
        ("CKPT-006", 7),
    ]
    # The checkpoint layer itself owns the schema.
    assert lint_source("src/repro/fleet/checkpoint.py", source).findings == []
    assert lint_source("src/repro/core/persistence.py", source).findings == []


# --------------------------------------------------------------------------- #
# Waivers
# --------------------------------------------------------------------------- #


def test_waiver_suppresses_same_line_and_preceding_line():
    source = textwrap.dedent(
        """\
        import time


        def probe():
            a = time.time()  # contract: DET-CLOCK-002 exempt(same-line fixture reason)
            # contract: DET-CLOCK-002 exempt(preceding-line fixture reason)
            b = time.time()
            c = time.time()
            return a, b, c
        """
    )
    lint = lint_source("src/repro/sim/waived.py", source)
    assert [(f.rule_id, f.line) for f in lint.findings] == [("DET-CLOCK-002", 8)]
    assert sorted(reason for _f, reason in lint.waived) == [
        "preceding-line fixture reason",
        "same-line fixture reason",
    ]


def test_waiver_for_other_rule_does_not_suppress():
    source = textwrap.dedent(
        """\
        import time


        def probe():
            return time.time()  # contract: DET-RNG-001 exempt(wrong rule id)
        """
    )
    lint = lint_source("src/repro/sim/waived_wrong.py", source)
    assert [(f.rule_id, f.line) for f in lint.findings] == [("DET-CLOCK-002", 5)]


def test_anchor_scan_distinguishes_plain_anchors_from_waivers():
    source = "# contract: DET-RNG-001\nx = 1  # contract: SHM-005 exempt(reason here)\n"
    anchors = scan_anchors("src/repro/anchors.py", source)
    assert [(a.rule_id, a.line, a.is_waiver) for a in anchors] == [
        ("DET-RNG-001", 1, False),
        ("SHM-005", 2, True),
    ]
    assert anchors[1].reason == "reason here"


# --------------------------------------------------------------------------- #
# The gate: baseline, exit codes, report
# --------------------------------------------------------------------------- #


def test_planted_violation_in_sim_vector_is_caught_by_ast(tmp_path):
    """Acceptance: a stray random.random() in sim/vector.py fails the gate."""
    original = (REPO_ROOT / "src/repro/sim/vector.py").read_text()
    planted = original + "\n\ndef _stray():\n    import random\n    return random.random()\n"
    _write(tmp_path, "src/repro/sim/vector.py", "")
    (tmp_path / "src/repro/sim/vector.py").write_text(planted)
    expected_line = len(planted.splitlines())  # the return is the last line
    lints = lint_tree(tmp_path)
    findings = [f for lint in lints for f in lint.findings]
    assert [(f.rule_id, f.path, f.line) for f in findings] == [
        ("DET-RNG-001", "src/repro/sim/vector.py", expected_line)
    ]


def test_run_check_exit_codes_and_baseline_flow(tmp_path):
    _seed_project(tmp_path)
    _write(
        tmp_path,
        "src/repro/sim/dirty.py",
        """\
        import random


        def draw():
            return random.random()
        """,
    )
    baseline = tmp_path / "baseline.json"

    # New finding, consistent ledger -> exit 1.
    assert run_check(tmp_path, baseline_path=baseline, out=io.StringIO()) == 1

    # Grandfather it -> exit 0, and the next run suppresses via baseline.
    assert (
        run_check(
            tmp_path, baseline_path=baseline, update_baseline=True, out=io.StringIO()
        )
        == 0
    )
    assert json.loads(baseline.read_text())["findings"] != []
    report_path = tmp_path / "contracts_report.json"
    assert (
        run_check(
            tmp_path, baseline_path=baseline, report_path=report_path, out=io.StringIO()
        )
        == 0
    )
    report = json.loads(report_path.read_text())
    assert report["new_findings"] == []
    assert [f["rule"] for f in report["baseline_suppressed"]] == ["DET-RNG-001"]

    # Editing the flagged line invalidates its content-keyed baseline entry:
    # the edited call is a NEW finding and the old key goes stale.
    _write(
        tmp_path,
        "src/repro/sim/dirty.py",
        """\
        import random


        def draw():
            return random.random() + 1.0
        """,
    )
    out = io.StringIO()
    assert run_check(tmp_path, baseline_path=baseline, out=out) == 1
    assert "1 stale baseline key(s)" in out.getvalue()


def test_run_check_report_lists_findings_waivers_and_anchors(tmp_path):
    _seed_project(tmp_path)
    _write(
        tmp_path,
        "src/repro/net/mixed.py",
        """\
        import time


        def probe():
            a = time.time()
            b = time.time()  # contract: DET-CLOCK-002 exempt(fixture telemetry)
            return a, b
        """,
    )
    report_path = tmp_path / "contracts_report.json"
    code = run_check(tmp_path, report_path=report_path, out=io.StringIO())
    assert code == 1
    report = json.loads(report_path.read_text())
    assert [(f["rule"], f["path"], f["line"]) for f in report["new_findings"]] == [
        ("DET-CLOCK-002", "src/repro/net/mixed.py", 5)
    ]
    assert [(w["rule"], w["line"], w["reason"]) for w in report["waived"]] == [
        ("DET-CLOCK-002", 6, "fixture telemetry")
    ]
    anchor_rules = {a["rule"] for a in report["anchors"]}
    assert set(ALL_RULES) <= anchor_rules
    assert report["ledger"]["errors"] == []


# --------------------------------------------------------------------------- #
# Ledger validator: every drift direction fails
# --------------------------------------------------------------------------- #


def test_consistent_fixture_ledger_validates(tmp_path):
    _seed_project(tmp_path)
    report = validate_ledger(tmp_path)
    assert report.ok, report.errors
    assert sorted(report.entries) == sorted(ALL_RULES)


def test_deleting_a_ledger_entry_fails_validation(tmp_path):
    _seed_project(tmp_path)
    ledger = tmp_path / "CONTRACTS.md"
    text = ledger.read_text()
    victim = sorted(ALL_RULES)[0]
    kept = [
        block
        for block in text.split("## ")
        if not block.startswith(f"{victim} ")
    ]
    ledger.write_text("## ".join(kept))
    report = validate_ledger(tmp_path)
    assert not report.ok
    # Its anchor is now an orphan AND the registered rule lost its entry.
    assert any("orphan anchor" in e and victim in e for e in report.errors)
    assert any("not recorded" in e and victim in e for e in report.errors)
    assert run_check(tmp_path, out=io.StringIO()) == 2


def test_deleting_a_code_anchor_fails_validation(tmp_path):
    _seed_project(tmp_path)
    victim = sorted(ALL_RULES)[0]
    anchors = tmp_path / "src/repro/anchors.py"
    anchors.write_text(
        "\n".join(
            line
            for line in anchors.read_text().splitlines()
            if victim not in line
        )
        + "\n"
    )
    report = validate_ledger(tmp_path)
    assert [e for e in report.errors if "unanchored" in e and victim in e]


def test_deleting_a_pinning_test_fails_validation(tmp_path):
    _seed_project(tmp_path)
    victim = sorted(ALL_RULES)[0]
    pins = tmp_path / "tests/test_pins.py"
    pins.write_text(
        pins.read_text().replace(f"def test_pin_{_slug(victim)}", "def renamed_away")
    )
    report = validate_ledger(tmp_path)
    assert [e for e in report.errors if victim in e and "not found" in e]
    # Deleting the whole file is also fatal (for every entry pinned there).
    pins.unlink()
    report = validate_ledger(tmp_path)
    assert [e for e in report.errors if "does not exist" in e]


def test_lint_and_ledger_failures_combine_to_exit_3(tmp_path):
    _seed_project(tmp_path)
    _write(tmp_path, "src/repro/sim/dirty.py", "import random\nv = random.random()\n")
    (tmp_path / "tests/test_pins.py").unlink()
    assert run_check(tmp_path, out=io.StringIO()) == 3


def test_entry_without_statement_or_tests_is_a_parse_error():
    entries, errors = parse_ledger(
        "# L\n\n## DET-XXX-001 — no body\n\n- **Check:** review.\n"
    )
    assert "DET-XXX-001" in entries
    assert any("no **Statement:**" in e for e in errors)
    assert any("no pinning tests" in e for e in errors)


# --------------------------------------------------------------------------- #
# Dogfood: this repository is contract-clean, and sensitive to deletions
# --------------------------------------------------------------------------- #


def test_repo_tree_is_clean_and_ledger_consistent():
    out = io.StringIO()
    code = run_check(REPO_ROOT, out=out)
    assert code == 0, out.getvalue()


def test_repo_ledger_is_sensitive_to_entry_deletion(tmp_path):
    """Dropping any real ledger entry must fail against the real tree."""
    text = (REPO_ROOT / "CONTRACTS.md").read_text()
    for victim in ALL_RULES:
        mutated = "## ".join(
            block
            for block in text.split("## ")
            if not block.startswith(f"{victim} ")
        )
        ledger_copy = tmp_path / f"CONTRACTS_{victim}.md"
        ledger_copy.write_text(mutated)
        report = validate_ledger(REPO_ROOT, ledger_path=ledger_copy)
        assert not report.ok, f"deleting {victim} went unnoticed"


def test_module_entry_point_runs():
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.contracts.check",
            "--root",
            str(REPO_ROOT),
            "--lint-only",
        ],
        capture_output=True,
        text=True,
        cwd=REPO_ROOT,
        env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "contracts lint:" in proc.stdout


# --------------------------------------------------------------------------- #
# Runtime tripwire (REPRO_CONTRACTS=strict)
# --------------------------------------------------------------------------- #


def _run_as(filename: str, code: str) -> None:
    """Execute ``code`` so its frame appears to live at ``filename``."""
    exec(  # noqa: S102 - the whole point is controlling the frame's filename
        compile(textwrap.dedent(code), filename, "exec"),
        {"np": np, "random": random, "time": time},
    )


def test_tripwire_catches_planted_global_rng():
    """Acceptance: random.random() reached *dynamically* from sim code
    raises under the strict tripwire (the AST pass never sees it)."""
    with strict_tripwire():
        with pytest.raises(ContractViolation, match="DET-RNG-001"):
            _run_as(SIM_FILE, "random.random()")
        with pytest.raises(ContractViolation, match="DET-RNG-001"):
            _run_as(SIM_FILE, "np.random.normal()")
        with pytest.raises(ContractViolation, match="DET-RNG-001"):
            _run_as(FLEET_FILE, "np.random.seed(0)")
        # The same calls from a non-guarded frame (this test) pass through.
        random.random()
        np.random.default_rng(0).random()


def test_tripwire_catches_wall_clock_in_sim():
    with strict_tripwire():
        with pytest.raises(ContractViolation, match="DET-CLOCK-002"):
            _run_as(SIM_FILE, "time.time()")
        with pytest.raises(ContractViolation, match="DET-CLOCK-002"):
            _run_as(SIM_FILE, "time.perf_counter()")
        with pytest.raises(ContractViolation, match="DET-CLOCK-002"):
            _run_as(FLEET_FILE, "time.time()")
        # fleet keeps its waived wall-time telemetry (perf_counter).
        _run_as(FLEET_FILE, "time.perf_counter()")
        time.time()  # unguarded caller


@pytest.mark.skipif(
    strict_mode_requested(),
    reason="session tripwire already armed; restore semantics need a bare session",
)
def test_tripwire_restores_every_patched_function():
    originals = (random.random, np.random.rand, time.time, time.perf_counter)
    with strict_tripwire():
        assert getattr(random.random, "__wrapped__", None) is originals[0]
    assert (random.random, np.random.rand, time.time, time.perf_counter) == originals
    assert getattr(random.random, "__wrapped__", None) is None


def test_strict_mode_requested_reads_environment():
    assert strict_mode_requested({"REPRO_CONTRACTS": "strict"})
    assert strict_mode_requested({"REPRO_CONTRACTS": " STRICT "})
    assert not strict_mode_requested({"REPRO_CONTRACTS": "off"})
    assert not strict_mode_requested({})
