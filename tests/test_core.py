"""Tests for the LingXi core: state, OS model, predictor, parameter space,
triggers, Monte-Carlo evaluator, controller and persistence."""

import numpy as np
import pytest

from repro.abr.base import QoEParameters
from repro.abr.hyb import HYB
from repro.core import (
    ControllerConfig,
    ExitRatePredictor,
    LingXiABR,
    LingXiController,
    MonteCarloConfig,
    MonteCarloEvaluator,
    OverallStatisticsModel,
    ParameterSpace,
    PlayerSnapshot,
    PruningPolicy,
    TriggerPolicy,
    UserState,
)
from repro.core.persistence import load_long_term_state, save_long_term_state
from repro.datasets.stall_dataset import NUM_FEATURES, WINDOW_LENGTH
from repro.sim.bandwidth import BandwidthModel
from repro.sim.session import PlaybackSession
from repro.sim.video import BitrateLadder
from repro.users.engagement import RuleBasedUser


@pytest.fixture
def user_state_with_history() -> UserState:
    state = UserState()
    state.start_session()
    for i in range(6):
        state.observe_segment(
            bitrate_kbps=1850.0,
            throughput_kbps=2000.0,
            stall_time=0.5 if i % 2 else 0.0,
            segment_duration=2.0,
            exited=(i == 5),
        )
    return state


def make_snapshot(mean_kbps=1500.0, buffer=2.0) -> PlayerSnapshot:
    bandwidth = BandwidthModel()
    bandwidth.extend([mean_kbps, mean_kbps * 0.9, mean_kbps * 1.1])
    return PlayerSnapshot(
        ladder=BitrateLadder(),
        segment_duration=2.0,
        buffer=buffer,
        last_level=1,
        bandwidth_model=bandwidth,
    )


class TestUserState:
    def test_observation_updates_both_layers(self, user_state_with_history):
        state = user_state_with_history
        assert state.session_stall_count == 3
        assert state.lifetime_stall_events == 3
        assert state.lifetime_stall_exits == 1
        assert state.session_watch_time == pytest.approx(12.0)
        assert 0.0 < state.stall_exit_propensity <= 1.0

    def test_start_session_keeps_long_term(self, user_state_with_history):
        state = user_state_with_history
        state.start_session()
        assert state.session_stall_count == 0
        assert state.lifetime_stall_events == 3

    def test_feature_matrix_shape_and_bounds(self, user_state_with_history):
        matrix = user_state_with_history.feature_matrix()
        assert matrix.shape == (NUM_FEATURES, WINDOW_LENGTH)
        assert np.all(np.isfinite(matrix))

    def test_copy_independent(self, user_state_with_history):
        clone = user_state_with_history.copy()
        clone.observe_segment(1000.0, 1000.0, 0.0, 2.0)
        assert clone.lifetime_segments == user_state_with_history.lifetime_segments + 1

    def test_tolerance_estimate_tracks_exit_history(self):
        state = UserState()
        state.observe_segment(1000.0, 1000.0, 3.0, 2.0, exited=True)
        assert state.tolerance_estimate_s == pytest.approx(3.0)

    def test_invalid_observation(self):
        state = UserState()
        with pytest.raises(ValueError):
            state.observe_segment(0.0, 1000.0, 0.0, 2.0)
        with pytest.raises(ValueError):
            state.observe_segment(1000.0, 1000.0, -1.0, 2.0)

    def test_long_term_roundtrip(self, user_state_with_history):
        payload = user_state_with_history.long_term_dict()
        fresh = UserState()
        fresh.restore_long_term(payload)
        assert fresh.lifetime_stall_exits == user_state_with_history.lifetime_stall_exits
        assert fresh.tolerance_estimate_s == pytest.approx(
            user_state_with_history.tolerance_estimate_s
        )


class TestOverallStatisticsModel:
    def test_defaults_are_probabilities(self):
        model = OverallStatisticsModel()
        for level in range(4):
            for switch in (-2, 0, 2):
                assert 0.0 <= model.predict(level, switch) <= 1.0

    def test_switch_and_downward_penalties(self):
        model = OverallStatisticsModel()
        assert model.predict(2, 1) > model.predict(2, 0)
        assert model.predict(2, -1) > model.predict(2, 1)

    def test_fit_from_logs(self, tiny_substrate):
        model = OverallStatisticsModel.fit(tiny_substrate.logs, 4)
        assert model.num_levels == 4
        assert np.all(model.level_rates >= 0) and np.all(model.level_rates <= 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            OverallStatisticsModel(level_rates=np.asarray([1.5]))
        with pytest.raises(ValueError):
            OverallStatisticsModel(level_rates=np.asarray([]))


class TestExitRatePredictor:
    def test_untrained_predictor_still_bounded(self, user_state_with_history):
        predictor = ExitRatePredictor()
        value = predictor.predict(
            user_state_with_history.feature_matrix(), level=2, switch_magnitude=0, stalled=True
        )
        assert 0.0 <= value <= 1.0

    def test_no_stall_uses_statistics_only(self, user_state_with_history):
        predictor = ExitRatePredictor()
        value = predictor.predict(
            user_state_with_history.feature_matrix(), level=2, switch_magnitude=0, stalled=False
        )
        assert value == pytest.approx(predictor.statistics_model.predict(2, 0))

    def test_rejects_bad_feature_shape(self):
        predictor = ExitRatePredictor()
        with pytest.raises(ValueError):
            predictor.stall_exit_probability(np.zeros((2, 2)))

    def test_training_improves_over_chance(self, tiny_substrate):
        from repro.datasets import DatasetComposition, build_exit_dataset
        from repro.core.exit_predictor import train_and_evaluate

        dataset = build_exit_dataset(tiny_substrate.training_logs, DatasetComposition.STALL)
        _predictor, evaluation = train_and_evaluate(dataset, epochs=4, seed=0)
        assert 0.0 <= evaluation.accuracy <= 1.0
        assert evaluation.recall > 0.0


class TestParameterSpace:
    def test_roundtrip(self):
        space = ParameterSpace.for_qoe_lin()
        parameters = space.to_parameters(np.asarray([10.0, 2.0]))
        assert parameters.stall_penalty == 10.0
        np.testing.assert_allclose(space.to_vector(parameters), [10.0, 2.0])

    def test_clipping(self):
        space = ParameterSpace.for_hyb(beta_range=(0.4, 1.0))
        assert space.to_parameters(np.asarray([5.0])).beta == 1.0

    def test_candidate_grid(self):
        space = ParameterSpace.for_qoe_lin()
        grid = space.candidate_grid(3)
        assert len(grid) == 9
        assert all(isinstance(p, QoEParameters) for p in grid)

    def test_sample_in_bounds(self, rng):
        space = ParameterSpace.for_hyb()
        for _ in range(10):
            assert 0.4 <= space.sample(rng).beta <= 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterSpace(names=("bogus",), bounds=((0.0, 1.0),))
        with pytest.raises(ValueError):
            ParameterSpace(names=("beta",), bounds=((1.0, 0.5),))


class TestTriggerAndPruning:
    def test_trigger_threshold(self):
        trigger = TriggerPolicy(stall_count_threshold=2)
        assert not trigger.should_trigger(2)
        assert trigger.should_trigger(3)
        with pytest.raises(ValueError):
            TriggerPolicy(stall_count_threshold=0)

    def test_bandwidth_pruning(self):
        pruning = PruningPolicy()
        rich = BandwidthModel()
        rich.extend([30000.0, 31000.0, 29500.0, 30200.0])
        poor = BandwidthModel()
        poor.extend([1500.0, 1400.0, 1600.0])
        assert pruning.skip_optimization(rich, 4300.0)
        assert not pruning.skip_optimization(poor, 4300.0)

    def test_candidate_abort(self):
        pruning = PruningPolicy(min_virtual_segments=4)
        assert not pruning.abort_candidate(5, 2, 0.1)
        assert pruning.abort_candidate(5, 10, 0.1)
        assert not pruning.abort_candidate(0, 10, float("inf"))


class TestMonteCarloEvaluator:
    def test_exit_rate_in_unit_interval(self, tiny_substrate, user_state_with_history):
        evaluator = MonteCarloEvaluator(
            tiny_substrate.predictor, MonteCarloConfig(num_samples=2, max_sample_duration_s=20)
        )
        value = evaluator.evaluate(
            QoEParameters(), HYB(), make_snapshot(), user_state_with_history
        )
        assert 0.0 <= value <= 1.0

    def test_restores_abr_parameters(self, tiny_substrate, user_state_with_history):
        evaluator = MonteCarloEvaluator(
            tiny_substrate.predictor, MonteCarloConfig(num_samples=1, max_sample_duration_s=10)
        )
        abr = HYB(QoEParameters(beta=0.77))
        evaluator.evaluate(QoEParameters(beta=0.4), abr, make_snapshot(), user_state_with_history)
        assert abr.parameters.beta == 0.77

    def test_deterministic_under_same_rng(self, tiny_substrate, user_state_with_history):
        evaluator = MonteCarloEvaluator(
            tiny_substrate.predictor, MonteCarloConfig(num_samples=2, max_sample_duration_s=20)
        )
        values = [
            evaluator.evaluate(
                QoEParameters(),
                HYB(),
                make_snapshot(),
                user_state_with_history,
                rng=np.random.default_rng(7),
            )
            for _ in range(2)
        ]
        assert values[0] == values[1]

    def test_config_validation(self):
        with pytest.raises(ValueError):
            MonteCarloConfig(num_samples=0)
        with pytest.raises(ValueError):
            MonteCarloConfig(max_sample_duration_s=0)


class TestControllerAndWrapper:
    def _controller(self, substrate, mode="bayesian"):
        return LingXiController(
            parameter_space=ParameterSpace.for_hyb(),
            predictor=substrate.predictor,
            monte_carlo=MonteCarloConfig(num_samples=2, max_sample_duration_s=20),
            config=ControllerConfig(mode=mode, max_sample_times=2, seed=0),
        )

    def test_trigger_accumulates_and_resets(self, tiny_substrate):
        controller = self._controller(tiny_substrate)
        for _ in range(3):
            controller.observe_segment(1000.0, 1200.0, 0.5, 2.0)
        bandwidth = BandwidthModel()
        bandwidth.extend([1200.0, 1100.0, 1300.0])
        assert controller.should_optimize(bandwidth, 4300.0)
        controller.optimize(HYB(), make_snapshot())
        assert controller.stalls_since_optimization == 0
        assert len(controller.history) == 1

    def test_high_bandwidth_pruned(self, tiny_substrate):
        controller = self._controller(tiny_substrate)
        for _ in range(5):
            controller.observe_segment(4300.0, 30000.0, 0.5, 2.0)
        rich = BandwidthModel()
        rich.extend([30000.0, 29000.0, 31000.0, 30500.0])
        assert not controller.should_optimize(rich, 4300.0)

    @pytest.mark.parametrize("mode", ["fixed", "bayesian"])
    def test_optimize_returns_parameters_in_space(self, tiny_substrate, mode):
        controller = self._controller(tiny_substrate, mode=mode)
        controller.observe_segment(1000.0, 1200.0, 1.0, 2.0, exited=False)
        parameters = controller.optimize(HYB(), make_snapshot())
        assert 0.4 <= parameters.beta <= 1.0

    def test_lingxi_abr_adapts_stall_sensitive_user(self, tiny_substrate, video, low_bandwidth_trace):
        controller = self._controller(tiny_substrate)
        lingxi = LingXiABR(HYB(), controller)
        user = RuleBasedUser(stall_time_threshold_s=2.0, stall_count_threshold=3)
        engine = PlaybackSession()
        for i in range(6):
            engine.run(lingxi, video, low_bandwidth_trace, exit_model=user, rng=np.random.default_rng(i))
        assert len(controller.history) >= 1
        assert lingxi.parameters.beta <= 0.9
        assert lingxi.inner.parameters == lingxi.parameters
        assert lingxi.name == "LingXi(HYB)"

    def test_controller_config_validation(self):
        with pytest.raises(ValueError):
            ControllerConfig(mode="nope")
        with pytest.raises(ValueError):
            ControllerConfig(max_sample_times=0)

    def test_persistence_roundtrip(self, tiny_substrate, tmp_path):
        controller = self._controller(tiny_substrate)
        controller.observe_segment(1000.0, 1200.0, 1.5, 2.0, exited=True)
        controller.optimize(HYB(), make_snapshot())
        path = tmp_path / "state.json"
        save_long_term_state(controller, path)

        fresh = self._controller(tiny_substrate)
        load_long_term_state(fresh, path)
        assert fresh.best_parameters == controller.best_parameters
        assert fresh.user_state.lifetime_stall_events == controller.user_state.lifetime_stall_events
