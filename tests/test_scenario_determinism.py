"""Scenario determinism and networked-fleet integration tests.

Two properties under test:

* **Sharding invariance** — on the spec-batched fleet path every user's
  randomness is keyed by ``(seed, md5(user_id))``, so for a fixed seed the
  per-user cohorts *and* the per-session traces are identical no matter how
  the population is split across shards or how many pool workers execute
  them.  This holds for the classic scenarios (``device_mix``,
  ``regional_degradation``) and for the congestion-native ones, where
  shard-by-link keeps each link's full contention set inside one shard.
* **Networked fleet plumbing** — link-utilization telemetry replays exactly,
  emergent congestion shows up in ``flash_crowd_shared``, and the
  ``link_outage`` scenario's capacity cut lands on the right link.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    LinkOutageScenario,
    get_scenario,
    replay_link_utilization,
    replay_log_collection,
)
from repro.fleet.orchestrator import write_fleet_telemetry
from repro.fleet.scenarios import DeviceMixScenario, RegionalDegradationScenario
from repro.net import EdgeLink, NetworkTopology
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@pytest.fixture(scope="module")
def population():
    return UserPopulation.generate(18, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture(scope="module")
def library():
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def _topology() -> NetworkTopology:
    return NetworkTopology(
        name="toy",
        links=(
            EdgeLink("a", 12_000.0, user_share=0.4),
            EdgeLink("b", 18_000.0, user_share=0.4),
            EdgeLink("c", 30_000.0, user_share=0.2),
        ),
    )


def _run(population, library, scenario, *, shards, workers, network=None):
    return FleetOrchestrator(
        FleetConfig(
            num_shards=shards,
            num_workers=workers,
            sessions_per_user=2,
            trace_length=40,
            seed=11,
            backend="vector",
            network=network,
        )
    ).run(population, library, scenario=scenario)


def _session_map(result):
    """(user, session) → full record tuple list; exact comparison unit."""
    mapping = {}
    for log in result.logs:
        key = (log.user_id, log.session_index)
        assert key not in mapping
        mapping[key] = (log.trace.exited_early, tuple(log.trace.records))
    return mapping


class TestShardingInvariance:
    @pytest.mark.parametrize(
        "scenario", ["device_mix", "regional_degradation", "steady_state"]
    )
    def test_classic_scenarios_invariant_across_shard_and_worker_counts(
        self, population, library, scenario
    ):
        baseline = _run(population, library, scenario, shards=1, workers=0)
        for shards, workers in ((3, 0), (5, 2)):
            other = _run(population, library, scenario, shards=shards, workers=workers)
            assert _session_map(other) == _session_map(baseline)
            assert other.metrics.num_sessions == baseline.metrics.num_sessions

    @pytest.mark.parametrize(
        "scenario", ["flash_crowd_shared", "link_outage", "evening_peak"]
    )
    def test_congestion_scenarios_invariant_across_shard_and_worker_counts(
        self, population, library, scenario
    ):
        topology = _topology()
        baseline = _run(
            population, library, scenario, shards=1, workers=0, network=topology
        )
        for shards, workers in ((2, 0), (3, 2)):
            other = _run(
                population,
                library,
                scenario,
                shards=shards,
                workers=workers,
                network=topology,
            )
            assert _session_map(other) == _session_map(baseline)
            # the full link-usage stream matches too, modulo shard
            # interleaving (per-link trailing-idle trimming makes each
            # link's sample span a function of its own users only)
            stream = lambda result: sorted(
                result.link_usage, key=lambda s: (s.link_id, s.step)
            )
            assert stream(other) == stream(baseline)

    def test_cohorts_are_stable_functions_of_identity(self, population):
        device = DeviceMixScenario()
        region = RegionalDegradationScenario()
        topology = _topology()
        devices = {p.user_id: device.device_for(p) for p in population}
        affected = {p.user_id: region.is_affected(p) for p in population}
        links = {p.user_id: topology.link_for(p.user_id).link_id for p in population}
        # recomputation (fresh scenario objects) reproduces every cohort
        assert devices == {p.user_id: DeviceMixScenario().device_for(p) for p in population}
        assert affected == {
            p.user_id: RegionalDegradationScenario().is_affected(p) for p in population
        }
        assert links == {
            p.user_id: _topology().link_for(p.user_id).link_id for p in population
        }


class TestNetworkedFleet:
    def test_links_never_straddle_shards(self, population, library):
        topology = _topology()
        result = _run(
            population,
            library,
            "flash_crowd_shared",
            shards=2,
            workers=0,
            network=topology,
        )
        links_per_shard = [
            {sample.link_id for sample in output.link_usage if sample.active_sessions}
            for output in result.shard_outputs
        ]
        for first in range(len(links_per_shard)):
            for second in range(first + 1, len(links_per_shard)):
                assert not links_per_shard[first] & links_per_shard[second]
        # every session's user sits on a link owned by its shard
        for output, owned in zip(
            result.shard_outputs, topology.shard_links(2)
        ):
            for log in output.sessions:
                assert topology.link_for(log.user_id).link_id in set(owned)

    def test_flash_crowd_shared_shows_emergent_congestion(self, population, library):
        topology = _topology()
        steady = _run(
            population, library, "steady_state", shards=1, workers=0, network=topology
        )
        crowd = _run(
            population,
            library,
            "flash_crowd_shared",
            shards=1,
            workers=0,
            network=topology,
        )
        assert crowd.metrics.num_sessions > steady.metrics.num_sessions
        crowd_util = crowd.link_utilization()
        assert crowd_util.congested_slot_fraction() > 0.0
        # the surge piles sessions onto the links: peak concurrency well
        # above the steady run's
        assert crowd_util.peak_active_sessions() > steady.link_utilization().peak_active_sessions() / 2

    def test_link_outage_scenario_halves_the_target_link(self):
        topology = _topology()
        scenario = LinkOutageScenario(outage_start=4, outage_end=8)
        shaped = scenario.network_for(topology)
        target = scenario.target_link(topology)
        assert target == "c"  # largest capacity
        index = shaped.index_of(target)
        assert shaped.links[index].capacity_at(5) == topology.links[index].capacity_at(5) / 2
        assert shaped.links[index].capacity_at(10) == topology.links[index].capacity_at(10)
        pinned = LinkOutageScenario(link_id="a")
        assert pinned.target_link(topology) == "a"

    def test_networked_telemetry_replays_exactly(self, population, library, tmp_path):
        topology = _topology()
        result = _run(
            population,
            library,
            "link_outage",
            shards=2,
            workers=0,
            network=topology,
        )
        path = tmp_path / "telemetry.jsonl"
        write_fleet_telemetry(result, path)
        replayed_logs = replay_log_collection(path)
        assert replayed_logs.segment_exit_rate() == result.logs.segment_exit_rate()
        live = result.link_utilization()
        replayed = replay_link_utilization(path)
        assert len(replayed) == len(live)
        np.testing.assert_array_equal(replayed.allocated_kbps, live.allocated_kbps)
        np.testing.assert_array_equal(replayed.capacity_kbps, live.capacity_kbps)
        np.testing.assert_array_equal(replayed.active_sessions, live.active_sessions)
        assert replayed.mean_utilization() == live.mean_utilization()

    def test_scalar_and_vector_backends_agree_on_networked_fleets(
        self, population, library
    ):
        topology = _topology()
        kwargs = dict(
            num_shards=2,
            num_workers=0,
            sessions_per_user=2,
            trace_length=40,
            seed=7,
            network=topology,
        )
        scalar = FleetOrchestrator(FleetConfig(backend="scalar", **kwargs)).run(
            population, library, scenario="evening_peak"
        )
        vector = FleetOrchestrator(FleetConfig(backend="vector", **kwargs)).run(
            population, library, scenario="evening_peak"
        )
        assert _session_map(scalar) == _session_map(vector)
        assert scalar.link_usage == vector.link_usage

    def test_config_validation_and_registry(self):
        with pytest.raises(KeyError):
            FleetConfig(network="warp_net")
        assert "flash_crowd_shared" in [
            name
            for name in __import__(
                "repro.fleet.scenarios", fromlist=["available_scenarios"]
            ).available_scenarios()
        ]
        scenario = get_scenario("evening_peak")
        assert scenario.name == "evening_peak"


class TestMultiTierFleet:
    """Tiered topologies through the fleet layer: scenarios + allocators."""

    @pytest.mark.parametrize("allocator", ["max_min_fair", "low_lapsley"])
    def test_cache_storm_invariant_across_shards_workers_backends(
        self, population, library, allocator
    ):
        def run(shards, workers, backend):
            return FleetOrchestrator(
                FleetConfig(
                    num_shards=shards,
                    num_workers=workers,
                    sessions_per_user=2,
                    trace_length=40,
                    seed=11,
                    backend=backend,
                    network="cdn_3tier",
                    allocator=allocator,
                )
            ).run(population, library, scenario="cache_storm")

        baseline = run(1, 0, "vector")
        stream = lambda result: sorted(
            result.link_usage, key=lambda s: (s.link_id, s.step)
        )
        for shards, workers in ((2, 0), (4, 2)):
            other = run(shards, workers, "vector")
            assert _session_map(other) == _session_map(baseline)
            assert stream(other) == stream(baseline)
        scalar = run(1, 0, "scalar")
        assert _session_map(scalar) == _session_map(baseline)
        assert stream(scalar) == stream(baseline)
        # the tier column survives the fleet path (and the pool codec)
        tiers = {sample.tier for sample in baseline.link_usage}
        assert tiers == {"edge", "peering", "origin"}

    def test_allocator_config_validation(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            FleetConfig(network="cdn_3tier", allocator="round_robin")
        with pytest.raises(ValueError, match="networked"):
            FleetConfig(allocator="low_lapsley")
        config = FleetConfig(network="cdn_3tier", allocator="low_lapsley")
        assert config.allocator == "low_lapsley"

    def test_cache_storm_replaces_cache_but_keeps_salt(self):
        from repro.net import get_topology

        topology = get_topology("cdn_3tier")
        shaped = get_scenario("cache_storm").network_for(topology)
        assert shaped.cache.hit_ratio == 0.1
        assert shaped.cache.salt == topology.cache.salt
        # inert on flat topologies: the cache exists but nothing routes
        # upstream, so runs degrade to a pure arrival surge
        flat = get_scenario("cache_storm").network_for(_topology())
        assert not flat.has_tiers and flat.cache is not None

    def test_tier_event_scenarios_target_their_tier(self):
        from repro.fleet.scenarios import (
            OriginOverloadScenario,
            PeeringBrownoutScenario,
        )
        from repro.net import get_topology

        topology = get_topology("cdn_3tier")
        origin = OriginOverloadScenario()
        assert origin.target_links(topology) == ["origin"]
        shaped = origin.network_for(topology)
        index = shaped.index_of("origin")
        mid = (origin.event_start + origin.event_end) // 2
        assert shaped.links[index].capacity_at(mid) == pytest.approx(
            topology.links[index].capacity_kbps * origin.capacity_multiplier
        )
        assert shaped.links[index].capacity_at(origin.event_end + 1) == (
            topology.links[index].capacity_kbps
        )

        brownout = PeeringBrownoutScenario()
        assert sorted(brownout.target_links(topology)) == ["peer_a", "peer_b"]
        # flat topologies fall back to the largest link
        flat = _topology()
        assert origin.target_links(flat) == ["c"]
        assert brownout.target_links(flat) == ["c"]

    def test_tier_scenarios_run_end_to_end(self, population, library):
        for scenario in ("origin_overload", "peering_brownout"):
            result = FleetOrchestrator(
                FleetConfig(
                    num_shards=2,
                    num_workers=0,
                    sessions_per_user=1,
                    trace_length=30,
                    seed=13,
                    backend="vector",
                    network="cdn_3tier",
                )
            ).run(population, library, scenario=scenario)
            assert result.metrics.num_sessions > 0
            tiers = {sample.tier for sample in result.link_usage}
            assert "edge" in tiers
