"""Tests for the ABR algorithms."""

import numpy as np
import pytest

from repro.abr import BBA, BOLA, HYB, Pensieve, PensieveTrainer, QoEParameters, RobustMPC, ThroughputRule
from repro.sim.session import ABRContext, PlaybackSession
from repro.sim.video import BitrateLadder


def make_context(
    buffer=6.0,
    throughput=3000.0,
    history_length=5,
    last_level=1,
    segment_index=3,
):
    ladder = BitrateLadder()
    sizes = tuple(b * 2.0 for b in ladder.bitrates_kbps)
    history = tuple([throughput] * history_length)
    return ABRContext(
        segment_index=segment_index,
        buffer=buffer,
        buffer_cap=12.0,
        last_level=last_level,
        throughput_history_kbps=history,
        next_segment_sizes_kbit=sizes,
        ladder=ladder,
        segment_duration=2.0,
        bandwidth_mean_kbps=throughput,
        bandwidth_std_kbps=throughput * 0.1,
    )


ALL_ALGORITHMS = [HYB, BBA, BOLA, ThroughputRule, RobustMPC, Pensieve]


class TestQoEParameters:
    def test_defaults_valid(self):
        parameters = QoEParameters()
        assert parameters.stall_penalty > 0
        assert 0 < parameters.beta <= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            QoEParameters(stall_penalty=-1)
        with pytest.raises(ValueError):
            QoEParameters(beta=0.0)
        with pytest.raises(ValueError):
            QoEParameters(switch_penalty=-0.5)

    def test_array_roundtrip(self):
        parameters = QoEParameters(stall_penalty=7.0, switch_penalty=2.0, beta=0.6)
        assert QoEParameters.from_array(parameters.to_array()) == parameters

    def test_replace(self):
        parameters = QoEParameters().replace(beta=0.5)
        assert parameters.beta == 0.5


class TestCommonBehaviour:
    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_levels_always_valid(self, algorithm_cls):
        abr = algorithm_cls()
        abr.reset()
        for buffer in (0.0, 2.0, 8.0, 20.0):
            for throughput in (200.0, 1500.0, 8000.0):
                level = abr.select_level(make_context(buffer=buffer, throughput=throughput))
                assert 0 <= level < 4

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_set_parameters(self, algorithm_cls):
        abr = algorithm_cls()
        new = QoEParameters(stall_penalty=9.0, switch_penalty=0.5, beta=0.55)
        abr.set_parameters(new)
        assert abr.parameters == new
        with pytest.raises(TypeError):
            abr.set_parameters("not parameters")

    @pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
    def test_runs_full_session(self, algorithm_cls, video, low_bandwidth_trace, rng):
        trace = PlaybackSession().run(algorithm_cls(), video, low_bandwidth_trace, rng=rng)
        assert len(trace) == video.num_segments


class TestHYB:
    def test_no_history_uses_startup_level(self):
        abr = HYB(startup_level=0)
        assert abr.select_level(make_context(history_length=0)) == 0

    def test_higher_beta_is_more_aggressive(self):
        conservative = HYB(QoEParameters(beta=0.3))
        aggressive = HYB(QoEParameters(beta=1.5))
        context = make_context(buffer=4.0, throughput=2500.0)
        assert aggressive.select_level(context) >= conservative.select_level(context)

    def test_zero_buffer_forces_lowest(self):
        abr = HYB()
        assert abr.select_level(make_context(buffer=0.0)) == 0


class TestBBA:
    def test_reservoir_and_cushion(self):
        abr = BBA(reservoir_s=4.0, cushion_s=8.0)
        assert abr.select_level(make_context(buffer=1.0)) == 0
        assert abr.select_level(make_context(buffer=20.0)) == 3
        middle = abr.select_level(make_context(buffer=8.0))
        assert 0 < middle < 3

    def test_invalid_configuration(self):
        with pytest.raises(ValueError):
            BBA(reservoir_s=0)


class TestBOLA:
    def test_low_buffer_low_level(self):
        abr = BOLA()
        assert abr.select_level(make_context(buffer=0.5)) == 0

    def test_high_buffer_higher_level(self):
        abr = BOLA()
        assert abr.select_level(make_context(buffer=11.0)) >= abr.select_level(
            make_context(buffer=1.0)
        )


class TestThroughputRule:
    def test_matches_sustainable_rate(self):
        abr = ThroughputRule(gradual=False)
        assert abr.select_level(make_context(throughput=400.0)) == 0
        assert abr.select_level(make_context(throughput=10000.0)) == 3

    def test_gradual_moves_one_step(self):
        abr = ThroughputRule(gradual=True)
        level = abr.select_level(make_context(throughput=10000.0, last_level=0))
        assert level == 1


class TestRobustMPC:
    def test_avoids_stall_under_low_bandwidth(self):
        abr = RobustMPC()
        abr.reset()
        level = abr.select_level(make_context(buffer=1.0, throughput=500.0))
        assert level == 0

    def test_high_bandwidth_high_quality(self):
        abr = RobustMPC()
        abr.reset()
        level = abr.select_level(make_context(buffer=10.0, throughput=20000.0))
        assert level == 3

    def test_stall_penalty_changes_behaviour(self):
        context = make_context(buffer=2.5, throughput=2200.0)
        cautious = RobustMPC(QoEParameters(stall_penalty=50.0))
        cautious.reset()
        eager = RobustMPC(QoEParameters(stall_penalty=0.1))
        eager.reset()
        assert cautious.select_level(context) <= eager.select_level(context)

    def test_reset_clears_errors(self):
        abr = RobustMPC()
        abr.select_level(make_context())
        abr.select_level(make_context())
        assert abr._past_errors or abr._last_prediction is not None
        abr.reset()
        assert abr._past_errors == []


class TestPensieve:
    def test_state_dimension(self):
        agent = Pensieve()
        state = agent.state_from_context(make_context())
        assert state.shape == (agent.state_dim,)

    def test_action_probabilities_sum_to_one(self):
        agent = Pensieve()
        probabilities = agent.action_probabilities(
            agent.state_from_context(make_context())
        )
        assert probabilities.shape == (4,)
        assert np.isclose(probabilities.sum(), 1.0)

    def test_trajectory_recorded(self, video, high_bandwidth_trace, rng):
        agent = Pensieve()
        PlaybackSession().run(agent, video, high_bandwidth_trace, rng=rng)
        assert len(agent.trajectory) == video.num_segments

    def test_training_smoke(self, video, low_bandwidth_trace):
        agent = Pensieve(seed=3)
        trainer = PensieveTrainer(agent, [video], [low_bandwidth_trace], seed=3)
        stats = trainer.train(iterations=3, episodes_per_iteration=2)
        assert len(stats) == 3
        assert all(np.isfinite(s.mean_reward) for s in stats)

    def test_trainer_validation(self, video, low_bandwidth_trace):
        agent = Pensieve()
        with pytest.raises(ValueError):
            PensieveTrainer(agent, [], [low_bandwidth_trace])
        trainer = PensieveTrainer(agent, [video], [low_bandwidth_trace])
        with pytest.raises(ValueError):
            trainer.train(iterations=0)
