"""Tests for synthetic log generation and the exit-predictor datasets."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.datasets import (
    DatasetComposition,
    LogGenerationConfig,
    build_exit_dataset,
    generate_production_logs,
)
from repro.datasets.stall_dataset import (
    DEFAULT_TOLERANCE_PRIOR_S,
    NUM_FEATURES,
    WINDOW_LENGTH,
    ExitDataset,
    estimate_tolerance,
)
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@pytest.fixture(scope="module")
def corpus():
    population = UserPopulation.generate(25, seed=9, bandwidth_median_kbps=3000)
    library = VideoLibrary(num_videos=4, seed=2)
    return generate_production_logs(
        population,
        library,
        LogGenerationConfig(days=2, sessions_per_user_per_day=3, seed=4),
    )


class TestLogGeneration:
    def test_schema(self, corpus):
        assert len(corpus) == 25 * 2 * 3
        session = corpus[0]
        assert session.user_id.startswith("u")
        assert session.day in (0, 1)
        assert session.mean_bandwidth_kbps > 0
        assert len(session.records) >= 1

    def test_custom_abr_factory(self):
        population = UserPopulation.generate(3, seed=1)
        library = VideoLibrary(num_videos=2, seed=1)
        logs = generate_production_logs(
            population,
            library,
            LogGenerationConfig(days=1, sessions_per_user_per_day=1),
            abr_factory=lambda _profile: BBA(),
        )
        assert len(logs) == 3

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            LogGenerationConfig(days=0)
        with pytest.raises(ValueError):
            LogGenerationConfig(sessions_per_user_per_day=0)


class TestEstimateTolerance:
    def test_uses_exit_history_when_available(self):
        assert estimate_tolerance(12.0, 3, 50.0) == pytest.approx(4.0)

    def test_falls_back_to_survived_or_prior(self):
        assert estimate_tolerance(0.0, 0, 9.0) == 9.0
        assert estimate_tolerance(0.0, 0, 0.0) == DEFAULT_TOLERANCE_PRIOR_S


class TestExitDataset:
    def test_shapes_and_metadata(self, corpus):
        dataset = build_exit_dataset(corpus, DatasetComposition.ALL)
        assert dataset.features.shape[1:] == (NUM_FEATURES, WINDOW_LENGTH)
        assert dataset.labels.shape == (len(dataset),)
        assert len(dataset.user_ids) == len(dataset)
        assert dataset.stall_ordinals is not None
        assert set(np.unique(dataset.labels)) <= {0, 1}

    def test_composition_sizes_nested(self, corpus):
        all_ds = build_exit_dataset(corpus, DatasetComposition.ALL)
        event_ds = build_exit_dataset(corpus, DatasetComposition.EVENT)
        stall_ds = build_exit_dataset(corpus, DatasetComposition.STALL)
        assert len(stall_ds) <= len(event_ds) <= len(all_ds)
        assert stall_ds.exit_fraction >= all_ds.exit_fraction

    def test_stall_samples_have_recent_stall(self, corpus):
        stall_ds = build_exit_dataset(corpus, DatasetComposition.STALL)
        # Row 3 is "segments since last stall"; the current segment stalled, so
        # the last entry of that row must be zero for every sample.
        assert np.allclose(stall_ds.features[:, 3, -1], 0.0)

    def test_features_are_finite_and_non_negative(self, corpus):
        dataset = build_exit_dataset(corpus, DatasetComposition.EVENT)
        assert np.all(np.isfinite(dataset.features))
        assert np.all(dataset.features >= 0.0)

    def test_subset_preserves_alignment(self, corpus):
        dataset = build_exit_dataset(corpus, DatasetComposition.ALL)
        indices = np.arange(0, len(dataset), 7)
        subset = dataset.subset(indices)
        assert len(subset) == len(indices)
        np.testing.assert_array_equal(subset.labels, dataset.labels[indices])
        assert subset.user_ids[0] == dataset.user_ids[indices[0]]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExitDataset(
                features=np.zeros((3, 2, 2)),
                labels=np.zeros(3, dtype=int),
                composition=DatasetComposition.ALL,
            )
        with pytest.raises(ValueError):
            ExitDataset(
                features=np.zeros((3, NUM_FEATURES, WINDOW_LENGTH)),
                labels=np.zeros(4, dtype=int),
                composition=DatasetComposition.ALL,
            )

    def test_exit_fraction_empty_handling(self):
        dataset = ExitDataset(
            features=np.zeros((2, NUM_FEATURES, WINDOW_LENGTH)),
            labels=np.asarray([0, 1]),
            composition=DatasetComposition.STALL,
        )
        assert dataset.exit_fraction == 0.5
