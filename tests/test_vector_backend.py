"""Scalar-vs-vector backend equivalence gate plus backend-seam unit tests.

The core guarantee under test: for identical :class:`SessionSpec` batches,
``backend="vector"`` reproduces ``backend="scalar"`` traces **segment for
segment** — exact :class:`SegmentRecord` equality, not approximate agreement —
across ABR algorithms, seeds, trace shapes, exit-model families and
heterogeneous batches, and the equality survives a telemetry write→replay
round trip of the resulting log collections.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import QoEParameters
from repro.abr.bba import BBA
from repro.abr.bola import BOLA
from repro.abr.hyb import HYB
from repro.abr.robust_mpc import RobustMPC
from repro.abr.throughput import ThroughputRule
from repro.analytics.logs import LogCollection, SessionLog
from repro.core.controller import ControllerConfig, LingXiABR, LingXiController
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig, MonteCarloEvaluator, virtual_video
from repro.core.parameter_space import ParameterSpace
from repro.core.state import PlayerSnapshot, UserState
from repro.core.triggers import TriggerPolicy
from repro.fleet import (
    BatchedMonteCarloEvaluator,
    FleetConfig,
    FleetOrchestrator,
    LingXiFleetFactory,
)
from repro.fleet.telemetry import TelemetryWriter, replay_log_collection, session_event
from repro.sim import (
    ScalarBackend,
    SessionSpec,
    VectorBackend,
    available_backends,
    get_backend,
    run_sessions,
    session_rng,
    spawn_session_seeds,
)
from repro.sim.bandwidth import (
    BandwidthModel,
    LowBandwidthTraceGenerator,
    MarkovTraceGenerator,
    StationaryTraceGenerator,
)
from repro.sim.player import dynamic_buffer_cap
from repro.sim.session import SessionConfig
from repro.sim.video import BitrateLadder, Video, VideoLibrary
from repro.users.engagement import BaselineExitModel, RuleBasedUser
from repro.users.population import UserPopulation

STALL_BINS = [0.0, 1.0, 2.0, 4.0, 8.0]

_TRACE_GENERATORS = {
    "stationary": StationaryTraceGenerator(1800.0, 500.0),
    "markov": MarkovTraceGenerator(),
    "low_bandwidth": LowBandwidthTraceGenerator(),
}

_ABR_FACTORIES = {
    "throughput": ThroughputRule,
    "hyb": HYB,
    "bba": BBA,
    "bola": BOLA,
    "robust_mpc": RobustMPC,
}


def _spec_batch(abr_name: str, trace_family: str, seed: int, num_sessions: int = 12):
    """A heterogeneous batch: per-user exit models, videos and substreams."""
    rng = np.random.default_rng(seed)
    population = UserPopulation.generate(
        num_sessions, seed=seed + 1, bandwidth_median_kbps=2500.0
    )
    library = VideoLibrary(num_videos=4, mean_duration=36.0, std_duration=12.0, seed=2)
    generator = _TRACE_GENERATORS[trace_family]
    seeds = spawn_session_seeds(seed, num_sessions)
    abr = _ABR_FACTORIES[abr_name]()
    return [
        SessionSpec(
            abr=abr,
            video=library[i],
            trace=generator.generate(70, rng),
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
        )
        for i, profile in enumerate(population)
    ]


def assert_traces_equal(scalar_traces, vector_traces):
    """Exact, field-for-field equality of two trace lists."""
    assert len(scalar_traces) == len(vector_traces)
    for scalar_trace, vector_trace in zip(scalar_traces, vector_traces):
        assert scalar_trace.user_id == vector_trace.user_id
        assert scalar_trace.trace_name == vector_trace.trace_name
        assert scalar_trace.video_duration == vector_trace.video_duration
        assert scalar_trace.segment_duration == vector_trace.segment_duration
        assert scalar_trace.exited_early == vector_trace.exited_early
        assert len(scalar_trace) == len(vector_trace)
        for scalar_record, vector_record in zip(
            scalar_trace.records, vector_trace.records
        ):
            assert scalar_record == vector_record


class TestEquivalenceGate:
    @pytest.mark.parametrize("abr_name", sorted(_ABR_FACTORIES))
    @pytest.mark.parametrize("trace_family", sorted(_TRACE_GENERATORS))
    @pytest.mark.parametrize("seed", [0, 13])
    def test_vector_reproduces_scalar_exactly(self, abr_name, trace_family, seed):
        specs = _spec_batch(abr_name, trace_family, seed)
        scalar_traces = get_backend("scalar").run_batch(specs, SessionConfig())
        backend = VectorBackend()
        vector_traces = backend.run_batch(specs, SessionConfig())
        assert_traces_equal(scalar_traces, vector_traces)
        # every kernel-equipped ABR family stays on the fast path end to end
        assert backend.last_fallback_sessions == 0
        assert backend.total_fallback_sessions == 0
        assert backend.last_batch_sessions == len(specs)

    @pytest.mark.parametrize("abr_name", sorted(_ABR_FACTORIES))
    def test_aggregates_identical_after_telemetry_replay(self, abr_name, tmp_path):
        specs = _spec_batch(abr_name, "low_bandwidth", 5)
        scalar_logs = LogCollection(
            [
                SessionLog(
                    user_id=spec.user_id,
                    day=0,
                    session_index=i,
                    trace=trace,
                    mean_bandwidth_kbps=1500.0,
                )
                for i, (spec, trace) in enumerate(
                    zip(specs, get_backend("scalar").run_batch(specs))
                )
            ]
        )
        path = tmp_path / f"{abr_name}.jsonl"
        with TelemetryWriter(path) as writer:
            for i, trace in enumerate(get_backend("vector").run_batch(specs)):
                log = SessionLog(
                    user_id=specs[i].user_id,
                    day=0,
                    session_index=i,
                    trace=trace,
                    mean_bandwidth_kbps=1500.0,
                )
                writer.emit(session_event("equivalence", 0, log))
        replayed = replay_log_collection(path)
        np.testing.assert_array_equal(
            scalar_logs.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
            replayed.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
        )
        assert scalar_logs.segment_exit_rate() == replayed.segment_exit_rate()
        assert sum(s.watch_time for s in scalar_logs) == sum(
            s.watch_time for s in replayed
        )
        assert sum(s.total_stall_time for s in scalar_logs) == sum(
            s.total_stall_time for s in replayed
        )

    @pytest.mark.parametrize(
        "config",
        [
            SessionConfig(),
            SessionConfig(max_segments=9),
            SessionConfig(initial_buffer=4.0, rtt=0.02, base_buffer_cap=9.0),
        ],
    )
    def test_session_config_variants(self, config):
        specs = _spec_batch("hyb", "stationary", 3, num_sessions=8)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, config),
            get_backend("vector").run_batch(specs, config),
        )

    @pytest.mark.parametrize(
        "exit_model",
        [None, RuleBasedUser(3.0, 2), BaselineExitModel(base_hazard=0.05)],
        ids=["none", "rule_based", "baseline"],
    )
    def test_exit_model_families(self, exit_model):
        video = Video(num_segments=40, seed=4)
        trace = StationaryTraceGenerator(1200.0, 400.0).generate(
            25, np.random.default_rng(2)
        )
        specs = [
            SessionSpec(
                abr=HYB(), video=video, trace=trace, exit_model=exit_model, seed=i
            )
            for i in range(6)
        ]
        assert_traces_equal(
            get_backend("scalar").run_batch(specs),
            get_backend("vector").run_batch(specs),
        )

    def test_trace_shorter_than_video_wraps_identically(self):
        video = Video(num_segments=50, seed=9)
        trace = StationaryTraceGenerator(2000.0, 300.0).generate(
            7, np.random.default_rng(1)
        )
        specs = [SessionSpec(abr=BBA(), video=video, trace=trace, seed=i) for i in range(4)]
        assert_traces_equal(
            get_backend("scalar").run_batch(specs),
            get_backend("vector").run_batch(specs),
        )

    def test_heterogeneous_batch_mixed_ladders_policies_and_fallbacks(self):
        rng = np.random.default_rng(8)
        population = UserPopulation.generate(10, seed=3, bandwidth_median_kbps=2000.0)
        full = Video(num_segments=30, seed=1)
        mobile = Video(
            ladder=BitrateLadder(bitrates_kbps=(350.0, 750.0, 1850.0)),
            num_segments=22,
            seed=2,
        )
        trace = MarkovTraceGenerator().generate(60, rng)
        abrs = [
            HYB(parameters=QoEParameters(beta=0.5)),
            BBA(reservoir_s=2.0),
            ThroughputRule(gradual=False),
            BOLA(),
            RobustMPC(),
            KernellessABR(),  # no vector kernel -> scalar fallback inside the batch
        ]
        specs = [
            SessionSpec(
                abr=abrs[i % len(abrs)],
                video=mobile if i % 3 == 0 else full,
                trace=trace,
                exit_model=profile.exit_model(),
                seed=100 + i,
                user_id=profile.user_id,
            )
            for i, profile in enumerate(population)
        ]
        backend = VectorBackend()
        vector_traces = backend.run_batch(specs)
        assert_traces_equal(get_backend("scalar").run_batch(specs), vector_traces)
        expected_fallbacks = sum(
            1 for spec in specs if isinstance(spec.abr, KernellessABR)
        )
        assert backend.last_fallback_sessions == expected_fallbacks > 0

    def test_subclass_without_own_kernel_falls_back_to_scalar(self):
        class StubbornHYB(HYB):
            """Overrides the decision rule without providing a vector kernel."""

            def select_level(self, context):
                return 0

        assert not VectorBackend._vectorizable(
            SessionSpec(
                abr=StubbornHYB(),
                video=Video(num_segments=5, seed=0),
                trace=StationaryTraceGenerator(2000.0).generate(
                    5, np.random.default_rng(0)
                ),
            )
        )
        video = Video(num_segments=15, seed=3)
        trace = StationaryTraceGenerator(900.0, 200.0).generate(
            15, np.random.default_rng(4)
        )
        specs = [
            SessionSpec(abr=StubbornHYB(), video=video, trace=trace, seed=i)
            for i in range(3)
        ]
        vector_traces = get_backend("vector").run_batch(specs)
        assert_traces_equal(get_backend("scalar").run_batch(specs), vector_traces)
        assert all(
            record.level == 0 for trace_ in vector_traces for record in trace_.records
        )


class KernellessABR(HYB):
    """Overrides the decision rule without providing a vector kernel.

    Shared by the fallback-routing tests here and in ``test_network.py``:
    per the backend's convention, a subclass without its own
    ``vector_kernel`` must leave the fast path.
    """

    def select_level(self, context):
        return min(1, context.ladder.num_levels - 1)


def make_lingxi_abr(predictor, seed: int, mode: str) -> LingXiABR:
    """LingXi(HYB) with the batched lockstep evaluator (the fleet shape)."""
    controller = LingXiController(
        parameter_space=ParameterSpace.for_hyb(),
        predictor=predictor,
        monte_carlo=MonteCarloConfig(num_samples=2, max_sample_duration_s=20.0),
        trigger=TriggerPolicy(stall_count_threshold=1),
        config=ControllerConfig(mode=mode, max_sample_times=2, seed=seed),
    )
    controller.evaluator = BatchedMonteCarloEvaluator(
        predictor, config=controller.evaluator.config, pruning=controller.pruning
    )
    return LingXiABR(HYB(), controller)


class TestLingXiVectorPath:
    """Optimization-enabled sessions run lockstep through the controller host.

    The gate matches the plain-ABR one — segment-for-segment trace equality
    with the scalar backend and zero scalar fallbacks — plus a stronger
    condition: the per-user controllers must finish with *identical*
    activation histories and deployed parameters, because the batched
    cross-session Monte-Carlo evaluations must reproduce each controller's
    own evaluation results exactly.
    """

    @pytest.fixture(scope="class")
    def predictor(self):
        return ExitRatePredictor(channels=8, hidden=16, seed=0)

    def _specs(self, predictor, mode, sessions_per_user=1):
        rng = np.random.default_rng(3)
        population = UserPopulation.generate(6, seed=4, bandwidth_median_kbps=1200.0)
        library = VideoLibrary(
            num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2
        )
        generator = LowBandwidthTraceGenerator()
        seeds = spawn_session_seeds(11, 6 * sessions_per_user)
        specs = []
        for u, profile in enumerate(population):
            abr = make_lingxi_abr(predictor, 100 + u, mode)
            exit_model = profile.exit_model()
            trace = generator.generate(70, rng)
            for s in range(sessions_per_user):
                specs.append(
                    SessionSpec(
                        abr=abr,
                        video=library[(u + s) % 3],
                        trace=trace,
                        exit_model=exit_model,
                        seed=seeds[u * sessions_per_user + s],
                        user_id=profile.user_id,
                    )
                )
        return specs

    def _assert_controllers_equal(self, scalar_specs, vector_specs):
        for scalar_spec, vector_spec in zip(scalar_specs, vector_specs):
            scalar_controller = scalar_spec.abr.controller
            vector_controller = vector_spec.abr.controller
            assert scalar_controller.history == vector_controller.history
            assert (
                scalar_controller.best_parameters
                == vector_controller.best_parameters
            )

    @pytest.mark.parametrize("mode", ["fixed", "bayesian"])
    def test_lingxi_sessions_match_scalar_with_zero_fallbacks(
        self, predictor, mode
    ):
        scalar_specs = self._specs(predictor, mode)
        vector_specs = self._specs(predictor, mode)
        scalar_traces = get_backend("scalar").run_batch(scalar_specs)
        backend = VectorBackend()
        vector_traces = backend.run_batch(vector_specs)
        assert_traces_equal(scalar_traces, vector_traces)
        assert backend.last_fallback_sessions == 0
        self._assert_controllers_equal(scalar_specs, vector_specs)
        # the loop actually optimized (otherwise the gate proves nothing)
        assert sum(
            len(spec.abr.controller.history) for spec in scalar_specs
        ) > 0

    @pytest.mark.parametrize("mode", ["fixed", "bayesian"])
    def test_shared_per_user_instances_run_in_waves(self, predictor, mode):
        """One user's sessions share a LingXiABR; state must flow in order."""
        scalar_specs = self._specs(predictor, mode, sessions_per_user=3)
        vector_specs = self._specs(predictor, mode, sessions_per_user=3)
        scalar_traces = get_backend("scalar").run_batch(scalar_specs)
        backend = VectorBackend()
        vector_traces = backend.run_batch(vector_specs)
        assert_traces_equal(scalar_traces, vector_traces)
        assert backend.last_fallback_sessions == 0
        self._assert_controllers_equal(scalar_specs, vector_specs)

    def test_sequential_evaluator_still_matches_without_batching(self, predictor):
        """Controllers on the sequential evaluator optimize per session."""
        def build():
            controller = LingXiController(
                parameter_space=ParameterSpace.for_hyb(),
                predictor=predictor,
                monte_carlo=MonteCarloConfig(num_samples=2, max_sample_duration_s=16.0),
                trigger=TriggerPolicy(stall_count_threshold=1),
                config=ControllerConfig(mode="fixed", max_sample_times=2, seed=7),
            )
            abr = LingXiABR(HYB(), controller)
            video = Video(num_segments=30, seed=4)
            trace = LowBandwidthTraceGenerator().generate(
                40, np.random.default_rng(2)
            )
            return [SessionSpec(abr=abr, video=video, trace=trace, seed=5)]

        scalar_specs, vector_specs = build(), build()
        scalar_traces = get_backend("scalar").run_batch(scalar_specs)
        backend = VectorBackend()
        vector_traces = backend.run_batch(vector_specs)
        assert_traces_equal(scalar_traces, vector_traces)
        assert backend.last_fallback_sessions == 0
        self._assert_controllers_equal(scalar_specs, vector_specs)

    def test_lingxi_over_kernelless_inner_falls_back(self, predictor):
        controller = make_lingxi_abr(predictor, 0, "fixed").controller
        abr = LingXiABR(KernellessABR(), controller)
        video = Video(num_segments=8, seed=0)
        trace = StationaryTraceGenerator(2000.0).generate(8, np.random.default_rng(0))
        spec = SessionSpec(abr=abr, video=video, trace=trace, seed=1)
        assert not VectorBackend._vectorizable(spec)
        backend = VectorBackend()
        backend.run_batch([spec])
        assert backend.last_fallback_sessions == 1


class TestBackendSeam:
    def test_registry_contains_builtin_backends(self):
        names = available_backends()
        assert "scalar" in names and "vector" in names
        assert isinstance(get_backend("scalar"), ScalarBackend)
        assert isinstance(get_backend("vector"), VectorBackend)
        assert get_backend(None).name == "scalar"
        instance = VectorBackend()
        assert get_backend(instance) is instance
        with pytest.raises(KeyError):
            get_backend("not_a_backend")

    def test_run_sessions_helper_and_single_run(self):
        video = Video(num_segments=10, seed=0)
        trace = StationaryTraceGenerator(3000.0).generate(10, np.random.default_rng(0))
        spec = SessionSpec(abr=HYB(), video=video, trace=trace, seed=1)
        helper_traces = run_sessions([spec], backend="vector")
        single = get_backend("vector").run(spec)
        assert helper_traces[0].records == single.records

    def test_unseeded_specs_draw_independently_and_match_across_backends(self):
        video = Video(num_segments=40, seed=4)
        trace = StationaryTraceGenerator(1000.0, 300.0).generate(
            20, np.random.default_rng(2)
        )
        specs = [
            SessionSpec(
                abr=HYB(), video=video, trace=trace, exit_model=BaselineExitModel()
            )
            for _ in range(8)
        ]
        scalar_traces = get_backend("scalar").run_batch(specs)
        assert_traces_equal(scalar_traces, get_backend("vector").run_batch(specs))
        # identical specs but distinct position-derived substreams: sessions
        # must not all exit at the same segment
        assert len({len(trace_) for trace_ in scalar_traces}) > 1

    def test_nan_exit_probability_rejected_by_both_backends(self):
        class BrokenExitModel(BaselineExitModel):
            def exit_probability(self, observation):
                return float("nan")

            @classmethod
            def vector_exit_kernel(cls, models):
                return lambda view: np.full(len(models), np.nan)

        video = Video(num_segments=10, seed=0)
        trace = StationaryTraceGenerator(3000.0).generate(10, np.random.default_rng(0))
        specs = [
            SessionSpec(
                abr=HYB(), video=video, trace=trace, exit_model=BrokenExitModel(), seed=i
            )
            for i in range(3)
        ]
        with pytest.raises(ValueError, match="exit probability"):
            get_backend("scalar").run_batch(specs)
        with pytest.raises(ValueError, match="exit probability"):
            get_backend("vector").run_batch(specs)

    def test_session_rng_is_philox_and_deterministic(self):
        first = session_rng(42)
        second = session_rng(42)
        assert type(first.bit_generator).__name__ == "Philox"
        np.testing.assert_array_equal(first.random(16), second.random(16))
        # pre-drawn vectors equal step-by-step draws on the same substream
        stepwise = np.asarray([session_rng(7).random() for _ in range(1)])
        assert session_rng(7).random(4)[0] == stepwise[0]

    def test_dynamic_buffer_cap_array_matches_scalar(self):
        rng = np.random.default_rng(0)
        means = rng.uniform(200.0, 20000.0, size=64)
        stds = rng.uniform(0.0, 5000.0, size=64)
        array_caps = dynamic_buffer_cap(means, stds)
        scalar_caps = [dynamic_buffer_cap(m, s) for m, s in zip(means, stds)]
        np.testing.assert_array_equal(array_caps, scalar_caps)
        with pytest.raises(ValueError):
            dynamic_buffer_cap(np.asarray([100.0, -1.0]), np.asarray([0.0, 0.0]))

    def test_video_sizes_tuple_matches_matrix(self):
        video = Video(num_segments=12, seed=5)
        for index in (0, 5, 11, 12, 25):
            assert video.sizes_tuple(index) == tuple(video.sizes_for_segment(index))


class TestFleetBackendRouting:
    @pytest.fixture
    def population(self):
        return UserPopulation.generate(12, seed=5, bandwidth_median_kbps=2500.0)

    @pytest.fixture
    def library(self):
        return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)

    def _run(self, population, library, backend, **overrides):
        defaults = dict(
            num_shards=3,
            num_workers=0,
            sessions_per_user=2,
            trace_length=50,
            seed=11,
            backend=backend,
        )
        defaults.update(overrides)
        return FleetOrchestrator(FleetConfig(**defaults)).run(population, library)

    def test_vector_fleet_is_deterministic(self, population, library):
        first = self._run(population, library, "vector")
        second = self._run(population, library, "vector")
        assert first.metrics == second.metrics
        np.testing.assert_array_equal(
            first.logs.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
            second.logs.exit_rate_by_stall_time(STALL_BINS, min_samples=1),
        )

    def test_vector_fleet_preserves_session_counts_and_user_order(
        self, population, library
    ):
        scalar = self._run(population, library, "scalar")
        vector = self._run(population, library, "vector")
        # Users, their ordering and their session counts match the scalar
        # run (built-in scenarios derive session counts without consuming
        # RNG); the concrete traces/videos/exits differ because the batched
        # path does not interleave exit draws with the scenario draws.
        assert scalar.metrics.num_sessions == vector.metrics.num_sessions
        assert [log.user_id for log in scalar.logs] == [
            log.user_id for log in vector.logs
        ]

    def test_vector_fleet_determinism_across_worker_counts(self, population, library):
        inline = self._run(population, library, "vector", num_workers=0)
        pooled = self._run(population, library, "vector", num_workers=2)
        assert inline.metrics == pooled.metrics

    def test_vector_fleet_with_lingxi_factory_runs_hosted_and_keeps_state(
        self, population, library
    ):
        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        result = FleetOrchestrator(
            FleetConfig(
                num_shards=2,
                num_workers=0,
                sessions_per_user=1,
                trace_length=40,
                seed=3,
                backend="vector",
            )
        ).run(population, library, abr_factory=LingXiFleetFactory(predictor))
        assert result.metrics.num_sessions == len(population)
        assert set(result.controller_states) == {p.user_id for p in population}

    def test_rejects_unknown_backend(self):
        with pytest.raises(KeyError):
            FleetConfig(backend="warp_drive")


class TestBatchedEvaluateMany:
    @pytest.fixture(scope="class")
    def predictor(self):
        return ExitRatePredictor(channels=8, hidden=16, seed=0)

    @staticmethod
    def _snapshot_and_state():
        bandwidth = BandwidthModel(window=8)
        for value in (600.0, 560.0, 640.0, 580.0, 620.0, 600.0, 590.0, 610.0):
            bandwidth.update(value)
        snapshot = PlayerSnapshot(
            ladder=BitrateLadder(),
            segment_duration=2.0,
            buffer=2.0,
            last_level=1,
            bandwidth_model=bandwidth,
        )
        state = UserState()
        for k in range(8):
            state.observe_segment(
                bitrate_kbps=750.0,
                throughput_kbps=600.0,
                stall_time=0.4 if k % 2 == 0 else 0.0,
                segment_duration=2.0,
            )
        return snapshot, state

    def test_evaluate_many_matches_per_candidate_evaluate(self, predictor):
        snapshot, state = self._snapshot_and_state()
        evaluator = BatchedMonteCarloEvaluator(
            predictor, config=MonteCarloConfig(num_samples=5, seed=3)
        )
        abr = HYB()
        candidates = [QoEParameters(beta=beta) for beta in (0.5, 0.7, 0.9, 1.1)]
        singles = [
            evaluator.evaluate(
                candidate, abr, snapshot, state, rng=np.random.default_rng(17)
            )
            for candidate in candidates
        ]
        batched = evaluator.evaluate_many(
            candidates,
            abr,
            snapshot,
            state,
            rngs=[np.random.default_rng(17) for _ in candidates],
        )
        assert singles == batched
        assert abr.parameters == QoEParameters()

    def test_evaluate_many_default_rng_spawn_and_validation(self, predictor):
        snapshot, state = self._snapshot_and_state()
        evaluator = BatchedMonteCarloEvaluator(
            predictor, config=MonteCarloConfig(num_samples=2, seed=1)
        )
        candidates = [QoEParameters(beta=0.6), QoEParameters(beta=0.8)]
        values = evaluator.evaluate_many(
            candidates, HYB(), snapshot, state, rng=np.random.default_rng(5)
        )
        assert len(values) == 2 and all(0.0 <= value <= 1.0 for value in values)
        assert evaluator.evaluate_many([], HYB(), snapshot, state) == []
        with pytest.raises(ValueError):
            evaluator.evaluate_many(
                candidates, HYB(), snapshot, state, rngs=[np.random.default_rng(0)]
            )

    def test_virtual_video_shared_between_evaluators(self, predictor):
        snapshot, _ = self._snapshot_and_state()
        config = MonteCarloConfig(num_samples=2, max_sample_duration_s=30.0, seed=2)
        sequential = MonteCarloEvaluator(predictor, config=config)
        shared = virtual_video(snapshot, config)
        own = sequential._virtual_video(snapshot)
        assert own.num_segments == shared.num_segments
        np.testing.assert_array_equal(own.segment_sizes_kbit, shared.segment_sizes_kbit)
