"""Tests for the Gaussian-process Bayesian optimization stack."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bayesopt import (
    BayesianOptimizer,
    GaussianProcess,
    Matern52Kernel,
    OnlineBayesianOptimizer,
    RBFKernel,
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)


class TestKernels:
    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_diagonal_equals_signal_variance(self, kernel_cls):
        kernel = kernel_cls(length_scale=0.5, signal_variance=2.0)
        x = np.random.default_rng(0).normal(size=(5, 3))
        matrix = kernel(x, x)
        np.testing.assert_allclose(np.diag(matrix), 2.0, atol=1e-8)

    @pytest.mark.parametrize("kernel_cls", [RBFKernel, Matern52Kernel])
    def test_symmetry_and_decay(self, kernel_cls):
        kernel = kernel_cls()
        x = np.asarray([[0.0], [0.1], [5.0]])
        matrix = kernel(x, x)
        np.testing.assert_allclose(matrix, matrix.T, atol=1e-12)
        assert matrix[0, 1] > matrix[0, 2]

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            RBFKernel(length_scale=0)
        with pytest.raises(ValueError):
            Matern52Kernel(signal_variance=-1)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            RBFKernel()(np.zeros((2, 2)), np.zeros((2, 3)))


class TestGaussianProcess:
    def test_interpolates_observations(self):
        x = np.linspace(0, 1, 6)[:, None]
        y = np.sin(3 * x).ravel()
        gp = GaussianProcess(noise=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        np.testing.assert_allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.1)

    def test_uncertainty_grows_away_from_data(self):
        x = np.asarray([[0.0], [0.2]])
        gp = GaussianProcess().fit(x, np.asarray([0.0, 0.1]))
        _, std_near = gp.predict(np.asarray([[0.1]]))
        _, std_far = gp.predict(np.asarray([[3.0]]))
        assert std_far > std_near

    def test_predict_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 1)))

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((2, 1)), np.zeros(3))

    def test_duplicate_points_handled(self):
        x = np.asarray([[0.5], [0.5], [0.5]])
        gp = GaussianProcess().fit(x, np.asarray([1.0, 1.0, 1.0]))
        mean, _ = gp.predict(np.asarray([[0.5]]))
        assert mean[0] == pytest.approx(1.0, abs=1e-2)


class TestAcquisitions:
    def test_expected_improvement_prefers_low_mean(self):
        ei = expected_improvement(np.asarray([0.1, 0.9]), np.asarray([0.1, 0.1]), best=0.5)
        assert ei[0] > ei[1]

    def test_probability_of_improvement_bounds(self):
        pi = probability_of_improvement(np.asarray([0.0, 1.0]), np.asarray([0.2, 0.2]), best=0.5)
        assert np.all(pi >= 0) and np.all(pi <= 1)
        assert pi[0] > pi[1]

    def test_lcb_rewards_uncertainty(self):
        scores = lower_confidence_bound(np.asarray([0.5, 0.5]), np.asarray([0.01, 0.5]))
        assert scores[1] > scores[0]

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=-2, max_value=2), st.floats(min_value=1e-3, max_value=2))
    def test_expected_improvement_non_negative(self, mean, std):
        value = expected_improvement(np.asarray([mean]), np.asarray([std]), best=0.0)
        assert value[0] >= -1e-9


class TestBayesianOptimizer:
    def test_minimizes_quadratic(self):
        bounds = np.asarray([[-2.0, 2.0], [-2.0, 2.0]])
        optimizer = BayesianOptimizer(bounds, seed=0)
        best = optimizer.minimize(lambda x: float(np.sum((x - 0.5) ** 2)), num_iterations=25)
        assert best.value < 0.5

    def test_suggest_within_bounds(self):
        bounds = np.asarray([[1.0, 3.0]])
        optimizer = BayesianOptimizer(bounds, seed=1)
        for _ in range(10):
            candidate = optimizer.suggest()
            assert 1.0 <= candidate[0] <= 3.0
            optimizer.update(candidate, float(candidate[0] ** 2))

    def test_update_validation(self):
        optimizer = BayesianOptimizer(np.asarray([[0.0, 1.0]]))
        with pytest.raises(ValueError):
            optimizer.update(np.asarray([0.5, 0.5]), 1.0)
        with pytest.raises(ValueError):
            optimizer.update(np.asarray([0.5]), float("nan"))

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BayesianOptimizer(np.asarray([[1.0, 0.0]]))
        with pytest.raises(ValueError):
            BayesianOptimizer(np.asarray([[0.0, 1.0]]), acquisition="bogus")

    @pytest.mark.parametrize("acquisition", ["ei", "pi", "lcb"])
    def test_all_acquisitions_run(self, acquisition):
        optimizer = BayesianOptimizer(np.asarray([[0.0, 1.0]]), acquisition=acquisition, seed=2)
        best = optimizer.minimize(lambda x: float((x[0] - 0.3) ** 2), num_iterations=12)
        assert 0.0 <= best.x[0] <= 1.0


class TestOnlineBayesianOptimizer:
    def test_warm_start_carries_history(self):
        bounds = np.asarray([[0.0, 1.0]])
        obo = OnlineBayesianOptimizer(bounds, seed=0)
        obo.start_round()
        for _ in range(4):
            candidate = obo.next_candidate()
            obo.update(candidate, float((candidate[0] - 0.2) ** 2))
        first_best = obo.best_trial
        obo.start_round(incumbent=np.asarray([0.2]), incumbent_value=0.0)
        assert len(obo.history) >= 5
        assert obo.best_trial.value <= first_best.value

    def test_update_before_round_raises(self):
        obo = OnlineBayesianOptimizer(np.asarray([[0.0, 1.0]]))
        with pytest.raises(RuntimeError):
            obo.update(np.asarray([0.5]), 0.1)

    def test_next_candidate_auto_starts_round(self):
        obo = OnlineBayesianOptimizer(np.asarray([[0.0, 1.0]]), seed=1)
        candidate = obo.next_candidate()
        assert 0.0 <= candidate[0] <= 1.0

    def test_history_bounded(self):
        obo = OnlineBayesianOptimizer(np.asarray([[0.0, 1.0]]), memory=2, seed=2)
        obo.start_round()
        for i in range(60):
            obo.update(np.asarray([0.5]), float(i))
        assert len(obo.history) <= 20

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineBayesianOptimizer(np.asarray([[0.0, 1.0]]), memory=0)
        with pytest.raises(ValueError):
            OnlineBayesianOptimizer(np.asarray([[0.0, 1.0]]), decay=0.0)

    def test_half_specified_incumbent_raises(self):
        """An incumbent without its value (or vice versa) must not be dropped."""
        obo = OnlineBayesianOptimizer(np.asarray([[0.0, 1.0]]), seed=0)
        with pytest.raises(ValueError, match="incumbent"):
            obo.start_round(incumbent=np.asarray([0.3]))
        with pytest.raises(ValueError, match="incumbent"):
            obo.start_round(incumbent_value=0.25)
        # a fully specified incumbent lands in both the history and the round
        obo.start_round(incumbent=np.asarray([0.3]), incumbent_value=0.25)
        assert obo.history[-1].x == (0.3,) and obo.history[-1].value == 0.25
        assert obo._active.trials[-1].x == (0.3,)

    def test_warm_start_contents_and_decay_weights_across_activations(self):
        """Warm start = decay-gated recent history, newest weighted strongest."""
        obo = OnlineBayesianOptimizer(
            np.asarray([[0.0, 1.0]]), memory=12, decay=0.8, seed=0
        )
        obo.start_round()
        for i in range(6):
            obo.update(np.asarray([0.1 * i]), float(i))
        obo.start_round(incumbent=np.asarray([0.9]), incumbent_value=-1.0)
        active = obo._active
        # decay 0.8: weights 1, .8, .64, .512, .4096, .328, .262 — the 0.1
        # floor keeps all 7 retained trials (ages 0..6)
        assert len(active.trials) == 7
        # trials enter newest-first: the incumbent leads with full weight
        assert active.trials[0].x == (0.9,) and active.weights[0] == 1.0
        np.testing.assert_allclose(
            active.weights, [0.8**age for age in range(7)]
        )
        # a long history gates out everything older than the 0.1 floor
        for i in range(20):
            obo.update(np.asarray([0.5]), float(i))
        obo.start_round()
        ages_kept = sum(1 for age in range(12) if 0.8**age >= 0.1)
        assert len(obo._active.trials) == ages_kept

    def test_warm_start_weights_soften_old_observations(self):
        """A decayed trial pulls the surrogate less than a fresh one."""
        from repro.bayesopt.gp import GaussianProcess

        x = np.asarray([[0.2], [0.8]])
        y = np.asarray([0.0, 1.0])
        fresh = GaussianProcess(noise=1e-2).fit(x, y)
        soft = GaussianProcess(noise=1e-2).fit(x, y, noise_scale=np.asarray([1.0, 10.0]))
        query = np.asarray([[0.8]])
        fresh_mean, fresh_std = fresh.predict(query)
        soft_mean, soft_std = soft.predict(query)
        # the softened observation is trusted less: posterior pulled less far
        # towards it and left with more uncertainty
        assert abs(soft_mean[0] - 1.0) > abs(fresh_mean[0] - 1.0)
        assert soft_std[0] > fresh_std[0]
        with pytest.raises(ValueError):
            GaussianProcess().fit(x, y, noise_scale=np.asarray([1.0]))
        with pytest.raises(ValueError):
            GaussianProcess().fit(x, y, noise_scale=np.asarray([1.0, 0.0]))
