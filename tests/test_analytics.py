"""Tests for QoE metrics, log aggregation, A/B statistics and correlations."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.abr.hyb import HYB
from repro.analytics import (
    LogCollection,
    SessionLog,
    aggregate_daily_metrics,
    difference_in_differences,
    linear_trend,
    pearson_correlation,
    qoe_lin,
    qoe_lin_components,
    relative_improvement,
    session_qoe_lin,
    welch_ttest,
)
from repro.analytics.metrics import normalize_series
from repro.sim.session import PlaybackSession
from repro.users.engagement import QoSAwareExitModel


@pytest.fixture
def small_logs(library, low_bandwidth_trace, high_bandwidth_trace, rng):
    """A small log corpus with both constrained and unconstrained sessions."""
    engine = PlaybackSession()
    sessions = []
    for day in range(2):
        for i, trace in enumerate((low_bandwidth_trace, high_bandwidth_trace)):
            for session_index in range(3):
                playback = engine.run(
                    HYB(),
                    library[session_index],
                    trace,
                    exit_model=QoSAwareExitModel(),
                    rng=rng,
                    user_id=f"user{i}",
                )
                sessions.append(
                    SessionLog(
                        user_id=f"user{i}",
                        day=day,
                        session_index=session_index,
                        trace=playback,
                        mean_bandwidth_kbps=trace.mean,
                    )
                )
    return LogCollection(sessions)


class TestQoELin:
    def test_components(self):
        qualities = np.asarray([1.0, 2.0, 1.0])
        stalls = np.asarray([0.0, 0.5, 0.0])
        quality_sum, stall_sum, switch_sum = qoe_lin_components(qualities, stalls)
        assert quality_sum == 4.0
        assert stall_sum == 0.5
        assert switch_sum == 2.0

    def test_linear_formula(self):
        qualities = np.asarray([1.0, 2.0])
        stalls = np.asarray([0.0, 1.0])
        assert qoe_lin(qualities, stalls, stall_penalty=4.0, switch_penalty=1.0) == pytest.approx(
            3.0 - 4.0 - 1.0
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            qoe_lin(np.ones(2), np.ones(3), 1.0)
        with pytest.raises(ValueError):
            qoe_lin(np.ones(2), np.ones(2), -1.0)

    def test_session_qoe_defaults_to_max_quality_penalty(self, video, high_bandwidth_trace, rng):
        playback = PlaybackSession().run(HYB(), video, high_bandwidth_trace, rng=rng)
        value = session_qoe_lin(playback)
        assert np.isfinite(value)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(min_value=1, max_value=20), st.floats(min_value=0, max_value=10))
    def test_more_stall_never_increases_qoe(self, n, extra_stall):
        qualities = np.ones(n)
        stalls = np.zeros(n)
        base = qoe_lin(qualities, stalls, stall_penalty=4.3)
        stalls_worse = stalls.copy()
        stalls_worse[0] += extra_stall
        assert qoe_lin(qualities, stalls_worse, stall_penalty=4.3) <= base + 1e-9


class TestLogCollection:
    def test_basic_accessors(self, small_logs):
        assert len(small_logs) == 12
        assert set(small_logs.users()) == {"user0", "user1"}
        assert small_logs.days() == [0, 1]

    def test_filter_and_extend(self, small_logs):
        day0 = small_logs.filter(lambda s: s.day == 0)
        assert len(day0) == 6
        combined = day0.extend(small_logs.filter(lambda s: s.day == 1))
        assert len(combined) == 12
        with pytest.raises(ValueError):
            small_logs.filter(lambda s: False)

    def test_segment_exit_rate_bounds(self, small_logs):
        rate = small_logs.segment_exit_rate()
        assert 0.0 <= rate <= 1.0
        stall_rate = small_logs.segment_exit_rate(lambda r: r.stall_time > 0)
        assert np.isnan(stall_rate) or 0.0 <= stall_rate <= 1.0

    def test_exit_rate_by_level_shape(self, small_logs):
        rates = small_logs.exit_rate_by_level(4)
        assert rates.shape == (4,)

    def test_exit_rate_by_stall_respects_min_samples(self, small_logs):
        rates = small_logs.exit_rate_by_stall_time([0, 1000.0], min_samples=10**9)
        assert np.isnan(rates).all()

    def test_daily_stall_counts(self, small_logs):
        counts = small_logs.daily_stall_counts()
        assert set(counts) <= {(u, d) for u in ("user0", "user1") for d in (0, 1)}
        by_bandwidth = small_logs.daily_stall_counts_by_bandwidth([0, 2000, 1e9])
        assert len(by_bandwidth) == 2

    def test_watch_time_aggregations(self, small_logs):
        by_level = small_logs.watch_time_by_level(4)
        assert by_level.shape == (4,)
        by_stall = small_logs.watch_time_by_stall_time([0, 1, 5])
        assert by_stall.shape == (3,)

    def test_stall_exit_rate_by_user(self, small_logs):
        rates = small_logs.stall_exit_rate_by_user(min_stall_events=1)
        assert all(0.0 <= v <= 1.0 for v in rates.values())

    def test_group_by_user(self, small_logs):
        groups = small_logs.group_by_user()
        assert sum(len(v) for v in groups.values()) == len(small_logs)

    def test_empty_collection_aggregates_safely(self):
        # Zero-arrival days of longitudinal campaigns produce empty
        # collections; every aggregation must degrade to zeros/NaNs instead
        # of dividing by zero.
        empty = LogCollection([])
        assert len(empty) == 0
        assert empty.users() == []
        assert empty.days() == []
        assert np.isnan(empty.segment_exit_rate())
        assert np.all(np.isnan(empty.exit_rate_by_level(4)))
        assert empty.daily_stall_counts() == {}
        assert aggregate_daily_metrics(empty.sessions, group="empty") == []


class TestDailyMetrics:
    def test_aggregation_per_day(self, small_logs):
        rows = aggregate_daily_metrics(small_logs.sessions, group="test")
        assert [row.day for row in rows] == [0, 1]
        for row in rows:
            assert row.num_sessions == 6
            assert row.total_watch_time > 0
            assert row.stall_seconds_per_hour >= 0

    def test_normalize_series(self):
        normalized = normalize_series([2.0, 4.0], [2.0, 2.0])
        np.testing.assert_allclose(normalized, [1.0, 2.0])
        with pytest.raises(ValueError):
            normalize_series([1.0], [1.0, 2.0])


class TestABTest:
    def test_welch_ttest_detects_difference(self):
        rng = np.random.default_rng(0)
        a = rng.normal(0.0, 1.0, 50)
        b = rng.normal(2.0, 1.0, 50)
        t, p = welch_ttest(a, b)
        assert p < 0.001
        with pytest.raises(ValueError):
            welch_ttest([1.0], [1.0, 2.0])

    def test_relative_improvement(self):
        np.testing.assert_allclose(
            relative_improvement([110.0, 90.0], [100.0, 100.0]), [0.1, -0.1]
        )
        with pytest.raises(ValueError):
            relative_improvement([1.0], [0.0])

    def test_did_recovers_known_effect(self):
        control_pre = [100.0, 101.0, 99.0]
        treatment_pre = [102.0, 103.0, 101.0]  # constant +2% bias
        control_post = [100.0, 100.0, 100.0]
        treatment_post = [105.0, 105.1, 104.9]  # bias + ~3% effect
        result = difference_in_differences(
            "watch", treatment_pre, control_pre, treatment_post, control_post
        )
        assert result.effect == pytest.approx(0.03, abs=0.005)
        assert result.p_value < 0.05
        assert "watch" in result.summary()

    def test_did_no_effect_not_significant(self):
        rng = np.random.default_rng(1)
        control = list(100 + rng.normal(0, 1, 6))
        treatment = list(100 + rng.normal(0, 1, 6))
        result = difference_in_differences(
            "x", treatment[:3], control[:3], treatment[3:], control[3:]
        )
        assert not result.significant or abs(result.effect) < 0.05

    def test_did_validation(self):
        with pytest.raises(ValueError):
            difference_in_differences("x", [1.0], [1.0], [1.0, 2.0], [1.0, 2.0])


class TestCorrelation:
    def test_pearson_known_values(self):
        x = [1.0, 2.0, 3.0, 4.0]
        assert pearson_correlation(x, x) == pytest.approx(1.0)
        assert pearson_correlation(x, [-v for v in x]) == pytest.approx(-1.0)
        assert pearson_correlation(x, [1.0, 1.0, 1.0, 1.0]) == 0.0

    def test_linear_trend(self):
        slope, intercept = linear_trend([0.0, 1.0, 2.0], [1.0, 3.0, 5.0])
        assert slope == pytest.approx(2.0)
        assert intercept == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            pearson_correlation([1.0], [1.0])
        with pytest.raises(ValueError):
            linear_trend([1.0, 2.0], [1.0])
