"""Tests for the player environment (Equation 3 dynamics)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.player import PlayerEnvironment, dynamic_buffer_cap
from repro.sim.video import BitrateLadder, Video


def make_player(initial_buffer=0.0, **kwargs):
    video = Video(ladder=BitrateLadder(), num_segments=30, segment_duration=2.0, seed=1)
    return PlayerEnvironment(video=video, initial_buffer=initial_buffer, **kwargs)


class TestDynamicBufferCap:
    def test_cap_within_bounds(self):
        assert 8.0 <= dynamic_buffer_cap(500, 100) <= 30.0
        assert 8.0 <= dynamic_buffer_cap(50000, 100) <= 30.0

    def test_low_bandwidth_gets_larger_cap(self):
        assert dynamic_buffer_cap(800, 400) > dynamic_buffer_cap(20000, 400)

    def test_requires_positive_mean(self):
        with pytest.raises(ValueError):
            dynamic_buffer_cap(0, 10)


class TestPlayerEnvironment:
    def test_first_segment_is_startup_not_stall(self):
        player = make_player()
        result = player.step(0, 1000.0)
        assert result.stall_time == 0.0
        assert player.startup_delay > 0.0
        assert player.stall_count == 0

    def test_stall_when_bandwidth_too_low(self):
        player = make_player()
        player.step(0, 5000.0)
        result = player.step(3, 100.0)  # huge segment over a dead-slow link
        assert result.stall_time > 0.0
        assert player.stall_count == 1

    def test_no_stall_with_ample_buffer_and_bandwidth(self):
        player = make_player(initial_buffer=10.0)
        result = player.step(0, 10000.0)
        assert result.stall_time == 0.0

    def test_buffer_never_exceeds_cap(self):
        player = make_player()
        for _ in range(20):
            player.step(0, 20000.0)
            assert player.buffer <= player.buffer_cap + 1e-9

    def test_buffer_grows_by_segment_duration_when_fast(self):
        player = make_player(initial_buffer=2.0)
        before = player.buffer
        result = player.step(0, 1e6)
        # The buffer drains by the (tiny) download time before being credited.
        assert result.buffer_after == pytest.approx(
            min(before + 2.0, player.buffer_cap), abs=1e-2
        )

    def test_totals_accumulate(self):
        player = make_player()
        for _ in range(5):
            player.step(0, 2000.0)
        assert player.total_play_time == pytest.approx(10.0)
        assert player.segment_index == 5

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            make_player(rtt=-1)
        with pytest.raises(ValueError):
            make_player(initial_buffer=-1)
        player = make_player()
        with pytest.raises(ValueError):
            player.step(0, 0.0)

    def test_fork_is_independent(self):
        player = make_player()
        player.step(0, 2000.0)
        fork = player.fork()
        fork.step(1, 2000.0)
        assert player.segment_index == 1
        assert fork.segment_index == 2
        assert fork.total_play_time > player.total_play_time

    @settings(max_examples=30, deadline=None)
    @given(
        levels=st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=25),
        bandwidth=st.floats(min_value=50.0, max_value=50000.0),
    )
    def test_buffer_always_in_valid_range(self, levels, bandwidth):
        player = make_player()
        for level in levels:
            player.step(level, bandwidth)
            assert 0.0 <= player.buffer <= player.buffer_cap + 1e-9
            assert player.total_stall_time >= 0.0
