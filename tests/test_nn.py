"""Tests for the numpy neural-network framework."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import (
    Adam,
    Conv1D,
    Dense,
    Flatten,
    MeanSquaredError,
    MultiBranchNetwork,
    ReLU,
    SGD,
    Sequential,
    SoftmaxCrossEntropy,
    accuracy_score,
    balanced_undersample,
    classification_report,
    confusion_matrix,
    f1_score,
    precision_score,
    recall_score,
    stratified_split,
)
from repro.nn.losses import softmax


def numerical_gradient(f, x, eps=1e-6):
    grad = np.zeros_like(x)
    flat = x.ravel()
    grad_flat = grad.ravel()
    for i in range(flat.size):
        original = flat[i]
        flat[i] = original + eps
        up = f()
        flat[i] = original - eps
        down = f()
        flat[i] = original
        grad_flat[i] = (up - down) / (2 * eps)
    return grad


class TestLayers:
    def test_dense_shapes_and_gradient(self):
        rng = np.random.default_rng(0)
        layer = Dense(4, 3, seed=1)
        x = rng.normal(size=(5, 4))
        out = layer.forward(x)
        assert out.shape == (5, 3)
        grad_out = rng.normal(size=(5, 3))
        grad_in = layer.backward(grad_out)
        assert grad_in.shape == x.shape

        def loss():
            return float(np.sum(layer.forward(x) * grad_out))

        numeric = numerical_gradient(loss, layer.weights)
        np.testing.assert_allclose(layer.grad_weights, numeric, atol=1e-4)

    def test_dense_rejects_bad_input(self):
        layer = Dense(4, 3)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((2, 5)))
        with pytest.raises(RuntimeError):
            Dense(4, 3).backward(np.zeros((2, 3)))

    def test_conv1d_shapes_and_gradient(self):
        rng = np.random.default_rng(0)
        layer = Conv1D(2, 3, kernel_size=3, seed=2)
        x = rng.normal(size=(4, 2, 8))
        out = layer.forward(x)
        assert out.shape == (4, 3, 6)
        grad_out = rng.normal(size=out.shape)
        grad_in = layer.backward(grad_out)
        assert grad_in.shape == x.shape

        def loss():
            return float(np.sum(layer.forward(x) * grad_out))

        numeric = numerical_gradient(loss, layer.kernel)
        np.testing.assert_allclose(layer.grad_kernel, numeric, atol=1e-4)
        numeric_input = numerical_gradient(loss, x)
        np.testing.assert_allclose(grad_in, numeric_input, atol=1e-4)

    def test_conv1d_rejects_short_input(self):
        layer = Conv1D(1, 2, kernel_size=4)
        with pytest.raises(ValueError):
            layer.forward(np.zeros((1, 1, 3)))

    def test_relu_and_flatten(self):
        relu = ReLU()
        x = np.asarray([[-1.0, 2.0], [3.0, -4.0]])
        out = relu.forward(x)
        np.testing.assert_allclose(out, [[0.0, 2.0], [3.0, 0.0]])
        grad = relu.backward(np.ones_like(x))
        np.testing.assert_allclose(grad, [[0.0, 1.0], [1.0, 0.0]])
        flat = Flatten()
        y = flat.forward(np.zeros((2, 3, 4)))
        assert y.shape == (2, 12)
        assert flat.backward(y).shape == (2, 3, 4)


class TestLosses:
    def test_softmax_rows_sum_to_one(self):
        logits = np.random.default_rng(0).normal(size=(6, 4))
        probabilities = softmax(logits)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(6))

    def test_cross_entropy_matches_manual(self):
        loss_fn = SoftmaxCrossEntropy()
        logits = np.asarray([[2.0, 0.0], [0.0, 3.0]])
        labels = np.asarray([0, 1])
        loss = loss_fn.forward(logits, labels)
        manual = -np.mean(
            [np.log(softmax(logits)[0, 0]), np.log(softmax(logits)[1, 1])]
        )
        assert loss == pytest.approx(manual)
        grad = loss_fn.backward()
        assert grad.shape == logits.shape

    def test_cross_entropy_gradient_numeric(self):
        rng = np.random.default_rng(1)
        logits = rng.normal(size=(3, 4))
        labels = np.asarray([0, 2, 3])
        loss_fn = SoftmaxCrossEntropy()

        def loss():
            return loss_fn.forward(logits, labels)

        loss()
        analytic = loss_fn.backward()
        numeric = numerical_gradient(loss, logits)
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_mse(self):
        mse = MeanSquaredError()
        value = mse.forward(np.asarray([1.0, 2.0]), np.asarray([0.0, 0.0]))
        assert value == pytest.approx(2.5)
        grad = mse.backward()
        np.testing.assert_allclose(grad, [1.0, 2.0])
        with pytest.raises(ValueError):
            mse.forward(np.zeros(2), np.zeros(3))


class TestOptimizers:
    @pytest.mark.parametrize("optimizer", [SGD(learning_rate=0.1), Adam(learning_rate=0.1)])
    def test_minimizes_quadratic(self, optimizer):
        x = np.asarray([5.0])
        for _ in range(200):
            grad = 2 * x
            optimizer.step([x], [grad])
        assert abs(x[0]) < 0.5

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            SGD().step([np.zeros(2)], [np.zeros(3)])
        with pytest.raises(ValueError):
            Adam().step([np.zeros(2)], [])

    def test_invalid_hyperparameters(self):
        with pytest.raises(ValueError):
            SGD(learning_rate=0)
        with pytest.raises(ValueError):
            Adam(beta1=1.0)


class TestNetworks:
    def test_sequential_learns_linearly_separable(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(200, 2))
        labels = (x[:, 0] + x[:, 1] > 0).astype(int)
        net = Sequential([Dense(2, 16, seed=1), ReLU(), Dense(16, 2, seed=2)])
        loss_fn = SoftmaxCrossEntropy()
        optimizer = Adam(learning_rate=0.05)
        for _ in range(150):
            loss_fn.forward(net.forward(x), labels)
            net.backward(loss_fn.backward())
            optimizer.step(net.parameters, net.gradients)
        assert accuracy_score(labels, net.predict(x)) > 0.9

    def test_multibranch_shapes(self):
        net = MultiBranchNetwork(num_features=5, length=8, channels=8, hidden=16, seed=0)
        x = np.random.default_rng(0).normal(size=(6, 5, 8))
        logits = net.forward(x)
        assert logits.shape == (6, 2)
        probabilities = net.predict_proba(x)
        np.testing.assert_allclose(probabilities.sum(axis=1), np.ones(6))
        with pytest.raises(ValueError):
            net.forward(np.zeros((2, 4, 8)))

    def test_multibranch_fit_reduces_loss(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(120, 5, 8))
        labels = (x[:, 2, :].sum(axis=1) > 0).astype(int)
        net = MultiBranchNetwork(channels=8, hidden=16, seed=1)
        losses = net.fit(x, labels, epochs=8, batch_size=32, learning_rate=3e-3, seed=0)
        assert losses[-1] < losses[0]
        assert accuracy_score(labels, net.predict(x)) > 0.7

    def test_multibranch_kernel_validation(self):
        with pytest.raises(ValueError):
            MultiBranchNetwork(length=3, kernel_size=4)


class TestMetrics:
    def test_known_values(self):
        y_true = [1, 1, 0, 0, 1]
        y_pred = [1, 0, 0, 1, 1]
        assert accuracy_score(y_true, y_pred) == pytest.approx(0.6)
        assert precision_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert recall_score(y_true, y_pred) == pytest.approx(2 / 3)
        assert f1_score(y_true, y_pred) == pytest.approx(2 / 3)
        matrix = confusion_matrix(y_true, y_pred)
        assert matrix.sum() == 5
        assert matrix[1, 1] == 2

    def test_degenerate_cases(self):
        assert precision_score([0, 0], [0, 0]) == 0.0
        assert recall_score([0, 0], [0, 1]) == 0.0
        assert f1_score([0, 0], [0, 0]) == 0.0
        with pytest.raises(ValueError):
            accuracy_score([], [])
        with pytest.raises(ValueError):
            accuracy_score([1], [1, 0])

    def test_report_keys(self):
        report = classification_report([0, 1], [0, 1])
        assert set(report) == {"accuracy", "precision", "recall", "f1"}

    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=50),
        st.lists(st.integers(min_value=0, max_value=1), min_size=2, max_size=50),
    )
    def test_metrics_bounded(self, y_true, y_pred):
        n = min(len(y_true), len(y_pred))
        y_true, y_pred = y_true[:n], y_pred[:n]
        for metric in (accuracy_score, precision_score, recall_score, f1_score):
            assert 0.0 <= metric(y_true, y_pred) <= 1.0


class TestSampling:
    def test_stratified_split_preserves_classes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        labels = np.asarray([0] * 80 + [1] * 20)
        x_train, y_train, x_test, y_test = stratified_split(x, labels, 0.25, seed=1)
        assert x_train.shape[0] + x_test.shape[0] == 100
        assert set(np.unique(y_test)) == {0, 1}
        assert abs(np.mean(y_test) - 0.2) < 0.05

    def test_balanced_undersample_equalizes(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(90, 2))
        labels = np.asarray([0] * 75 + [1] * 15)
        x_bal, y_bal = balanced_undersample(x, labels, seed=2)
        assert y_bal.sum() == 15
        assert len(y_bal) == 30

    def test_single_class_passthrough(self):
        x = np.zeros((5, 2))
        labels = np.zeros(5)
        x_out, y_out = balanced_undersample(x, labels)
        assert len(y_out) == 5

    def test_split_validation(self):
        with pytest.raises(ValueError):
            stratified_split(np.zeros((4, 1)), np.zeros(4), test_fraction=1.5)
        with pytest.raises(ValueError):
            balanced_undersample(np.zeros((4, 1)), np.zeros(3))

    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=5, max_value=40), st.integers(min_value=2, max_value=20))
    def test_balanced_counts_property(self, majority, minority):
        rng = np.random.default_rng(0)
        labels = np.asarray([0] * majority + [1] * minority)
        x = rng.normal(size=(labels.size, 2))
        _x_bal, y_bal = balanced_undersample(x, labels, seed=0)
        counts = np.bincount(y_bal, minlength=2)
        assert counts[0] == counts[1] == min(majority, minority)
