"""Tests for the playback session engine and trace records."""

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.abr.hyb import HYB
from repro.sim.session import (
    ABRContext,
    ExitObservation,
    PlaybackSession,
    SessionConfig,
)
from repro.users.engagement import RuleBasedUser


class AlwaysLowest:
    """Minimal ABR stub returning the lowest rung."""

    def select_level(self, context: ABRContext) -> int:
        return 0

    def reset(self) -> None:
        pass


class RecordingABR(AlwaysLowest):
    """Stub that records observe() callbacks."""

    def __init__(self):
        self.observed = []

    def observe(self, record) -> None:
        self.observed.append(record)


class ConstantExit:
    """Exit model with a fixed per-segment exit probability."""

    def __init__(self, probability: float):
        self.probability = probability

    def exit_probability(self, observation: ExitObservation) -> float:
        return self.probability

    def reset(self) -> None:
        pass


class TestPlaybackSession:
    def test_full_video_watched_without_exit_model(self, video, high_bandwidth_trace, rng):
        trace = PlaybackSession().run(AlwaysLowest(), video, high_bandwidth_trace, rng=rng)
        assert len(trace) == video.num_segments
        assert trace.completed
        assert trace.completion_ratio == pytest.approx(1.0)
        assert not trace.exited_early

    def test_certain_exit_stops_after_first_segment(self, video, high_bandwidth_trace, rng):
        trace = PlaybackSession().run(
            AlwaysLowest(), video, high_bandwidth_trace, exit_model=ConstantExit(1.0), rng=rng
        )
        assert len(trace) == 1
        assert trace.exited_early
        assert not trace.completed

    def test_invalid_exit_probability_raises(self, video, high_bandwidth_trace, rng):
        with pytest.raises(ValueError):
            PlaybackSession().run(
                AlwaysLowest(),
                video,
                high_bandwidth_trace,
                exit_model=ConstantExit(1.5),
                rng=rng,
            )

    def test_invalid_level_raises(self, video, high_bandwidth_trace, rng):
        class Broken(AlwaysLowest):
            def select_level(self, context):
                return 99

        with pytest.raises(ValueError):
            PlaybackSession().run(Broken(), video, high_bandwidth_trace, rng=rng)

    def test_observe_hook_called_per_segment(self, video, high_bandwidth_trace, rng):
        abr = RecordingABR()
        trace = PlaybackSession().run(abr, video, high_bandwidth_trace, rng=rng)
        assert len(abr.observed) == len(trace)

    def test_max_segments_caps_session(self, video, high_bandwidth_trace, rng):
        session = PlaybackSession(SessionConfig(max_segments=5))
        trace = session.run(AlwaysLowest(), video, high_bandwidth_trace, rng=rng)
        assert len(trace) == 5

    def test_rule_based_user_exits_on_low_bandwidth(self, video, low_bandwidth_trace, rng):
        user = RuleBasedUser(stall_time_threshold_s=1.0, stall_count_threshold=2)
        trace = PlaybackSession().run(
            HYB(), video, low_bandwidth_trace, exit_model=user, rng=rng
        )
        # HYB at beta=0.9 over a 1.2 Mbps link stalls quickly; the strict rule exits.
        assert trace.exited_early or trace.total_stall_time < 1.0

    def test_trace_metrics_consistent(self, video, low_bandwidth_trace, rng):
        trace = PlaybackSession().run(BBA(), video, low_bandwidth_trace, rng=rng)
        assert trace.watch_time == pytest.approx(len(trace) * video.segment_duration)
        assert trace.total_stall_time == pytest.approx(float(trace.stall_times.sum()))
        assert trace.stall_count == int(np.count_nonzero(trace.stall_times > 1e-12))
        assert trace.mean_bitrate_kbps == pytest.approx(float(trace.bitrates_kbps.mean()))
        assert trace.num_switches == int(np.count_nonzero(np.diff(trace.levels)))

    def test_records_monotone_cumulative_stall(self, video, low_bandwidth_trace, rng):
        trace = PlaybackSession().run(HYB(), video, low_bandwidth_trace, rng=rng)
        cumulative = [r.cumulative_stall_time for r in trace.records]
        assert all(b >= a for a, b in zip(cumulative, cumulative[1:]))

    def test_run_many_zips_and_cycles(self, library, high_bandwidth_trace, rng):
        traces = PlaybackSession().run_many(
            AlwaysLowest(), list(library.videos), [high_bandwidth_trace], rng=rng
        )
        assert len(traces) == len(library)

    def test_empty_trace_properties(self):
        from repro.sim.session import PlaybackTrace

        empty = PlaybackTrace(video_duration=10.0, segment_duration=2.0)
        assert empty.mean_bitrate_kbps == 0.0
        assert empty.completion_ratio == 0.0
        assert empty.num_switches == 0
