"""Out-of-core telemetry reader: exactness, index behaviour, bounded memory.

The streaming aggregations must reproduce the in-memory
``fleet_metrics``/:class:`LogCollection` results **bit-for-bit** — same
accumulation order, same float operations — while holding one session at a
time.  The sidecar index must skip chunks correctly, survive round-trips,
and rebuild itself when the telemetry file changes underneath it.  Peak
memory must stay flat as the file grows 10x.
"""

from __future__ import annotations

import json
import os
import tracemalloc

import numpy as np
import pytest

from repro.fleet import (
    FleetConfig,
    FleetOrchestrator,
    fleet_metrics,
    replay_log_collection,
    replay_run_summary,
)
from repro.obs.telemetry_reader import (
    TelemetryIndex,
    default_index_path,
    iter_events,
    iter_session_logs,
    last_event,
    load_or_build_index,
    read_run_summary,
    stream_exit_rate_by_stall_time,
    stream_fleet_metrics,
    stream_segment_exit_rate,
)
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation

STALL_BINS = [0.0, 1.0, 2.0, 4.0, 8.0]


@pytest.fixture(scope="module")
def telemetry(tmp_path_factory):
    """One profiled fleet run's telemetry file plus its live result."""
    from repro import obs

    population = UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)
    library = VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)
    path = tmp_path_factory.mktemp("telemetry") / "telemetry.jsonl"
    obs.enable()
    try:
        result = FleetOrchestrator(
            FleetConfig(
                num_shards=2,
                num_workers=0,
                sessions_per_user=2,
                trace_length=40,
                seed=9,
                backend="vector",
                network="dual_isp",
            )
        ).run(population, library, telemetry_path=path)
    finally:
        obs.disable()
    return path, result


class TestStreamingExactness:
    def test_fleet_metrics_match_in_memory_exactly(self, telemetry):
        path, result = telemetry
        replayed = fleet_metrics(replay_log_collection(path))
        streamed = stream_fleet_metrics(path)
        assert streamed.as_dict() == replayed.as_dict()
        assert streamed.as_dict() == result.metrics.as_dict()

    def test_fleet_metrics_with_index_identical(self, telemetry):
        path, _ = telemetry
        index = TelemetryIndex.build(path, events_per_chunk=7)
        assert stream_fleet_metrics(path, index=index).as_dict() == (
            stream_fleet_metrics(path).as_dict()
        )

    def test_segment_exit_rate_matches(self, telemetry):
        path, _ = telemetry
        collection = replay_log_collection(path)
        assert stream_segment_exit_rate(path) == collection.segment_exit_rate()

    def test_exit_rate_by_stall_time_bit_exact(self, telemetry):
        path, _ = telemetry
        collection = replay_log_collection(path)
        streamed = stream_exit_rate_by_stall_time(path, STALL_BINS, min_samples=5)
        in_memory = collection.exit_rate_by_stall_time(STALL_BINS, min_samples=5)
        np.testing.assert_array_equal(streamed, in_memory)

    def test_session_stream_order_matches_replay(self, telemetry):
        path, _ = telemetry
        collection = replay_log_collection(path)
        streamed_ids = [
            (log.user_id, log.session_index) for log in iter_session_logs(path)
        ]
        replayed_ids = [(log.user_id, log.session_index) for log in collection]
        assert streamed_ids == replayed_ids

    def test_run_summary_matches_replay(self, telemetry):
        path, _ = telemetry
        index = load_or_build_index(path, save=False)
        assert read_run_summary(path, index=index) == replay_run_summary(path)
        assert read_run_summary(path) == replay_run_summary(path)

    def test_empty_file_aggregates(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        metrics = stream_fleet_metrics(path)
        assert metrics.num_sessions == 0
        assert metrics.mean_bitrate_kbps == 0.0
        assert np.isnan(stream_segment_exit_rate(path))
        with pytest.raises(ValueError, match="no run_end event"):
            read_run_summary(path)


class TestIndex:
    def test_chunks_cover_file_and_counts_sum(self, telemetry):
        path, _ = telemetry
        index = TelemetryIndex.build(path, events_per_chunk=5)
        assert index.num_events == sum(c.num_events for c in index.chunks)
        assert all(c.num_events <= 5 for c in index.chunks)
        for event, total in index.event_counts.items():
            assert total == sum(c.counts.get(event, 0) for c in index.chunks)
        # every event is reachable through its chunks
        assert index.count("session") == sum(
            1 for _ in iter_events(path, event="session")
        )
        assert index.count("run_end") == 1

    def test_chunk_skipping_filter_equals_full_scan(self, telemetry):
        path, _ = telemetry
        index = TelemetryIndex.build(path, events_per_chunk=4)
        for event in index.event_counts:
            with_index = [e.payload for e in iter_events(path, event=event, index=index)]
            without = [e.payload for e in iter_events(path, event=event)]
            assert with_index == without
        # the rare event's filter reads only the chunks that contain it
        rare_chunks = list(index.chunks_with("run_end"))
        assert len(rare_chunks) < len(index.chunks)

    def test_last_event_uses_index(self, telemetry):
        path, _ = telemetry
        index = TelemetryIndex.build(path, events_per_chunk=4)
        plain = last_event(path, "session")
        indexed = last_event(path, "session", index=index)
        assert plain is not None and indexed is not None
        assert plain.payload == indexed.payload
        assert last_event(path, "no_such_event", index=index) is None

    def test_save_load_roundtrip(self, telemetry, tmp_path):
        path, _ = telemetry
        index = TelemetryIndex.build(path, events_per_chunk=8)
        saved = index.save(tmp_path / "t.idx.json")
        loaded = TelemetryIndex.load(saved)
        assert loaded == index

    def test_load_rejects_foreign_documents(self, tmp_path):
        bogus = tmp_path / "x.idx.json"
        bogus.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a telemetry index"):
            TelemetryIndex.load(bogus)
        bogus.write_text(json.dumps({"kind": "repro-telemetry-index", "version": 99}))
        with pytest.raises(ValueError, match="version 99"):
            TelemetryIndex.load(bogus)

    def test_load_or_build_rebuilds_on_staleness(self, telemetry, tmp_path):
        path, _ = telemetry
        copy = tmp_path / "telemetry.jsonl"
        copy.write_bytes(path.read_bytes())
        first = load_or_build_index(copy)
        assert default_index_path(copy).exists()
        # fresh index: loading hits the sidecar, no rebuild
        assert load_or_build_index(copy) == first
        # the file grows: the sidecar is stale and must be rebuilt
        with copy.open("a") as handle:
            handle.write(json.dumps({"event": "extra", "payload": {}}) + "\n")
        rebuilt = load_or_build_index(copy)
        assert rebuilt != first
        assert rebuilt.count("extra") == 1
        # corrupt sidecar: silently rebuilt too
        default_index_path(copy).write_text("not json")
        assert load_or_build_index(copy).count("extra") == 1

    def test_same_length_rewrite_triggers_rebuild(self, tmp_path):
        """A same-byte-count rewrite must not serve the stale sidecar.

        Size-only freshness misses in-place rewrites (same byte count,
        different content) — the index must also key on mtime_ns.
        """
        path = tmp_path / "telemetry.jsonl"
        path.write_text(
            "".join(
                json.dumps({"event": "aaa", "payload": {"i": i}}) + "\n"
                for i in range(5)
            )
        )
        first = load_or_build_index(path)
        assert first.count("aaa") == 5
        # rewrite every event name in place: identical st_size, new content
        rewritten = path.read_bytes().replace(b'"aaa"', b'"bbb"')
        assert len(rewritten) == path.stat().st_size
        path.write_bytes(rewritten)
        # force a distinct mtime_ns: coarse filesystem timestamp granularity
        # could otherwise make the rewrite look instantaneous
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
        rebuilt = load_or_build_index(path)
        assert rebuilt.file_mtime_ns != first.file_mtime_ns
        assert rebuilt.count("aaa") == 0
        assert rebuilt.count("bbb") == 5


class TestBoundedMemory:
    def _enlarge(self, path, out, factor):
        """Repeat the session events ``factor`` times, keeping run events."""
        lines = path.read_bytes().splitlines(keepends=True)
        sessions = [l for l in lines if b'"event": "session"' in l or b'"event":"session"' in l]
        others = [l for l in lines if l not in sessions]
        assert sessions, "telemetry corpus has no session events"
        with out.open("wb") as handle:
            for line in others[:1]:
                handle.write(line)
            for _ in range(factor):
                for line in sessions:
                    handle.write(line)
            for line in others[1:]:
                handle.write(line)
        return out

    def _peak_bytes(self, path):
        tracemalloc.start()
        try:
            stream_fleet_metrics(path)
            stream_exit_rate_by_stall_time(path, STALL_BINS)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_peak_memory_flat_as_file_grows_10x(self, telemetry, tmp_path):
        path, _ = telemetry
        small = self._enlarge(path, tmp_path / "small.jsonl", 1)
        large = self._enlarge(path, tmp_path / "large.jsonl", 10)
        assert large.stat().st_size > 9 * small.stat().st_size

        # warm-up pass so imports/caches don't count against either side
        self._peak_bytes(small)
        peak_small = self._peak_bytes(small)
        peak_large = self._peak_bytes(large)
        # allow generous slack for allocator noise; the point is that peak
        # does not scale with file size (a materialising reader would be ~10x)
        assert peak_large < max(2.0 * peak_small, peak_small + 512 * 1024)

    def test_enlarged_file_still_aggregates_exactly(self, telemetry, tmp_path):
        path, _ = telemetry
        large = self._enlarge(path, tmp_path / "large.jsonl", 3)
        streamed = stream_fleet_metrics(large)
        replayed = fleet_metrics(replay_log_collection(large))
        assert streamed.as_dict() == replayed.as_dict()
