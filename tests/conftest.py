"""Shared fixtures for the test suite.

Everything here is deliberately tiny: small videos, short traces, few users,
small networks — the goal is fast, deterministic tests that still exercise the
real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.contracts.tripwire import strict_mode_requested, strict_tripwire
from repro.experiments.common import SubstrateConfig, build_substrate
from repro.sim.bandwidth import BandwidthTrace, StationaryTraceGenerator
from repro.sim.video import BitrateLadder, Video, VideoLibrary
from repro.users.population import UserPopulation


def pytest_addoption(parser: pytest.Parser) -> None:
    """``--regen-golden``: rewrite the golden-trace corpus instead of failing.

    Intentional behaviour changes update the committed corpus with::

        PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden

    then the diff of ``tests/data/golden/`` is reviewed like any other code.
    """
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="regenerate tests/data/golden/*.json from the current engines",
    )


@pytest.fixture
def regen_golden(request: pytest.FixtureRequest) -> bool:
    """True when the run should rewrite the golden corpus."""
    return bool(request.config.getoption("--regen-golden"))


@pytest.fixture(scope="session", autouse=True)
def contracts_tripwire():
    """``REPRO_CONTRACTS=strict``: arm the runtime determinism tripwire.

    For the whole session, global-RNG and wall-clock entry points raise
    :class:`repro.contracts.tripwire.ContractViolation` when called from
    trace-affecting frames (``repro/sim``, ``repro/fleet``, …), so a
    dynamic path the AST linter cannot see fails loudly instead of
    silently drifting a golden trace.  CI runs the golden-trace and
    property-fuzz suites under this mode.  # contract: DET-RNG-001
    """
    if not strict_mode_requested():
        yield
        return
    with strict_tripwire():
        yield


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic RNG for a single test."""
    return np.random.default_rng(1234)


@pytest.fixture
def ladder() -> BitrateLadder:
    """Default 4-level production-style ladder."""
    return BitrateLadder()


@pytest.fixture
def video(ladder: BitrateLadder) -> Video:
    """A short 20-segment video."""
    return Video(ladder=ladder, num_segments=20, segment_duration=2.0, seed=7)


@pytest.fixture
def library(ladder: BitrateLadder) -> VideoLibrary:
    """A tiny 4-video library."""
    return VideoLibrary(ladder=ladder, num_videos=4, mean_duration=40.0, seed=3)


@pytest.fixture
def low_bandwidth_trace(rng: np.random.Generator) -> BandwidthTrace:
    """A 1.2 Mbps trace that forces stalls at high bitrates."""
    return StationaryTraceGenerator(1200.0, 300.0).generate(120, rng, name="low")


@pytest.fixture
def high_bandwidth_trace(rng: np.random.Generator) -> BandwidthTrace:
    """A 20 Mbps trace where stalls are impossible."""
    return StationaryTraceGenerator(20000.0, 2000.0).generate(120, rng, name="high")


@pytest.fixture
def population() -> UserPopulation:
    """A small heterogeneous user population."""
    return UserPopulation.generate(30, seed=5, bandwidth_median_kbps=4000.0)


@pytest.fixture(scope="session")
def tiny_substrate():
    """A session-scoped, deliberately small experiment substrate."""
    return build_substrate(
        SubstrateConfig(
            num_users=40,
            days=1,
            sessions_per_user_per_day=3,
            num_videos=4,
            bandwidth_median_kbps=5000.0,
            training_oversample_days=3,
            training_oversample_threshold_kbps=4000.0,
            seed=42,
        ),
        train_epochs=4,
    )
