"""Live fleet monitor: heartbeats, watchdog/stragglers, and trace neutrality.

The live layer's contract mirrors ``repro.obs``'s: it must be *provably
inert*.  Heartbeats read only wall-clock time and write only to shared
memory, so every simulated byte must be bit-exact with monitoring on or off,
inline or pooled — and the heartbeat rows themselves must look the same
regardless of execution mode.  On top of that the watchdog must actually
catch a stalled shard (straggler injection) and surface it through every
channel: the shared-memory flags, the monitor snapshot, the run report's
``live`` section, and the ``pool.straggler.*`` metrics.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro import obs
from repro.fleet import FleetConfig, FleetOrchestrator
from repro.fleet.orchestrator import HybFleetFactory
from repro.obs import monitor
from repro.obs.live import (
    STATE_RUNNING,
    HeartbeatPublisher,
    LiveRun,
    ProgressTable,
    live_run,
)
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@pytest.fixture(autouse=True)
def obs_disabled_after():
    yield
    obs.disable()


@pytest.fixture(scope="module")
def population() -> UserPopulation:
    return UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture(scope="module")
def library() -> VideoLibrary:
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def _run_fleet(population, library, *, shards, workers=0, status=None,
               profile=False, abr_factory=None, interval=0.05,
               stall_intervals=8, **overrides):
    config = FleetConfig(
        num_shards=shards,
        num_workers=workers,
        sessions_per_user=2,
        trace_length=40,
        seed=9,
        backend="vector",
        network="dual_isp",
        **overrides,
    )
    orchestrator = FleetOrchestrator(config)
    if profile:
        obs.enable()
    try:
        if status is None:
            return orchestrator.run(population, library, abr_factory=abr_factory)
        with live_run(status, run_id="test", interval=interval,
                      stall_intervals=stall_intervals):
            return orchestrator.run(population, library, abr_factory=abr_factory)
    finally:
        obs.disable()


def _session_map(result):
    return {
        (log.user_id, log.session_index): (
            log.trace.exited_early,
            tuple(log.trace.records),
        )
        for log in result.logs
    }


class TestProgressTable:
    def test_header_and_row_roundtrip(self):
        table = ProgressTable.create(4, interval=0.5, run_id="rt")
        try:
            table.write_header(state=STATE_RUNNING, day=3, num_shards=4,
                               dau=120, roster=150)
            header = table.read_header()
            assert header["run_id"] == "rt"
            assert header["state"] == STATE_RUNNING
            assert header["day"] == 3
            assert header["dau"] == 120
            assert header["pid"] == os.getpid()

            table.write_row(
                2, state=STATE_RUNNING, pid=os.getpid(), shard=2, day=3,
                shards_done=1, sessions_done=42, day_sessions=10,
                day_total=20, segments_done=400, rss_bytes=1 << 20,
                started_at=100.0, updated_at=101.0, phase="run_batch",
                span="vector.step", error="",
            )
            row = table.read_row(2)
            assert (row.shard, row.state, row.sessions_done) == (2, "running", 42)
            assert row.day_sessions == 10 and row.day_total == 20
            assert row.phase == "run_batch" and row.span == "vector.step"
            assert not row.flagged

            # ETA: 10 of 20 sessions in 1s -> 1s remaining
            assert row.eta_s(now=101.0) == pytest.approx(1.0, rel=1e-6)

            status = table.status()
            assert [s.shard for s in status.shards] == [2]
            assert status.sessions_done == 42
            payload = status.as_payload()
            assert payload["kind"] == "live-status"
            assert payload["totals"]["sessions_done"] == 42
            json.dumps(payload)  # payloads must be JSON-serialisable
        finally:
            table.close()

    def test_attach_validates_and_long_strings_truncate(self):
        table = ProgressTable.create(2, interval=0.1, run_id="x" * 200)
        try:
            assert len(table.read_header()["run_id"]) == 63  # 64-byte field
            attached = ProgressTable.attach(table.name)
            try:
                assert attached.rows == 2
                assert attached.read_header()["run_id"] == table.read_header()["run_id"]
            finally:
                attached.close()
            table.write_row(
                0, state=STATE_RUNNING, pid=1, shard=0, day=0, shards_done=0,
                sessions_done=0, day_sessions=0, day_total=-1, segments_done=0,
                rss_bytes=0, started_at=0.0, updated_at=0.0,
                phase="p" * 100, span="s" * 100, error="e" * 500,
            )
            row = table.read_row(0)
            assert row.phase == "p" * 47
            assert row.span == "s" * 63
            assert row.error == "e" * 159
        finally:
            table.close()

    def test_attach_rejects_foreign_segment(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True, size=1024)  # contract: SHM-005 exempt(test-local segment; unlinked in the finally below)
        try:
            with pytest.raises(ValueError, match="not a repro live progress table"):
                ProgressTable.attach(shm.name)
        finally:
            shm.close()
            shm.unlink()

    def test_publisher_row_lifecycle(self):
        table = ProgressTable.create(2, interval=0.01, run_id="pub")
        try:
            publisher = HeartbeatPublisher(table, interval=0.01)
            publisher.begin_shard(1, day=0)
            publisher.set_total(8)
            publisher.add_sessions(3, 30)
            time.sleep(0.02)
            publisher.maybe_publish()
            row = table.read_row(1)
            assert row.state == "running"
            assert (row.day_sessions, row.day_total, row.segments_done) == (3, 8, 30)
            publisher.finish_shard(8, 80)
            row = table.read_row(1)
            assert row.state == "done" and row.shards_done == 1
            assert (row.sessions_done, row.segments_done) == (8, 80)

            # day 2 on the same row: cumulative counters carry over
            publisher.begin_shard(1, day=1)
            publisher.finish_shard(2, 20)
            row = table.read_row(1)
            assert (row.sessions_done, row.segments_done, row.shards_done) == (10, 100, 2)

            publisher.begin_shard(99, day=0)  # out of range: silently off
            publisher.add_sessions(1)
            publisher.finish_shard()
        finally:
            table.close()


class TestWatchdog:
    def _running_row(self, table, shard, updated_at):
        table.write_row(
            shard, state=STATE_RUNNING, pid=os.getpid(), shard=shard, day=0,
            shards_done=0, sessions_done=0, day_sessions=4, day_total=10,
            segments_done=40, rss_bytes=0, started_at=updated_at - 1.0,
            updated_at=updated_at, phase="run_batch", span="", error="",
        )

    def test_flags_after_k_frozen_intervals_and_stays_sticky(self):
        run = LiveRun(rows=4, interval=0.01, stall_intervals=3,
                      run_id="wd", watchdog=False)
        try:
            self._running_row(run.table, 0, updated_at=1000.0)
            assert run.watchdog_tick() == []  # records the baseline key
            assert run.watchdog_tick() == []  # stalls=1
            assert run.watchdog_tick() == []  # stalls=2
            assert run.watchdog_tick() == [0]  # stalls=3 == stall_intervals
            assert run.watchdog_tick() == []  # already flagged, not re-reported
            row = run.table.read_row(0)
            assert row.flagged and row.stalled_intervals >= 3
            stragglers = run.stragglers()
            assert [s["shard"] for s in stragglers] == [0]
            assert stragglers[0]["phase"] == "run_batch"
            assert stragglers[0]["stalled_intervals"] >= 3
            assert run.summary()["stragglers"] == stragglers

            # progress resumes: the stall counter resets, the flag is sticky
            self._running_row(run.table, 0, updated_at=1001.0)
            run.watchdog_tick()
            row = run.table.read_row(0)
            assert row.flagged and row.stalled_intervals == 0
        finally:
            run.close()

    def test_progressing_row_never_flags(self):
        run = LiveRun(rows=2, interval=0.01, stall_intervals=2,
                      run_id="wd2", watchdog=False)
        try:
            for i in range(8):
                self._running_row(run.table, 0, updated_at=1000.0 + i)
                assert run.watchdog_tick() == []
            assert not run.table.read_row(0).flagged
        finally:
            run.close()

    def test_failed_row_error_surfaces_in_header(self):
        run = LiveRun(rows=2, interval=0.01, stall_intervals=2,
                      run_id="wd3", watchdog=False)
        try:
            publisher = HeartbeatPublisher(run.table, interval=0.01)
            publisher.begin_shard(1, day=0)
            publisher.fail_shard("ValueError: boom")
            run.watchdog_tick()
            header = run.table.read_header()
            assert header["last_error"] == "shard 1: ValueError: boom"
        finally:
            run.close()


class TestTraceNeutrality:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_fleet_bit_exact_with_live_monitoring(self, population, library, workers,
                                                  tmp_path):
        baseline = _run_fleet(population, library, shards=2, workers=workers)
        status = tmp_path / f"status_{workers}.json"
        monitored = _run_fleet(population, library, shards=2, workers=workers,
                               status=status)
        assert _session_map(baseline) == _session_map(monitored)
        assert baseline.metrics.as_dict() == monitored.metrics.as_dict()

    def test_heartbeat_rows_are_mode_independent(self, population, library, tmp_path):
        snapshots = {}
        for label, workers in [("inline", 0), ("pooled", 2)]:
            status = tmp_path / f"{label}.json"
            _run_fleet(population, library, shards=2, workers=workers, status=status)
            payload = monitor.snapshot(status)
            snapshots[label] = [
                (s["shard"], s["state"], s["day"], s["sessions_done"],
                 s["segments_done"], s["shards_done"])
                for s in payload["shards"]
            ]
        assert snapshots["inline"] == snapshots["pooled"]
        assert [s[1] for s in snapshots["inline"]] == ["done", "done"]

    def test_profiled_run_bit_exact_and_live_section(self, population, library,
                                                     tmp_path):
        plain = _run_fleet(population, library, shards=2, profile=True)
        status = tmp_path / "status.json"
        monitored = _run_fleet(population, library, shards=2, profile=True,
                               status=status)
        assert _session_map(plain) == _session_map(monitored)
        assert plain.obs_report["live"] is None
        live = monitored.obs_report["live"]
        assert live is not None
        assert live["sessions_done"] == monitored.metrics.num_sessions
        assert live["segments_done"] == monitored.metrics.num_segments
        assert live["stragglers"] == []
        # monitoring without stragglers adds no metrics: span/counter
        # structure stays identical
        assert obs.span_names(plain.obs_report["spans"]) == obs.span_names(
            monitored.obs_report["spans"]
        )
        assert plain.obs_report["metrics"]["counters"] == monitored.obs_report[
            "metrics"
        ]["counters"]


class SlowFactory(HybFleetFactory):
    """Picklable straggler injection: one user's ABR build sleeps.

    ``time.sleep`` releases the GIL, so the owner's watchdog thread keeps
    ticking while the shard that owns ``slow_user`` freezes mid-phase —
    exactly what a straggler looks like from the outside.
    """

    def __init__(self, slow_user: str, sleep_s: float) -> None:
        super().__init__()
        self.slow_user = slow_user
        self.sleep_s = sleep_s

    def __call__(self, profile, seed):
        if profile.user_id == self.slow_user:
            time.sleep(self.sleep_s)
        return super().__call__(profile, seed)


class TestStragglerInjection:
    @pytest.mark.parametrize("workers", [0, 2])
    def test_stalled_shard_is_flagged_everywhere(self, population, library,
                                                 workers, tmp_path):
        slow_user = population.profiles[0].user_id
        factory = SlowFactory(slow_user, sleep_s=1.5)
        status = tmp_path / "status.json"
        result = _run_fleet(
            population, library, shards=2, workers=workers, status=status,
            profile=True, abr_factory=factory, interval=0.05, stall_intervals=4,
        )
        slow_shards = {
            out.shard_index
            for out in result.shard_outputs
            if any(log.user_id == slow_user for log in out.sessions)
        }
        assert len(slow_shards) == 1
        (slow_shard,) = slow_shards

        # 1. the run report's live section names the straggler
        live = result.obs_report["live"]
        flagged = [item["shard"] for item in live["stragglers"]]
        assert slow_shard in flagged
        for item in live["stragglers"]:
            assert item["stalled_intervals"] >= 4

        # 2. the pool.straggler metrics fired
        counters = result.obs_report["metrics"]["counters"]
        gauges = result.obs_report["metrics"]["gauges"]
        assert counters["pool.straggler.shards"] == len(flagged)
        assert gauges["pool.straggler.stall_intervals"] >= 4

        # 3. the monitor snapshot (same payload `--json` emits) shows it
        payload = monitor.snapshot(status)
        assert payload["state"] == "done"
        assert slow_shard in payload["stragglers"]
        flagged_rows = [s for s in payload["shards"] if s["flagged"]]
        assert slow_shard in {s["shard"] for s in flagged_rows}

        # 4. the simulation itself was untouched by the stall
        baseline = _run_fleet(population, library, shards=2, workers=workers)
        assert _session_map(baseline) == _session_map(result)


class TestMonitor:
    def test_snapshot_sources_and_terminal_fallbacks(self, population, library,
                                                     tmp_path):
        status = tmp_path / "status.json"
        with live_run(status, run_id="snap", interval=0.05) as run:
            run.begin_fleet_run(run_id="snap", num_shards=2, day=0)
            payload = monitor.snapshot(status)
            assert payload["source"] == "shared-memory"
            assert payload["state"] == "running"
        # after close: shared memory is gone, the embedded final payload serves
        payload = monitor.snapshot(status)
        assert payload["source"] == "status-file"
        assert payload["state"] == "done"
        assert payload["stragglers_detail"] == []

        # a status file with neither live table nor final snapshot still renders
        doc = json.loads(status.read_text())
        del doc["final"]
        status.write_text(json.dumps(doc))
        payload = monitor.snapshot(status)
        assert payload["state"] == "done"
        assert payload["shards"] == []

        with pytest.raises(ValueError, match="not a repro live status"):
            bogus = tmp_path / "bogus.json"
            bogus.write_text("{}")
            monitor.load_status_file(bogus)

    def test_main_json_mode(self, population, library, tmp_path, capsys):
        status = tmp_path / "status.json"
        _run_fleet(population, library, shards=2, status=status)
        assert monitor.main([str(status), "--json", "--samples", "3"]) == 0
        lines = [l for l in capsys.readouterr().out.splitlines() if l.strip()]
        # terminal state: the sample loop stops after the first snapshot
        assert len(lines) == 1
        payload = json.loads(lines[0])
        assert payload["state"] == "done"
        assert payload["totals"]["sessions_done"] == len(population) * 2

    def test_render_handles_live_and_empty_payloads(self, tmp_path):
        empty = monitor.render({"run_id": "r", "state": "running"})
        assert "run r" in empty
        rich = monitor.render(
            {
                "run_id": "r",
                "state": "running",
                "day": 2,
                "days_total": 5,
                "dau": 40,
                "roster": 50,
                "totals": {"sessions_done": 7, "throughput_sps": 3.5},
                "shards": [
                    {"shard": 0, "state": "running", "day_sessions": 3,
                     "day_total": 10, "eta_s": 4.2, "rss_bytes": 5 << 20,
                     "phase": "run_batch", "span": "vector.step",
                     "flagged": True, "error": "boom"},
                ],
                "stragglers": [0],
                "last_error": "shard 0: boom",
            }
        )
        assert "day 2/5" in rich
        assert "!!" in rich
        assert "stragglers: shards [0]" in rich
        assert "last error" in rich


class TestLiveRunLifecycle:
    def test_failed_close_writes_failure_state(self, tmp_path):
        status = tmp_path / "status.json"
        with pytest.raises(RuntimeError):
            with live_run(status, run_id="boom", interval=0.05):
                raise RuntimeError("injected")
        payload = monitor.snapshot(status)
        assert payload["state"] == "failed"
        assert "injected" in (payload.get("last_error") or "")

    def test_close_is_idempotent_and_clears_globals(self, tmp_path):
        from repro.obs import live as obs_live

        with live_run(tmp_path / "s.json", run_id="x", interval=0.05) as run:
            assert obs_live.active_run() is run
        assert obs_live.active_run() is None
        run.close()  # second close: no-op

    def test_campaign_header_fields(self, tmp_path):
        status = tmp_path / "status.json"
        with live_run(status, run_id="camp", interval=0.05) as run:
            run.begin_campaign(start_day=0, days=4, run_id="campaign-1")
            run.note_day(day=2, dau=33, roster=41)
            payload = monitor.snapshot(status)
        assert payload["run_id"] == "campaign-1"
        assert payload["day"] == 2
        assert payload["days_total"] == 4
        assert payload["dau"] == 33
        assert payload["roster"] == 41
