"""repro.net test suite: allocator, topology, and the networked engines.

The headline guarantee mirrors ``tests/test_vector_backend.py``: for the same
spec batch, topology and seeds, the **networked** vector engine reproduces
the event-ordered scalar reference engine segment for segment (exact
:class:`SegmentRecord` equality), including the per-slot link-usage stream.
On top of that, congestion must be *emergent*: adding concurrency to a link
lowers per-session allocated throughput without anyone scaling a trace.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.abr.bola import BOLA
from repro.abr.hyb import HYB
from repro.abr.robust_mpc import RobustMPC
from repro.abr.throughput import ThroughputRule
from repro.analytics.logs import LinkUtilizationLog
from repro.net import (
    MIN_LINK_CAPACITY_KBPS,
    CacheModel,
    CrossTraffic,
    EdgeLink,
    LinkEvent,
    NetworkTopology,
    allocate_step,
    available_topologies,
    get_topology,
    low_lapsley,
    max_min_fair,
    path_water_fill,
    stable_fraction,
    stable_user_key,
)
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.bandwidth import MarkovTraceGenerator, StationaryTraceGenerator
from repro.sim.session import SessionConfig
from repro.sim.video import BitrateLadder, Video, VideoLibrary
from repro.users.engagement import BaselineExitModel, RuleBasedUser
from repro.users.population import UserPopulation

_ABR_FACTORIES = {
    "throughput": ThroughputRule,
    "hyb": HYB,
    "bba": BBA,
    "bola": BOLA,
    "robust_mpc": RobustMPC,
}


def _toy_topology(capacity: float = 9000.0) -> NetworkTopology:
    return NetworkTopology(
        name="toy",
        links=(
            EdgeLink("hot", capacity, user_share=0.5),
            EdgeLink("cold", capacity * 6, user_share=0.5),
        ),
    )


def _spec_batch(
    abr_name: str,
    seed: int,
    num_sessions: int = 10,
    staggered: bool = True,
    bursty: bool = False,
):
    """Heterogeneous networked batch: per-user exit models, mixed videos/starts."""
    rng = np.random.default_rng(seed)
    population = UserPopulation.generate(
        num_sessions, seed=seed + 1, bandwidth_median_kbps=2500.0
    )
    library = VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=10.0, seed=2)
    generator = (
        MarkovTraceGenerator() if bursty else StationaryTraceGenerator(1800.0, 500.0)
    )
    seeds = spawn_session_seeds(seed, num_sessions)
    # One ABR instance per spec: concurrent networked sessions sharing a
    # *stateful* instance (RobustMPC) deliberately route to the scalar cohort
    # ("one brain" semantics), which is covered by its own test below.
    return [
        SessionSpec(
            abr=_ABR_FACTORIES[abr_name](),
            video=library[i % 3],
            trace=generator.generate(50, rng),
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
            start_step=(i % 4) * 3 if staggered else 0,
        )
        for i, profile in enumerate(population)
    ]


def assert_traces_equal(scalar_traces, vector_traces):
    """Exact, field-for-field equality of two trace lists."""
    assert len(scalar_traces) == len(vector_traces)
    for scalar_trace, vector_trace in zip(scalar_traces, vector_traces):
        assert scalar_trace.user_id == vector_trace.user_id
        assert scalar_trace.exited_early == vector_trace.exited_early
        assert len(scalar_trace) == len(vector_trace)
        for scalar_record, vector_record in zip(
            scalar_trace.records, vector_trace.records
        ):
            assert scalar_record == vector_record


class TestMaxMinFair:
    def test_uncongested_demands_pass_through_exactly(self):
        demands = np.asarray([100.0, 250.0, 40.0])
        allocation = max_min_fair(demands, 1000.0)
        np.testing.assert_array_equal(allocation, demands)

    def test_congested_fills_capacity_without_exceeding_demands(self):
        rng = np.random.default_rng(0)
        demands = rng.uniform(10.0, 5000.0, size=64)
        capacity = float(demands.sum()) * 0.4
        allocation = max_min_fair(demands, capacity)
        assert np.all(allocation <= demands + 1e-12)
        assert allocation.sum() == pytest.approx(capacity, rel=1e-12)

    def test_equal_demands_split_equally(self):
        allocation = max_min_fair(np.full(8, 1000.0), 4000.0)
        np.testing.assert_allclose(allocation, np.full(8, 500.0))

    def test_small_demands_served_in_full_large_ones_clipped(self):
        demands = np.asarray([50.0, 5000.0, 5000.0, 120.0])
        allocation = max_min_fair(demands, 1170.0)
        assert allocation[0] == 50.0 and allocation[3] == 120.0
        np.testing.assert_allclose(allocation[1:3], [500.0, 500.0])

    def test_weighted_shares_are_proportional(self):
        demands = np.full(3, 10_000.0)
        weights = np.asarray([1.0, 2.0, 1.0])
        allocation = max_min_fair(demands, 4000.0, weights)
        np.testing.assert_allclose(allocation, [1000.0, 2000.0, 1000.0])

    def test_sort_order_invariance(self):
        rng = np.random.default_rng(3)
        demands = rng.uniform(10.0, 3000.0, size=32)
        capacity = 11_000.0
        allocation = max_min_fair(demands, capacity)
        order = rng.permutation(demands.size)
        shuffled = max_min_fair(demands[order], capacity)
        np.testing.assert_allclose(shuffled, allocation[order], rtol=1e-12)

    def test_validation(self):
        assert max_min_fair(np.asarray([]), 100.0).size == 0
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([10.0]), 0.0)
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([-1.0]), 10.0)
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([1.0, 2.0]), 10.0, np.asarray([1.0]))
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([1.0]), 10.0, np.asarray([0.0]))

    def test_non_finite_inputs_are_rejected(self):
        """NaN slips past sign checks (``nan < 0`` is False) — must raise."""
        with pytest.raises(ValueError, match="demands"):
            max_min_fair(np.asarray([100.0, np.nan]), 50.0)
        with pytest.raises(ValueError, match="demands"):
            max_min_fair(np.asarray([np.inf, 10.0]), 50.0)
        with pytest.raises(ValueError, match="capacity"):
            max_min_fair(np.asarray([10.0]), float("nan"))
        with pytest.raises(ValueError, match="capacity"):
            max_min_fair(np.asarray([10.0]), float("inf"))
        with pytest.raises(ValueError, match="weights"):
            max_min_fair(np.asarray([10.0, 20.0]), 5.0, np.asarray([1.0, np.nan]))
        with pytest.raises(ValueError, match="weights"):
            max_min_fair(np.asarray([10.0, 20.0]), 5.0, np.asarray([np.inf, 1.0]))

    @staticmethod
    def _assert_allocation_properties(demands, capacity, weights=None):
        """The three invariants of a weighted max-min water-fill.

        * conservation: allocations sum to ``min(capacity, total_demand)``
          (within a few ulps of the capacity scale);
        * feasibility: nobody receives more than they demanded;
        * weight monotonicity: among capacity-limited sessions, a heavier
          weight never receives less.
        """
        allocation = max_min_fair(demands, capacity, weights)
        total = float(np.asarray(demands, dtype=float).sum())
        expected = min(capacity, total)
        tolerance = max(abs(expected), 1.0) * 64 * np.finfo(float).eps
        assert abs(float(allocation.sum()) - expected) <= tolerance
        assert np.all(allocation <= np.asarray(demands) + tolerance)
        assert np.all(allocation >= -tolerance)
        if weights is not None:
            limited = allocation < np.asarray(demands) - tolerance
            if np.count_nonzero(limited) > 1:
                w = np.asarray(weights)[limited]
                a = allocation[limited]
                order = np.argsort(w, kind="stable")
                assert np.all(np.diff(a[order]) >= -tolerance)
        return allocation

    def test_capacity_exactly_on_a_fill_knee(self):
        """Capacities landing on a knee of the fill curve stay conservative."""
        rng = np.random.default_rng(7)
        for _ in range(50):
            n = int(rng.integers(2, 24))
            demands = rng.uniform(10.0, 4000.0, size=n)
            weights = rng.uniform(0.25, 4.0, size=n)
            ratio = demands / weights
            order = np.argsort(ratio, kind="stable")
            cum_demand = np.cumsum(demands[order])
            cum_weight = np.cumsum(weights[order])
            knee = int(rng.integers(0, n - 1))
            capacity = float(
                cum_demand[knee]
                + ratio[order][knee] * (cum_weight[-1] - cum_weight[knee])
            )
            if capacity <= 0 or capacity >= float(demands.sum()):
                continue
            self._assert_allocation_properties(demands, capacity, weights)

    def test_capacity_equal_to_a_knee_is_exact(self):
        """Deterministic knee==capacity case: the fill at a knee is exactly
        representable, so the allocation must hit it without drift.

        With demands [100, 200, 400] the fill level of session 0 saturates
        at capacity 100 + 100·2 = 300 (water level 100): session 0 served
        in full, the rest clipped to exactly 100 each.
        """
        demands = np.asarray([100.0, 200.0, 400.0])
        allocation = max_min_fair(demands, 300.0)
        np.testing.assert_array_equal(allocation, [100.0, 100.0, 100.0])
        assert float(allocation.sum()) == 300.0
        # one ulp above the knee starts serving session 1 beyond the level
        above = max_min_fair(demands, np.nextafter(300.0, 400.0))
        assert above[1] > 100.0 or above[2] > 100.0

    def test_near_equal_demand_weight_ratios(self):
        """Float knee ties (duplicate and 1-ulp-apart ratios) stay exact."""
        base = 1234.5678
        demands = np.full(10, base)
        demands[::2] = np.nextafter(base, base + 1.0)
        self._assert_allocation_properties(demands, float(demands.sum()) * 0.37)
        # exact duplicates with weights in lockstep ratios
        demands = np.asarray([100.0, 200.0, 100.0, 200.0, 50.0])
        weights = np.asarray([1.0, 2.0, 1.0, 2.0, 0.5])
        self._assert_allocation_properties(demands, 300.0, weights)

    def test_randomized_allocation_properties(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            n = int(rng.integers(1, 48))
            demands = rng.uniform(0.0, 5000.0, size=n)
            if float(demands.sum()) <= 0:
                continue
            weights = (
                rng.uniform(0.1, 5.0, size=n) if rng.random() < 0.5 else None
            )
            capacity = float(demands.sum()) * float(rng.uniform(0.05, 1.2))
            if capacity <= 0:
                continue
            self._assert_allocation_properties(demands, capacity, weights)

    def test_allocate_step_records_idle_links_and_masks_inactive_rows(self):
        topology = _toy_topology()
        usage = []
        allocation = allocate_step(
            topology,
            step=4,
            link_index=np.asarray([0, 0, 1]),
            demands=np.asarray([8000.0, 8000.0, 500.0]),
            active=np.asarray([True, False, False]),
            usage_out=usage,
        )
        np.testing.assert_array_equal(allocation, [8000.0, 0.0, 0.0])
        assert [sample.link_id for sample in usage] == ["hot", "cold"]
        assert usage[0].active_sessions == 1 and usage[1].active_sessions == 0
        assert usage[0].step == 4 and usage[1].allocated_kbps == 0.0


class TestTopology:
    def test_attachment_is_deterministic_and_share_weighted(self):
        topology = NetworkTopology(
            name="t",
            links=(
                EdgeLink("big", 1000.0, user_share=3.0),
                EdgeLink("small", 1000.0, user_share=1.0),
            ),
        )
        users = [f"u{i:04d}" for i in range(2000)]
        first = [topology.link_index_for(user) for user in users]
        assert first == [topology.link_index_for(user) for user in users]
        big_fraction = first.count(0) / len(first)
        assert 0.70 < big_fraction < 0.80  # 3:1 shares → ~75%

    def test_capacity_profile_events_and_cross_traffic(self):
        link = EdgeLink(
            "l",
            10_000.0,
            cross_traffic=CrossTraffic(base_kbps=500.0, peak_kbps=2000.0, period=32),
            events=(LinkEvent(10, 20, 0.5),),
        )
        assert link.capacity_at(0) < 10_000.0  # cross traffic always bites
        assert link.capacity_at(15) < link.capacity_at(5)  # outage window
        floor = EdgeLink("f", 100.0, events=(LinkEvent(0, 5, 0.0),))
        assert floor.capacity_at(2) == MIN_LINK_CAPACITY_KBPS

    def test_builtin_registry_and_resolution(self):
        names = available_topologies()
        assert {"single_bottleneck", "dual_isp", "metro_8"} <= set(names)
        topology = get_topology("dual_isp")
        assert topology.link_ids == ("fiber", "dsl")
        assert get_topology(topology) is topology
        assert get_topology(None) is None
        with pytest.raises(KeyError):
            get_topology("not_a_topology")

    def test_restrict_and_with_event(self):
        topology = get_topology("metro_8")
        sub = topology.restrict(["metro1", "metro5"])
        assert sub.link_ids == ("metro1", "metro5")
        with pytest.raises(KeyError):
            topology.restrict(["nope"])
        outage = topology.with_event("metro0", LinkEvent(5, 10, 0.5))
        assert outage.links[0].events and not topology.links[0].events
        assert outage.links[0].capacity_at(7) == topology.links[0].capacity_at(7) / 2

    def test_shard_profiles_keep_links_whole(self):
        topology = get_topology("metro_8")
        population = UserPopulation.generate(60, seed=0)
        shards = topology.shard_profiles(population.profiles, 3)
        assert sum(len(shard) for shard in shards) == 60
        link_shards = topology.shard_links(3)
        for shard, link_ids in zip(shards, link_shards):
            owned = set(link_ids)
            for profile in shard:
                assert topology.link_for(profile.user_id).link_id in owned

    def test_topology_pickles(self):
        topology = get_topology("dual_isp").with_event("dsl", LinkEvent(3, 9, 0.25))
        clone = pickle.loads(pickle.dumps(topology))
        assert clone == topology
        assert clone.capacities_at(5).tolist() == topology.capacities_at(5).tolist()

    def test_stable_helpers(self):
        assert stable_fraction("u1") == stable_fraction("u1")
        assert stable_fraction("u1") != stable_fraction("u2")
        key = stable_user_key("u1")
        assert key == stable_user_key("u1") and len(key) == 2
        assert all(0 <= word < 2**32 for word in key)


class TestNetworkedEquivalenceGate:
    @pytest.mark.parametrize("abr_name", sorted(_ABR_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 13])
    def test_vector_reproduces_scalar_reference_exactly(self, abr_name, seed):
        from repro.sim import VectorBackend

        topology = _toy_topology()
        specs = _spec_batch(abr_name, seed)
        scalar_usage, vector_usage = [], []
        scalar_traces = get_backend("scalar").run_batch(
            specs, SessionConfig(), network=topology, link_usage=scalar_usage
        )
        backend = VectorBackend()
        vector_traces = backend.run_batch(
            specs, SessionConfig(), network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar_traces, vector_traces)
        assert scalar_usage == vector_usage
        assert scalar_usage  # coupling actually ran through the allocator
        assert backend.last_fallback_sessions == 0

    def test_bursty_traces_and_shaped_topology(self):
        topology = NetworkTopology(
            name="shaped",
            links=(
                EdgeLink(
                    "hot",
                    8000.0,
                    user_share=0.5,
                    cross_traffic=CrossTraffic(300.0, 1500.0, period=24),
                ),
                EdgeLink("cold", 40_000.0, user_share=0.5, events=(LinkEvent(8, 16, 0.4),)),
            ),
        )
        specs = _spec_batch("hyb", 7, bursty=True)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, network=topology),
            get_backend("vector").run_batch(specs, network=topology),
        )

    @pytest.mark.parametrize(
        "config",
        [
            SessionConfig(max_segments=8),
            SessionConfig(initial_buffer=4.0, rtt=0.02, base_buffer_cap=9.0),
        ],
    )
    def test_session_config_variants(self, config):
        topology = _toy_topology()
        specs = _spec_batch("bba", 3, num_sessions=8)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, config, network=topology),
            get_backend("vector").run_batch(specs, config, network=topology),
        )

    def test_cohort_routing_mixes_lockstep_and_reference_sessions(self):
        """Only truly scalar specs leave the fast path of a networked batch.

        A batch mixing kernel-equipped ABRs with a kernel-less subclass must
        stay lockstep for the former, run the latter as event-ordered
        reference sessions, and still reproduce the all-scalar reference
        engine exactly — traces *and* the per-slot link-usage stream —
        because both cohorts meet at the same shared allocator call.
        """
        from repro.sim import VectorBackend

        from test_vector_backend import KernellessABR

        topology = _toy_topology()
        video = Video(num_segments=18, seed=5)
        trace = StationaryTraceGenerator(1500.0, 400.0).generate(
            30, np.random.default_rng(3)
        )
        specs = [
            SessionSpec(
                abr=KernellessABR() if i % 3 == 0 else (BOLA() if i % 3 == 1 else HYB()),
                video=video,
                trace=trace,
                exit_model=BaselineExitModel(),
                seed=i,
                user_id=f"u{i}",
                start_step=(i % 2) * 4,
            )
            for i in range(9)
        ]
        scalar_usage, vector_usage = [], []
        backend = VectorBackend()
        assert_traces_equal(
            get_backend("scalar").run_batch(
                specs, network=topology, link_usage=scalar_usage
            ),
            backend.run_batch(specs, network=topology, link_usage=vector_usage),
        )
        assert scalar_usage == vector_usage
        # exactly the kernel-less third fell back, not the whole batch
        assert backend.last_fallback_sessions == 3
        assert backend.last_batch_sessions == 9

    def test_stateful_abr_instances_survive_interleaving(self):
        """Shared stateful ABRs are reset once up front, not mid-flight.

        Concurrent sessions sharing one RobustMPC instance deterministically
        share its error history (one user, one ABR brain); a second run must
        reproduce the first exactly, and a spec with its *own* instance must
        match a solo un-networked run when the link is uncongested.
        """
        from repro.abr.robust_mpc import RobustMPC

        fat = NetworkTopology(name="fat", links=(EdgeLink("fat", 1e9),))
        video = Video(num_segments=16, seed=4)
        trace = StationaryTraceGenerator(2200.0, 300.0).generate(
            25, np.random.default_rng(5)
        )
        shared = RobustMPC()
        specs = [
            SessionSpec(
                abr=shared,
                video=video,
                trace=trace,
                exit_model=RuleBasedUser(6.0, 4),
                seed=i,
                user_id="u-shared",
                start_step=i * 2,
            )
            for i in range(3)
        ] + [
            SessionSpec(
                abr=RobustMPC(),
                video=video,
                trace=trace,
                seed=99,
                user_id="u-solo",
                start_step=1,
            )
        ]
        first = get_backend("vector").run_batch(specs, network=fat)
        second = get_backend("vector").run_batch(specs, network=fat)
        assert_traces_equal(first, second)
        solo = get_backend("scalar").run_batch(
            [
                SessionSpec(
                    abr=RobustMPC(), video=video, trace=trace, seed=99, user_id="u-solo"
                )
            ]
        )
        assert_traces_equal(solo, first[-1:])

    @pytest.mark.parametrize("mode", ["fixed", "bayesian"])
    def test_lingxi_cohorts_match_reference_with_zero_fallbacks(self, mode):
        """Networked LingXi sessions run lockstep through the controller host."""
        from repro.core.exit_predictor import ExitRatePredictor
        from repro.net import CrossTraffic
        from repro.sim import VectorBackend
        from repro.sim.video import VideoLibrary

        from test_vector_backend import make_lingxi_abr

        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        topology = NetworkTopology(
            name="tight",
            links=(
                EdgeLink(
                    "hot",
                    3500.0,
                    cross_traffic=CrossTraffic(200.0, 800.0, period=10),
                ),
            ),
        )

        def build_specs():
            library = VideoLibrary(
                num_videos=2, mean_duration=40.0, std_duration=6.0, seed=2
            )
            generator = MarkovTraceGenerator()
            rng = np.random.default_rng(7)
            seeds = spawn_session_seeds(21, 6)
            return [
                SessionSpec(
                    abr=make_lingxi_abr(predictor, 200 + i, mode),
                    video=library[i % 2],
                    trace=generator.generate(40, rng),
                    exit_model=None,
                    seed=seeds[i],
                    user_id=f"u{i}",
                    link="hot",
                    start_step=(i % 2) * 3,
                )
                for i in range(6)
            ]

        scalar_specs, vector_specs = build_specs(), build_specs()
        scalar_usage, vector_usage = [], []
        scalar_traces = get_backend("scalar").run_batch(
            scalar_specs, network=topology, link_usage=scalar_usage
        )
        backend = VectorBackend()
        vector_traces = backend.run_batch(
            vector_specs, network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar_traces, vector_traces)
        assert scalar_usage == vector_usage
        assert backend.last_fallback_sessions == 0
        for scalar_spec, vector_spec in zip(scalar_specs, vector_specs):
            assert (
                scalar_spec.abr.controller.history
                == vector_spec.abr.controller.history
            )
        # congestion actually triggered per-user optimization
        assert sum(
            len(spec.abr.controller.history) for spec in scalar_specs
        ) > 0

    def test_uncongested_networked_equals_unnetworked(self):
        """With capacity to spare, the allocator must be a perfect no-op."""
        fat = NetworkTopology(name="fat", links=(EdgeLink("fat", 1e9),))
        specs = _spec_batch("hyb", 5, staggered=True)
        plain = [
            SessionSpec(
                abr=spec.abr,
                video=spec.video,
                trace=spec.trace,
                exit_model=spec.exit_model,
                seed=spec.seed,
                user_id=spec.user_id,
            )
            for spec in specs
        ]
        unnetworked = get_backend("scalar").run_batch(plain)
        for backend in ("scalar", "vector"):
            assert_traces_equal(
                unnetworked, get_backend(backend).run_batch(specs, network=fat)
            )

    def test_explicit_link_and_weight_fields(self):
        topology = _toy_topology()
        video = Video(num_segments=12, seed=1)
        trace = StationaryTraceGenerator(6000.0, 100.0).generate(
            20, np.random.default_rng(0)
        )
        specs = [
            SessionSpec(
                abr=HYB(),
                video=video,
                trace=trace,
                seed=i,
                user_id=f"u{i}",
                link="hot",
                weight=2.0 if i == 0 else 1.0,
            )
            for i in range(6)
        ]
        usage = []
        traces = get_backend("vector").run_batch(specs, network=topology, link_usage=usage)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, network=topology), traces
        )
        # all demand landed on the pinned link, and the weighted session got
        # a strictly larger share while the link was congested
        assert all(s.active_sessions == 0 for s in usage if s.link_id == "cold")
        heavy = traces[0].records[2].bandwidth_kbps
        light = traces[1].records[2].bandwidth_kbps
        assert heavy > light

    def test_spec_validation(self):
        video = Video(num_segments=4, seed=0)
        trace = StationaryTraceGenerator(2000.0).generate(4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            SessionSpec(abr=HYB(), video=video, trace=trace, start_step=-1)
        with pytest.raises(ValueError):
            SessionSpec(abr=HYB(), video=video, trace=trace, weight=0.0)
        topology = _toy_topology()
        spec = SessionSpec(
            abr=HYB(), video=video, trace=trace, seed=0, link="missing"
        )
        with pytest.raises(KeyError):
            get_backend("vector").run_batch([spec], network=topology)


class TestEmergentCongestion:
    @staticmethod
    def _mean_allocated(num_sessions: int) -> tuple[float, LinkUtilizationLog]:
        topology = NetworkTopology(name="one", links=(EdgeLink("hot", 20_000.0),))
        video = Video(num_segments=15, seed=2)
        trace = StationaryTraceGenerator(4000.0, 200.0).generate(
            20, np.random.default_rng(1)
        )
        specs = [
            SessionSpec(
                abr=HYB(), video=video, trace=trace, seed=i, user_id=f"u{i}"
            )
            for i in range(num_sessions)
        ]
        usage = []
        get_backend("vector").run_batch(specs, network=topology, link_usage=usage)
        log = LinkUtilizationLog(usage)
        return log.mean_allocated_per_session_kbps("hot"), log

    def test_per_session_throughput_drops_as_concurrency_rises(self):
        lone, log_lone = self._mean_allocated(2)
        mid, _ = self._mean_allocated(10)
        crowd, log_crowd = self._mean_allocated(40)
        assert lone > mid > crowd
        assert log_lone.congested_slot_fraction("hot") == 0.0
        assert log_crowd.congested_slot_fraction("hot") > 0.5
        assert log_crowd.mean_utilization("hot") > 0.95

    def test_outage_window_squeezes_allocations(self):
        topology = NetworkTopology(
            name="o",
            links=(EdgeLink("l", 30_000.0, events=(LinkEvent(5, 10, 0.25),)),),
        )
        video = Video(num_segments=15, seed=3)
        trace = StationaryTraceGenerator(3000.0, 100.0).generate(
            20, np.random.default_rng(2)
        )
        specs = [
            SessionSpec(abr=HYB(), video=video, trace=trace, seed=i, user_id=f"u{i}")
            for i in range(12)
        ]
        usage = []
        get_backend("vector").run_batch(specs, network=topology, link_usage=usage)
        log = LinkUtilizationLog(usage)
        steps, utilization = log.utilization_timeseries("l")
        inside = utilization[(steps >= 5) & (steps < 10)]
        # during the outage the (quartered) link saturates
        assert inside.min() > 0.95
        # per-session allocation inside the window is below the access demand
        congested = [
            s for s in log.samples if 5 <= s.step < 10 and s.active_sessions > 0
        ]
        assert all(s.demand_kbps > s.allocated_kbps for s in congested)


class TestLinkUtilizationLog:
    def test_aggregations_and_validation(self):
        _, log = TestEmergentCongestion._mean_allocated(6)
        assert log.links() == ["hot"]
        assert log.peak_active_sessions() == 6
        steps, concurrency = log.concurrency_timeseries("hot")
        assert list(steps) == sorted(steps.tolist())
        assert concurrency.max() == 6
        with pytest.raises(KeyError):
            log.mean_utilization("nope")
        with pytest.raises(ValueError):
            LinkUtilizationLog([])


def _tiered_topology(
    hit_ratio: float | None = 0.5, allocator: str = "max_min_fair"
) -> NetworkTopology:
    """Toy 3-tier CDN: two edges share one peering link and one origin."""
    return NetworkTopology(
        name="toy_3tier",
        cache=None if hit_ratio is None else CacheModel(hit_ratio=hit_ratio),
        allocator=allocator,
        links=(
            EdgeLink("edge_a", 9_000.0, user_share=0.5, uplinks=("peer", "origin")),
            EdgeLink("edge_b", 7_000.0, user_share=0.5, uplinks=("peer", "origin")),
            EdgeLink("peer", 10_000.0, tier="peering"),
            EdgeLink("origin", 6_000.0, tier="origin"),
        ),
    )


class TestCrossTrafficScaleValidation:
    def test_scaled_rejects_non_finite_and_negative_factors(self):
        traffic = CrossTraffic(base_kbps=100.0, peak_kbps=300.0)
        assert traffic.scaled(2.0).base_kbps == 200.0
        for factor in (float("nan"), float("inf"), -0.5):
            with pytest.raises(ValueError, match="finite and non-negative"):
                traffic.scaled(factor)

    def test_topology_scale_validates_before_touching_links(self):
        # even a topology with *no* cross traffic must reject a bad factor
        # up front, not links-deep into a run
        bare = _toy_topology()
        for factor in (float("nan"), float("inf"), -1.0):
            with pytest.raises(ValueError, match="finite and non-negative"):
                bare.with_cross_traffic_scale(factor)
        shaped = bare.with_cross_traffic(CrossTraffic(base_kbps=50.0))
        with pytest.raises(ValueError, match="finite and non-negative"):
            shaped.with_cross_traffic_scale(float("nan"))
        assert shaped.with_cross_traffic_scale(0.0).links[0].cross_traffic.base_kbps == 0.0


class TestCacheModel:
    def test_validation(self):
        CacheModel(0.0)
        CacheModel(1.0)
        for ratio in (-0.1, 1.5, float("nan")):
            with pytest.raises(ValueError):
                CacheModel(ratio)

    def test_miss_draws_are_deterministic_and_identity_keyed(self):
        cache = CacheModel(hit_ratio=0.6)
        profile = cache.miss_profile("u42", 64)
        np.testing.assert_array_equal(profile, cache.miss_profile("u42", 64))
        assert [cache.is_miss("u42", k) for k in range(64)] == profile.tolist()
        # a longer profile is a prefix-extension (draws keyed by (user, k))
        np.testing.assert_array_equal(cache.miss_profile("u42", 96)[:64], profile)
        # different users draw different profiles (overwhelmingly)
        other = cache.miss_profile("u43", 64)
        assert profile.tolist() != other.tolist()

    def test_extreme_ratios(self):
        assert not CacheModel(1.0).miss_profile("u", 32).any()
        assert CacheModel(0.0).miss_profile("u", 32).all()

    def test_miss_rate_tracks_hit_ratio(self):
        cache = CacheModel(hit_ratio=0.7)
        draws = np.concatenate(
            [cache.miss_profile(f"user{i}", 50) for i in range(40)]
        )
        assert draws.mean() == pytest.approx(0.3, abs=0.05)


class TestMultiTierTopology:
    def test_uplink_validation(self):
        with pytest.raises(ValueError, match="unknown uplinks"):
            NetworkTopology(links=(EdgeLink("e", 1000.0, uplinks=("ghost",)),))
        with pytest.raises(ValueError, match="only edge-tier"):
            EdgeLink("p", 1000.0, tier="peering", uplinks=("x",))
        with pytest.raises(ValueError, match="own uplink"):
            EdgeLink("e", 1000.0, uplinks=("e",))
        with pytest.raises(ValueError, match="duplicate uplinks"):
            EdgeLink("e", 1000.0, uplinks=("p", "p"))
        with pytest.raises(ValueError, match="at least one edge-tier"):
            NetworkTopology(links=(EdgeLink("p", 1000.0, tier="peering"),))

    def test_flat_topologies_are_unchanged(self):
        topology = _toy_topology()
        assert not topology.has_tiers
        assert topology.edge_indices == (0, 1)
        np.testing.assert_array_equal(topology.path_matrix, np.eye(2, dtype=bool))
        # component sharding degenerates to the historical round-robin
        for shards in (1, 2, 3):
            assert topology.shard_links(shards) == [
                list(topology.link_ids[i::shards]) for i in range(shards)
            ]

    def test_paths_and_edge_only_attachment(self):
        topology = _tiered_topology()
        assert topology.has_tiers
        assert topology.path_for("edge_a") == ("edge_a", "peer", "origin")
        assert topology.path_for("peer") == ("peer",)
        # users only ever land on edge links, share-weighted among them
        for i in range(200):
            index = topology.link_index_for(f"user{i}")
            assert topology.links[index].tier == "edge"

    def test_components_coshard_whole_paths(self):
        topology = _tiered_topology()
        for shards in (1, 2, 4):
            assignment = topology.shard_links(shards)
            owner = [ids for ids in assignment if ids]
            assert len(owner) == 1  # one connected component
            assert sorted(owner[0]) == sorted(topology.link_ids)
        # two independent trees split across shards
        forest = NetworkTopology(
            links=(
                EdgeLink("e1", 1000.0, uplinks=("o1",)),
                EdgeLink("e2", 1000.0, uplinks=("o2",)),
                EdgeLink("o1", 1000.0, tier="origin"),
                EdgeLink("o2", 1000.0, tier="origin"),
            )
        )
        split = forest.shard_links(2)
        assert sorted(split[0]) == ["e1", "o1"]
        assert sorted(split[1]) == ["e2", "o2"]
        # restrict() refuses to sever an edge link from its uplinks
        with pytest.raises(ValueError, match="unknown uplinks"):
            forest.restrict(["e1"])

    def test_cdn_3tier_is_registered(self):
        assert "cdn_3tier" in available_topologies()
        topology = get_topology("cdn_3tier")
        assert topology.has_tiers
        assert topology.cache is not None
        tiers = {link.tier for link in topology.links}
        assert tiers == {"edge", "peering", "origin"}
        # pickles cleanly for shard workers, including cached properties
        clone = pickle.loads(pickle.dumps(topology))
        assert clone.path_for("edge_a") == topology.path_for("edge_a")

    def test_allocator_field_is_validated(self):
        with pytest.raises(ValueError, match="unknown allocator"):
            NetworkTopology(
                links=(EdgeLink("e", 1000.0),), allocator="round_robin"
            )


class TestPathAwareAllocators:
    def _routes(self, topology, link_index, active, full_path=None):
        from repro.net.allocator import _session_routes

        return _session_routes(
            topology, np.asarray(link_index), np.asarray(active), full_path
        )

    def test_single_link_paths_match_classic_water_fill(self):
        rng = np.random.default_rng(5)
        demands = rng.uniform(100.0, 4000.0, size=16)
        weights = rng.uniform(0.5, 2.0, size=16)
        capacities = np.asarray([8000.0])
        routes = np.ones((16, 1), dtype=bool)
        np.testing.assert_array_equal(
            path_water_fill(demands, capacities, routes, weights),
            max_min_fair(demands, 8000.0, weights),
        )

    def test_rate_bounded_by_every_path_link(self):
        # one session through a narrow origin: its rate is the min of the
        # links' shares even though the edge has plenty of room
        demands = np.asarray([5000.0, 5000.0])
        weights = np.ones(2)
        capacities = np.asarray([9000.0, 3000.0])  # edge, origin
        routes = np.asarray([[True, True], [True, False]])
        allocation = path_water_fill(demands, capacities, routes, weights)
        assert allocation[0] <= 3000.0 + 1e-9  # origin-bound
        # the freed edge capacity goes to the edge-only session
        assert allocation[1] > allocation[0]
        assert allocation.sum() <= 9000.0 + 1e-9

    def test_feasibility_on_random_tiered_instances(self):
        rng = np.random.default_rng(9)
        for _ in range(50):
            sessions = int(rng.integers(1, 40))
            links = int(rng.integers(1, 6))
            demands = rng.uniform(0.0, 5000.0, size=sessions)
            weights = rng.uniform(0.2, 3.0, size=sessions)
            capacities = rng.uniform(500.0, 20_000.0, size=links)
            routes = rng.random((sessions, links)) < 0.5
            for allocation in (
                path_water_fill(demands, capacities, routes, weights),
                low_lapsley(demands, capacities, routes, weights),
            ):
                assert np.all(allocation <= demands + 1e-9)
                assert np.all(allocation >= -1e-12)
                arrivals = routes.T.astype(float) @ allocation
                assert np.all(arrivals <= capacities * (1 + 1e-9))
                # routeless sessions receive nothing
                assert np.all(allocation[~routes.any(axis=1)] == 0.0)

    def test_low_lapsley_is_deterministic_and_fills_congested_links(self):
        demands = np.full(8, 4000.0)
        weights = np.ones(8)
        capacities = np.asarray([20_000.0, 6_000.0])
        routes = np.zeros((8, 2), dtype=bool)
        routes[:, 0] = True
        routes[::2, 1] = True
        first = low_lapsley(demands, capacities, routes, weights)
        second = low_lapsley(demands, capacities, routes, weights)
        np.testing.assert_array_equal(first, second)
        arrivals = routes.T.astype(float) @ first
        # the narrow link is the bottleneck and ends essentially full
        assert arrivals[1] == pytest.approx(6_000.0, rel=0.01)

    def test_allocate_step_cache_hits_stay_on_the_edge(self):
        topology = _tiered_topology(hit_ratio=None)
        link_index = np.asarray([0, 0, 1])
        demands = np.asarray([2000.0, 2000.0, 2000.0])
        active = np.ones(3, dtype=bool)
        usage = []
        # all hits: upstream tiers see zero sessions
        allocate_step(
            topology, 0, link_index, demands, active,
            usage_out=usage, full_path=np.zeros(3, dtype=bool),
        )
        by_link = {s.link_id: s for s in usage}
        assert by_link["peer"].active_sessions == 0
        assert by_link["origin"].active_sessions == 0
        assert by_link["edge_a"].active_sessions == 2
        assert by_link["peer"].tier == "peering"
        # all misses: every active session traverses its full path
        usage = []
        allocate_step(
            topology, 0, link_index, demands, active,
            usage_out=usage, full_path=np.ones(3, dtype=bool),
        )
        by_link = {s.link_id: s for s in usage}
        assert by_link["peer"].active_sessions == 3
        assert by_link["origin"].active_sessions == 3
        # the shared origin (6 Mbps) caps total allocated throughput
        assert sum(s.allocated_kbps for s in usage if s.tier == "edge") <= 6000.0 + 1e-9

    def test_allocate_step_rejects_non_finite_batch_inputs(self):
        topology = _tiered_topology(hit_ratio=None)
        link_index = np.asarray([0])
        active = np.ones(1, dtype=bool)
        with pytest.raises(ValueError, match="demands"):
            allocate_step(topology, 0, link_index, np.asarray([np.nan]), active)
        with pytest.raises(ValueError, match="weights"):
            allocate_step(
                topology, 0, link_index, np.asarray([100.0]), active,
                weights=np.asarray([np.nan]),
            )


class TestMultiTierEquivalenceGate:
    """Scalar == vector on tiered topologies, across the cache hit/miss mix."""

    @pytest.mark.parametrize("abr_name", ["throughput", "hyb", "bba", "bola"])
    @pytest.mark.parametrize("hit_ratio", [None, 0.0, 0.5, 1.0])
    def test_traces_and_usage_identical(self, abr_name, hit_ratio):
        specs = _spec_batch(abr_name, seed=31, num_sessions=12)
        topology = _tiered_topology(hit_ratio=hit_ratio)
        scalar_usage, vector_usage = [], []
        scalar = get_backend("scalar").run_batch(
            specs, SessionConfig(), network=topology, link_usage=scalar_usage
        )
        vector = get_backend("vector").run_batch(
            specs, SessionConfig(), network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar, vector)
        assert scalar_usage == vector_usage
        tiers = {s.tier for s in scalar_usage}
        assert tiers == {"edge", "peering", "origin"}

    @pytest.mark.parametrize("allocator", ["max_min_fair", "low_lapsley"])
    def test_both_allocators_pass_the_gate(self, allocator):
        specs = _spec_batch("bola", seed=37, num_sessions=14, bursty=True)
        topology = _tiered_topology(hit_ratio=0.4, allocator=allocator)
        scalar_usage, vector_usage = [], []
        scalar = get_backend("scalar").run_batch(
            specs, SessionConfig(), network=topology, link_usage=scalar_usage
        )
        vector = get_backend("vector").run_batch(
            specs, SessionConfig(), network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar, vector)
        assert scalar_usage == vector_usage

    def test_low_lapsley_selectable_on_flat_topologies(self):
        specs = _spec_batch("hyb", seed=41, num_sessions=10)
        topology = NetworkTopology(
            name="flat_ll",
            allocator="low_lapsley",
            links=_toy_topology().links,
        )
        scalar_usage, vector_usage = [], []
        scalar = get_backend("scalar").run_batch(
            specs, SessionConfig(), network=topology, link_usage=scalar_usage
        )
        vector = get_backend("vector").run_batch(
            specs, SessionConfig(), network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar, vector)
        assert scalar_usage == vector_usage

    def test_cold_cache_shifts_load_upstream(self):
        """The cache model is load-bearing: colder caches raise origin load."""
        specs = _spec_batch("throughput", seed=43, num_sessions=16, staggered=False)
        origin_demand = {}
        for ratio in (0.9, 0.1):
            usage = []
            get_backend("vector").run_batch(
                specs,
                SessionConfig(),
                network=_tiered_topology(hit_ratio=ratio),
                link_usage=usage,
            )
            origin_demand[ratio] = sum(
                s.demand_kbps for s in usage if s.link_id == "origin"
            )
        assert origin_demand[0.1] > origin_demand[0.9]
