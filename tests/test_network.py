"""repro.net test suite: allocator, topology, and the networked engines.

The headline guarantee mirrors ``tests/test_vector_backend.py``: for the same
spec batch, topology and seeds, the **networked** vector engine reproduces
the event-ordered scalar reference engine segment for segment (exact
:class:`SegmentRecord` equality), including the per-slot link-usage stream.
On top of that, congestion must be *emergent*: adding concurrency to a link
lowers per-session allocated throughput without anyone scaling a trace.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.abr.bola import BOLA
from repro.abr.hyb import HYB
from repro.abr.robust_mpc import RobustMPC
from repro.abr.throughput import ThroughputRule
from repro.analytics.logs import LinkUtilizationLog
from repro.net import (
    MIN_LINK_CAPACITY_KBPS,
    CrossTraffic,
    EdgeLink,
    LinkEvent,
    NetworkTopology,
    allocate_step,
    available_topologies,
    get_topology,
    max_min_fair,
    stable_fraction,
    stable_user_key,
)
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.bandwidth import MarkovTraceGenerator, StationaryTraceGenerator
from repro.sim.session import SessionConfig
from repro.sim.video import BitrateLadder, Video, VideoLibrary
from repro.users.engagement import BaselineExitModel, RuleBasedUser
from repro.users.population import UserPopulation

_ABR_FACTORIES = {
    "throughput": ThroughputRule,
    "hyb": HYB,
    "bba": BBA,
    "bola": BOLA,
    "robust_mpc": RobustMPC,
}


def _toy_topology(capacity: float = 9000.0) -> NetworkTopology:
    return NetworkTopology(
        name="toy",
        links=(
            EdgeLink("hot", capacity, user_share=0.5),
            EdgeLink("cold", capacity * 6, user_share=0.5),
        ),
    )


def _spec_batch(
    abr_name: str,
    seed: int,
    num_sessions: int = 10,
    staggered: bool = True,
    bursty: bool = False,
):
    """Heterogeneous networked batch: per-user exit models, mixed videos/starts."""
    rng = np.random.default_rng(seed)
    population = UserPopulation.generate(
        num_sessions, seed=seed + 1, bandwidth_median_kbps=2500.0
    )
    library = VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=10.0, seed=2)
    generator = (
        MarkovTraceGenerator() if bursty else StationaryTraceGenerator(1800.0, 500.0)
    )
    seeds = spawn_session_seeds(seed, num_sessions)
    # One ABR instance per spec: concurrent networked sessions sharing a
    # *stateful* instance (RobustMPC) deliberately route to the scalar cohort
    # ("one brain" semantics), which is covered by its own test below.
    return [
        SessionSpec(
            abr=_ABR_FACTORIES[abr_name](),
            video=library[i % 3],
            trace=generator.generate(50, rng),
            exit_model=profile.exit_model(),
            seed=seeds[i],
            user_id=profile.user_id,
            start_step=(i % 4) * 3 if staggered else 0,
        )
        for i, profile in enumerate(population)
    ]


def assert_traces_equal(scalar_traces, vector_traces):
    """Exact, field-for-field equality of two trace lists."""
    assert len(scalar_traces) == len(vector_traces)
    for scalar_trace, vector_trace in zip(scalar_traces, vector_traces):
        assert scalar_trace.user_id == vector_trace.user_id
        assert scalar_trace.exited_early == vector_trace.exited_early
        assert len(scalar_trace) == len(vector_trace)
        for scalar_record, vector_record in zip(
            scalar_trace.records, vector_trace.records
        ):
            assert scalar_record == vector_record


class TestMaxMinFair:
    def test_uncongested_demands_pass_through_exactly(self):
        demands = np.asarray([100.0, 250.0, 40.0])
        allocation = max_min_fair(demands, 1000.0)
        np.testing.assert_array_equal(allocation, demands)

    def test_congested_fills_capacity_without_exceeding_demands(self):
        rng = np.random.default_rng(0)
        demands = rng.uniform(10.0, 5000.0, size=64)
        capacity = float(demands.sum()) * 0.4
        allocation = max_min_fair(demands, capacity)
        assert np.all(allocation <= demands + 1e-12)
        assert allocation.sum() == pytest.approx(capacity, rel=1e-12)

    def test_equal_demands_split_equally(self):
        allocation = max_min_fair(np.full(8, 1000.0), 4000.0)
        np.testing.assert_allclose(allocation, np.full(8, 500.0))

    def test_small_demands_served_in_full_large_ones_clipped(self):
        demands = np.asarray([50.0, 5000.0, 5000.0, 120.0])
        allocation = max_min_fair(demands, 1170.0)
        assert allocation[0] == 50.0 and allocation[3] == 120.0
        np.testing.assert_allclose(allocation[1:3], [500.0, 500.0])

    def test_weighted_shares_are_proportional(self):
        demands = np.full(3, 10_000.0)
        weights = np.asarray([1.0, 2.0, 1.0])
        allocation = max_min_fair(demands, 4000.0, weights)
        np.testing.assert_allclose(allocation, [1000.0, 2000.0, 1000.0])

    def test_sort_order_invariance(self):
        rng = np.random.default_rng(3)
        demands = rng.uniform(10.0, 3000.0, size=32)
        capacity = 11_000.0
        allocation = max_min_fair(demands, capacity)
        order = rng.permutation(demands.size)
        shuffled = max_min_fair(demands[order], capacity)
        np.testing.assert_allclose(shuffled, allocation[order], rtol=1e-12)

    def test_validation(self):
        assert max_min_fair(np.asarray([]), 100.0).size == 0
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([10.0]), 0.0)
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([-1.0]), 10.0)
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([1.0, 2.0]), 10.0, np.asarray([1.0]))
        with pytest.raises(ValueError):
            max_min_fair(np.asarray([1.0]), 10.0, np.asarray([0.0]))

    @staticmethod
    def _assert_allocation_properties(demands, capacity, weights=None):
        """The three invariants of a weighted max-min water-fill.

        * conservation: allocations sum to ``min(capacity, total_demand)``
          (within a few ulps of the capacity scale);
        * feasibility: nobody receives more than they demanded;
        * weight monotonicity: among capacity-limited sessions, a heavier
          weight never receives less.
        """
        allocation = max_min_fair(demands, capacity, weights)
        total = float(np.asarray(demands, dtype=float).sum())
        expected = min(capacity, total)
        tolerance = max(abs(expected), 1.0) * 64 * np.finfo(float).eps
        assert abs(float(allocation.sum()) - expected) <= tolerance
        assert np.all(allocation <= np.asarray(demands) + tolerance)
        assert np.all(allocation >= -tolerance)
        if weights is not None:
            limited = allocation < np.asarray(demands) - tolerance
            if np.count_nonzero(limited) > 1:
                w = np.asarray(weights)[limited]
                a = allocation[limited]
                order = np.argsort(w, kind="stable")
                assert np.all(np.diff(a[order]) >= -tolerance)
        return allocation

    def test_capacity_exactly_on_a_fill_knee(self):
        """Capacities landing on a knee of the fill curve stay conservative."""
        rng = np.random.default_rng(7)
        for _ in range(50):
            n = int(rng.integers(2, 24))
            demands = rng.uniform(10.0, 4000.0, size=n)
            weights = rng.uniform(0.25, 4.0, size=n)
            ratio = demands / weights
            order = np.argsort(ratio, kind="stable")
            cum_demand = np.cumsum(demands[order])
            cum_weight = np.cumsum(weights[order])
            knee = int(rng.integers(0, n - 1))
            capacity = float(
                cum_demand[knee]
                + ratio[order][knee] * (cum_weight[-1] - cum_weight[knee])
            )
            if capacity <= 0 or capacity >= float(demands.sum()):
                continue
            self._assert_allocation_properties(demands, capacity, weights)

    def test_near_equal_demand_weight_ratios(self):
        """Float knee ties (duplicate and 1-ulp-apart ratios) stay exact."""
        base = 1234.5678
        demands = np.full(10, base)
        demands[::2] = np.nextafter(base, base + 1.0)
        self._assert_allocation_properties(demands, float(demands.sum()) * 0.37)
        # exact duplicates with weights in lockstep ratios
        demands = np.asarray([100.0, 200.0, 100.0, 200.0, 50.0])
        weights = np.asarray([1.0, 2.0, 1.0, 2.0, 0.5])
        self._assert_allocation_properties(demands, 300.0, weights)

    def test_randomized_allocation_properties(self):
        rng = np.random.default_rng(11)
        for _ in range(200):
            n = int(rng.integers(1, 48))
            demands = rng.uniform(0.0, 5000.0, size=n)
            if float(demands.sum()) <= 0:
                continue
            weights = (
                rng.uniform(0.1, 5.0, size=n) if rng.random() < 0.5 else None
            )
            capacity = float(demands.sum()) * float(rng.uniform(0.05, 1.2))
            if capacity <= 0:
                continue
            self._assert_allocation_properties(demands, capacity, weights)

    def test_allocate_step_records_idle_links_and_masks_inactive_rows(self):
        topology = _toy_topology()
        usage = []
        allocation = allocate_step(
            topology,
            step=4,
            link_index=np.asarray([0, 0, 1]),
            demands=np.asarray([8000.0, 8000.0, 500.0]),
            active=np.asarray([True, False, False]),
            usage_out=usage,
        )
        np.testing.assert_array_equal(allocation, [8000.0, 0.0, 0.0])
        assert [sample.link_id for sample in usage] == ["hot", "cold"]
        assert usage[0].active_sessions == 1 and usage[1].active_sessions == 0
        assert usage[0].step == 4 and usage[1].allocated_kbps == 0.0


class TestTopology:
    def test_attachment_is_deterministic_and_share_weighted(self):
        topology = NetworkTopology(
            name="t",
            links=(
                EdgeLink("big", 1000.0, user_share=3.0),
                EdgeLink("small", 1000.0, user_share=1.0),
            ),
        )
        users = [f"u{i:04d}" for i in range(2000)]
        first = [topology.link_index_for(user) for user in users]
        assert first == [topology.link_index_for(user) for user in users]
        big_fraction = first.count(0) / len(first)
        assert 0.70 < big_fraction < 0.80  # 3:1 shares → ~75%

    def test_capacity_profile_events_and_cross_traffic(self):
        link = EdgeLink(
            "l",
            10_000.0,
            cross_traffic=CrossTraffic(base_kbps=500.0, peak_kbps=2000.0, period=32),
            events=(LinkEvent(10, 20, 0.5),),
        )
        assert link.capacity_at(0) < 10_000.0  # cross traffic always bites
        assert link.capacity_at(15) < link.capacity_at(5)  # outage window
        floor = EdgeLink("f", 100.0, events=(LinkEvent(0, 5, 0.0),))
        assert floor.capacity_at(2) == MIN_LINK_CAPACITY_KBPS

    def test_builtin_registry_and_resolution(self):
        names = available_topologies()
        assert {"single_bottleneck", "dual_isp", "metro_8"} <= set(names)
        topology = get_topology("dual_isp")
        assert topology.link_ids == ("fiber", "dsl")
        assert get_topology(topology) is topology
        assert get_topology(None) is None
        with pytest.raises(KeyError):
            get_topology("not_a_topology")

    def test_restrict_and_with_event(self):
        topology = get_topology("metro_8")
        sub = topology.restrict(["metro1", "metro5"])
        assert sub.link_ids == ("metro1", "metro5")
        with pytest.raises(KeyError):
            topology.restrict(["nope"])
        outage = topology.with_event("metro0", LinkEvent(5, 10, 0.5))
        assert outage.links[0].events and not topology.links[0].events
        assert outage.links[0].capacity_at(7) == topology.links[0].capacity_at(7) / 2

    def test_shard_profiles_keep_links_whole(self):
        topology = get_topology("metro_8")
        population = UserPopulation.generate(60, seed=0)
        shards = topology.shard_profiles(population.profiles, 3)
        assert sum(len(shard) for shard in shards) == 60
        link_shards = topology.shard_links(3)
        for shard, link_ids in zip(shards, link_shards):
            owned = set(link_ids)
            for profile in shard:
                assert topology.link_for(profile.user_id).link_id in owned

    def test_topology_pickles(self):
        topology = get_topology("dual_isp").with_event("dsl", LinkEvent(3, 9, 0.25))
        clone = pickle.loads(pickle.dumps(topology))
        assert clone == topology
        assert clone.capacities_at(5).tolist() == topology.capacities_at(5).tolist()

    def test_stable_helpers(self):
        assert stable_fraction("u1") == stable_fraction("u1")
        assert stable_fraction("u1") != stable_fraction("u2")
        key = stable_user_key("u1")
        assert key == stable_user_key("u1") and len(key) == 2
        assert all(0 <= word < 2**32 for word in key)


class TestNetworkedEquivalenceGate:
    @pytest.mark.parametrize("abr_name", sorted(_ABR_FACTORIES))
    @pytest.mark.parametrize("seed", [0, 13])
    def test_vector_reproduces_scalar_reference_exactly(self, abr_name, seed):
        from repro.sim import VectorBackend

        topology = _toy_topology()
        specs = _spec_batch(abr_name, seed)
        scalar_usage, vector_usage = [], []
        scalar_traces = get_backend("scalar").run_batch(
            specs, SessionConfig(), network=topology, link_usage=scalar_usage
        )
        backend = VectorBackend()
        vector_traces = backend.run_batch(
            specs, SessionConfig(), network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar_traces, vector_traces)
        assert scalar_usage == vector_usage
        assert scalar_usage  # coupling actually ran through the allocator
        assert backend.last_fallback_sessions == 0

    def test_bursty_traces_and_shaped_topology(self):
        topology = NetworkTopology(
            name="shaped",
            links=(
                EdgeLink(
                    "hot",
                    8000.0,
                    user_share=0.5,
                    cross_traffic=CrossTraffic(300.0, 1500.0, period=24),
                ),
                EdgeLink("cold", 40_000.0, user_share=0.5, events=(LinkEvent(8, 16, 0.4),)),
            ),
        )
        specs = _spec_batch("hyb", 7, bursty=True)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, network=topology),
            get_backend("vector").run_batch(specs, network=topology),
        )

    @pytest.mark.parametrize(
        "config",
        [
            SessionConfig(max_segments=8),
            SessionConfig(initial_buffer=4.0, rtt=0.02, base_buffer_cap=9.0),
        ],
    )
    def test_session_config_variants(self, config):
        topology = _toy_topology()
        specs = _spec_batch("bba", 3, num_sessions=8)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, config, network=topology),
            get_backend("vector").run_batch(specs, config, network=topology),
        )

    def test_cohort_routing_mixes_lockstep_and_reference_sessions(self):
        """Only truly scalar specs leave the fast path of a networked batch.

        A batch mixing kernel-equipped ABRs with a kernel-less subclass must
        stay lockstep for the former, run the latter as event-ordered
        reference sessions, and still reproduce the all-scalar reference
        engine exactly — traces *and* the per-slot link-usage stream —
        because both cohorts meet at the same shared allocator call.
        """
        from repro.sim import VectorBackend

        from test_vector_backend import KernellessABR

        topology = _toy_topology()
        video = Video(num_segments=18, seed=5)
        trace = StationaryTraceGenerator(1500.0, 400.0).generate(
            30, np.random.default_rng(3)
        )
        specs = [
            SessionSpec(
                abr=KernellessABR() if i % 3 == 0 else (BOLA() if i % 3 == 1 else HYB()),
                video=video,
                trace=trace,
                exit_model=BaselineExitModel(),
                seed=i,
                user_id=f"u{i}",
                start_step=(i % 2) * 4,
            )
            for i in range(9)
        ]
        scalar_usage, vector_usage = [], []
        backend = VectorBackend()
        assert_traces_equal(
            get_backend("scalar").run_batch(
                specs, network=topology, link_usage=scalar_usage
            ),
            backend.run_batch(specs, network=topology, link_usage=vector_usage),
        )
        assert scalar_usage == vector_usage
        # exactly the kernel-less third fell back, not the whole batch
        assert backend.last_fallback_sessions == 3
        assert backend.last_batch_sessions == 9

    def test_stateful_abr_instances_survive_interleaving(self):
        """Shared stateful ABRs are reset once up front, not mid-flight.

        Concurrent sessions sharing one RobustMPC instance deterministically
        share its error history (one user, one ABR brain); a second run must
        reproduce the first exactly, and a spec with its *own* instance must
        match a solo un-networked run when the link is uncongested.
        """
        from repro.abr.robust_mpc import RobustMPC

        fat = NetworkTopology(name="fat", links=(EdgeLink("fat", 1e9),))
        video = Video(num_segments=16, seed=4)
        trace = StationaryTraceGenerator(2200.0, 300.0).generate(
            25, np.random.default_rng(5)
        )
        shared = RobustMPC()
        specs = [
            SessionSpec(
                abr=shared,
                video=video,
                trace=trace,
                exit_model=RuleBasedUser(6.0, 4),
                seed=i,
                user_id="u-shared",
                start_step=i * 2,
            )
            for i in range(3)
        ] + [
            SessionSpec(
                abr=RobustMPC(),
                video=video,
                trace=trace,
                seed=99,
                user_id="u-solo",
                start_step=1,
            )
        ]
        first = get_backend("vector").run_batch(specs, network=fat)
        second = get_backend("vector").run_batch(specs, network=fat)
        assert_traces_equal(first, second)
        solo = get_backend("scalar").run_batch(
            [
                SessionSpec(
                    abr=RobustMPC(), video=video, trace=trace, seed=99, user_id="u-solo"
                )
            ]
        )
        assert_traces_equal(solo, first[-1:])

    @pytest.mark.parametrize("mode", ["fixed", "bayesian"])
    def test_lingxi_cohorts_match_reference_with_zero_fallbacks(self, mode):
        """Networked LingXi sessions run lockstep through the controller host."""
        from repro.core.exit_predictor import ExitRatePredictor
        from repro.net import CrossTraffic
        from repro.sim import VectorBackend
        from repro.sim.video import VideoLibrary

        from test_vector_backend import make_lingxi_abr

        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        topology = NetworkTopology(
            name="tight",
            links=(
                EdgeLink(
                    "hot",
                    3500.0,
                    cross_traffic=CrossTraffic(200.0, 800.0, period=10),
                ),
            ),
        )

        def build_specs():
            library = VideoLibrary(
                num_videos=2, mean_duration=40.0, std_duration=6.0, seed=2
            )
            generator = MarkovTraceGenerator()
            rng = np.random.default_rng(7)
            seeds = spawn_session_seeds(21, 6)
            return [
                SessionSpec(
                    abr=make_lingxi_abr(predictor, 200 + i, mode),
                    video=library[i % 2],
                    trace=generator.generate(40, rng),
                    exit_model=None,
                    seed=seeds[i],
                    user_id=f"u{i}",
                    link="hot",
                    start_step=(i % 2) * 3,
                )
                for i in range(6)
            ]

        scalar_specs, vector_specs = build_specs(), build_specs()
        scalar_usage, vector_usage = [], []
        scalar_traces = get_backend("scalar").run_batch(
            scalar_specs, network=topology, link_usage=scalar_usage
        )
        backend = VectorBackend()
        vector_traces = backend.run_batch(
            vector_specs, network=topology, link_usage=vector_usage
        )
        assert_traces_equal(scalar_traces, vector_traces)
        assert scalar_usage == vector_usage
        assert backend.last_fallback_sessions == 0
        for scalar_spec, vector_spec in zip(scalar_specs, vector_specs):
            assert (
                scalar_spec.abr.controller.history
                == vector_spec.abr.controller.history
            )
        # congestion actually triggered per-user optimization
        assert sum(
            len(spec.abr.controller.history) for spec in scalar_specs
        ) > 0

    def test_uncongested_networked_equals_unnetworked(self):
        """With capacity to spare, the allocator must be a perfect no-op."""
        fat = NetworkTopology(name="fat", links=(EdgeLink("fat", 1e9),))
        specs = _spec_batch("hyb", 5, staggered=True)
        plain = [
            SessionSpec(
                abr=spec.abr,
                video=spec.video,
                trace=spec.trace,
                exit_model=spec.exit_model,
                seed=spec.seed,
                user_id=spec.user_id,
            )
            for spec in specs
        ]
        unnetworked = get_backend("scalar").run_batch(plain)
        for backend in ("scalar", "vector"):
            assert_traces_equal(
                unnetworked, get_backend(backend).run_batch(specs, network=fat)
            )

    def test_explicit_link_and_weight_fields(self):
        topology = _toy_topology()
        video = Video(num_segments=12, seed=1)
        trace = StationaryTraceGenerator(6000.0, 100.0).generate(
            20, np.random.default_rng(0)
        )
        specs = [
            SessionSpec(
                abr=HYB(),
                video=video,
                trace=trace,
                seed=i,
                user_id=f"u{i}",
                link="hot",
                weight=2.0 if i == 0 else 1.0,
            )
            for i in range(6)
        ]
        usage = []
        traces = get_backend("vector").run_batch(specs, network=topology, link_usage=usage)
        assert_traces_equal(
            get_backend("scalar").run_batch(specs, network=topology), traces
        )
        # all demand landed on the pinned link, and the weighted session got
        # a strictly larger share while the link was congested
        assert all(s.active_sessions == 0 for s in usage if s.link_id == "cold")
        heavy = traces[0].records[2].bandwidth_kbps
        light = traces[1].records[2].bandwidth_kbps
        assert heavy > light

    def test_spec_validation(self):
        video = Video(num_segments=4, seed=0)
        trace = StationaryTraceGenerator(2000.0).generate(4, np.random.default_rng(0))
        with pytest.raises(ValueError):
            SessionSpec(abr=HYB(), video=video, trace=trace, start_step=-1)
        with pytest.raises(ValueError):
            SessionSpec(abr=HYB(), video=video, trace=trace, weight=0.0)
        topology = _toy_topology()
        spec = SessionSpec(
            abr=HYB(), video=video, trace=trace, seed=0, link="missing"
        )
        with pytest.raises(KeyError):
            get_backend("vector").run_batch([spec], network=topology)


class TestEmergentCongestion:
    @staticmethod
    def _mean_allocated(num_sessions: int) -> tuple[float, LinkUtilizationLog]:
        topology = NetworkTopology(name="one", links=(EdgeLink("hot", 20_000.0),))
        video = Video(num_segments=15, seed=2)
        trace = StationaryTraceGenerator(4000.0, 200.0).generate(
            20, np.random.default_rng(1)
        )
        specs = [
            SessionSpec(
                abr=HYB(), video=video, trace=trace, seed=i, user_id=f"u{i}"
            )
            for i in range(num_sessions)
        ]
        usage = []
        get_backend("vector").run_batch(specs, network=topology, link_usage=usage)
        log = LinkUtilizationLog(usage)
        return log.mean_allocated_per_session_kbps("hot"), log

    def test_per_session_throughput_drops_as_concurrency_rises(self):
        lone, log_lone = self._mean_allocated(2)
        mid, _ = self._mean_allocated(10)
        crowd, log_crowd = self._mean_allocated(40)
        assert lone > mid > crowd
        assert log_lone.congested_slot_fraction("hot") == 0.0
        assert log_crowd.congested_slot_fraction("hot") > 0.5
        assert log_crowd.mean_utilization("hot") > 0.95

    def test_outage_window_squeezes_allocations(self):
        topology = NetworkTopology(
            name="o",
            links=(EdgeLink("l", 30_000.0, events=(LinkEvent(5, 10, 0.25),)),),
        )
        video = Video(num_segments=15, seed=3)
        trace = StationaryTraceGenerator(3000.0, 100.0).generate(
            20, np.random.default_rng(2)
        )
        specs = [
            SessionSpec(abr=HYB(), video=video, trace=trace, seed=i, user_id=f"u{i}")
            for i in range(12)
        ]
        usage = []
        get_backend("vector").run_batch(specs, network=topology, link_usage=usage)
        log = LinkUtilizationLog(usage)
        steps, utilization = log.utilization_timeseries("l")
        inside = utilization[(steps >= 5) & (steps < 10)]
        # during the outage the (quartered) link saturates
        assert inside.min() > 0.95
        # per-session allocation inside the window is below the access demand
        congested = [
            s for s in log.samples if 5 <= s.step < 10 and s.active_sessions > 0
        ]
        assert all(s.demand_kbps > s.allocated_kbps for s in congested)


class TestLinkUtilizationLog:
    def test_aggregations_and_validation(self):
        _, log = TestEmergentCongestion._mean_allocated(6)
        assert log.links() == ["hot"]
        assert log.peak_active_sessions() == 6
        steps, concurrency = log.concurrency_timeseries("hot")
        assert list(steps) == sorted(steps.tolist())
        assert concurrency.max() == 6
        with pytest.raises(KeyError):
            log.mean_utilization("nope")
        with pytest.raises(ValueError):
            LinkUtilizationLog([])
