"""Longitudinal fleet tests: retention, churn, drift, A/B, checkpoints.

The acceptance gate of the longitudinal layer: a 3-day, 2-arm A/B campaign is
**bit-identical** across {1, 2, 4} shards and across scalar vs vector
backends — traces, per-day retention decisions, and telemetry replay — with
retention deltas reported through :mod:`repro.analytics.abtest`.  Plus the
zero-session-day robustness and the cross-day checkpoint round-trip the
churn loop depends on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.base import QoEParameters
from repro.abr.hyb import HYB
from repro.analytics.abtest import ArmComparison
from repro.analytics.logs import LogCollection
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig
from repro.fleet import (
    DriftConfig,
    FleetConfig,
    FleetResult,
    HybFleetFactory,
    LingXiFleetFactory,
    load_resume_state,
    LongitudinalCampaign,
    LongitudinalConfig,
    assign_arms,
    fleet_metrics,
    load_fleet_checkpoint,
    replay_day_summaries,
    replay_log_collection,
    replay_retention_decisions,
    run_ab_campaign,
    run_longitudinal_campaign,
    shifting_device_mix,
    write_fleet_telemetry,
)
from repro.fleet.longitudinal import _decision_rng, _day_seed
from repro.net import EdgeLink, NetworkTopology
from repro.net.topology import CrossTraffic
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation
from repro.users.retention import (
    EngagementSummary,
    RuleBasedRetentionModel,
    fit_retention_model,
    summarize_sessions,
)


@pytest.fixture(scope="module")
def population() -> UserPopulation:
    """Low-bandwidth-skewed population so stalls, exits and churn occur."""
    return UserPopulation.generate(16, seed=5, bandwidth_median_kbps=2500.0)


@pytest.fixture(scope="module")
def library() -> VideoLibrary:
    return VideoLibrary(num_videos=3, mean_duration=30.0, std_duration=8.0, seed=2)


def _always_return() -> RuleBasedRetentionModel:
    return RuleBasedRetentionModel(
        base_return=1.0,
        stall_penalty=0.0,
        max_stall_penalty=0.0,
        exit_penalty=0.0,
        watch_bonus=0.0,
        ceiling=1.0,
    )


def _never_return() -> RuleBasedRetentionModel:
    return RuleBasedRetentionModel(
        base_return=0.0,
        stall_penalty=0.0,
        max_stall_penalty=0.0,
        exit_penalty=0.0,
        watch_bonus=0.0,
        lapse_return=0.0,
        floor=0.0,
    )


def _summary(**overrides) -> EngagementSummary:
    defaults = dict(
        num_sessions=3,
        mean_watch_fraction=0.8,
        exit_fraction=0.0,
        total_stall_time_s=0.0,
        stall_count=0,
        mean_bitrate_kbps=2000.0,
        total_watch_time_s=90.0,
    )
    defaults.update(overrides)
    return EngagementSummary(**defaults)


class TestRetentionModels:
    def test_rule_based_bounds_and_monotonicity(self):
        model = RuleBasedRetentionModel()
        good = model.return_probability(_summary())
        stalled = model.return_probability(_summary(stall_count=5, total_stall_time_s=12.0))
        churny = model.return_probability(
            _summary(stall_count=20, total_stall_time_s=60.0, exit_fraction=1.0)
        )
        assert model.floor <= churny < stalled < good <= model.ceiling
        assert model.return_probability(None) == model.lapse_return

    def test_rule_based_validation(self):
        with pytest.raises(ValueError):
            RuleBasedRetentionModel(floor=0.9, ceiling=0.5)
        with pytest.raises(ValueError):
            RuleBasedRetentionModel(base_return=1.4)

    def test_summary_payload_roundtrip(self):
        summary = _summary(stall_count=2, total_stall_time_s=3.5)
        assert EngagementSummary.from_payload(summary.as_payload()) == summary

    def test_summarize_sessions_from_fleet_logs(self, population, library):
        from repro.fleet import run_fleet_day

        result = run_fleet_day(
            population,
            library,
            FleetConfig(num_shards=2, num_workers=0, sessions_per_user=2,
                        trace_length=40, seed=3),
        )
        by_user = result.logs.group_by_user()
        uid, sessions = next(iter(by_user.items()))
        summary = summarize_sessions(sessions)
        assert summary.num_sessions == len(sessions)
        assert summary.total_watch_time_s == pytest.approx(
            sum(s.watch_time for s in sessions)
        )
        assert summary.stall_count == sum(s.stall_count for s in sessions)
        assert 0.0 <= summary.exit_fraction <= 1.0
        with pytest.raises(ValueError):
            summarize_sessions([])

    def test_data_driven_model_learns_stall_churn(self):
        rng = np.random.default_rng(0)
        summaries, labels = [], []
        for _ in range(200):
            if rng.random() < 0.5:  # good day -> returns
                summaries.append(
                    _summary(
                        mean_watch_fraction=float(rng.uniform(0.7, 1.0)),
                        stall_count=0,
                    )
                )
                labels.append(True)
            else:  # stall-heavy day -> churns
                summaries.append(
                    _summary(
                        mean_watch_fraction=float(rng.uniform(0.1, 0.5)),
                        stall_count=int(rng.integers(4, 12)),
                        total_stall_time_s=float(rng.uniform(8.0, 30.0)),
                        exit_fraction=1.0,
                    )
                )
                labels.append(False)
        model = fit_retention_model(summaries, labels)
        good = model.return_probability(_summary(mean_watch_fraction=0.9))
        bad = model.return_probability(
            _summary(mean_watch_fraction=0.2, stall_count=8,
                     total_stall_time_s=20.0, exit_fraction=1.0)
        )
        assert good > 0.8 > 0.2 > bad
        assert model.return_probability(None) == model.lapse_return


def _ab(population, library, *, backend, shards, workers=0, telemetry_root=None):
    config = LongitudinalConfig(
        days=3,
        seed=17,
        num_shards=shards,
        num_workers=workers,
        sessions_per_user=2,
        trace_length=40,
        backend=backend,
        drift=DriftConfig(influx_per_day=2),
    )
    return run_ab_campaign(
        population,
        library,
        # picklable factories: pooled-worker variants ship them to processes
        arms={
            "aggressive": HybFleetFactory(parameters=QoEParameters(beta=0.8)),
            "conservative": HybFleetFactory(parameters=QoEParameters(beta=0.5)),
        },
        config=config,
        telemetry_root=telemetry_root,
    )


def _session_map(result):
    """(day, user, session) → full record tuple; the exact comparison unit."""
    mapping = {}
    for day in result.days:
        for log in day.result.logs:
            key = (day.day, log.user_id, log.session_index)
            assert key not in mapping
            mapping[key] = (log.trace.exited_early, tuple(log.trace.records))
    return mapping


def _decision_map(result):
    return {
        (day.day, uid): decision
        for day in result.days
        for uid, decision in day.decisions.items()
    }


class TestABCampaignBitIdentity:
    """The acceptance gate: shard-count and backend invariance."""

    @pytest.fixture(scope="class")
    def baseline(self, population, library):
        return _ab(population, library, backend="scalar", shards=1)

    @pytest.mark.parametrize(
        "backend,shards,workers",
        [("scalar", 2, 0), ("scalar", 4, 2), ("vector", 1, 0), ("vector", 4, 2)],
    )
    def test_bit_identical_across_shards_and_backends(
        self, population, library, baseline, backend, shards, workers
    ):
        other = _ab(population, library, backend=backend, shards=shards, workers=workers)
        for arm in baseline.arms:
            assert _session_map(other.arms[arm]) == _session_map(baseline.arms[arm])
            assert _decision_map(other.arms[arm]) == _decision_map(baseline.arms[arm])
            assert other.arms[arm].dau_series == baseline.arms[arm].dau_series
        for metric, comparison in baseline.comparisons.items():
            assert other.comparisons[metric] == comparison

    def test_retention_deltas_reported_through_abtest(self, baseline):
        assert set(baseline.comparisons) >= {"dau", "retention_rate", "total_watch_time"}
        retention = baseline.comparisons["retention_rate"]
        assert isinstance(retention, ArmComparison)
        lo, hi = retention.confidence_interval
        assert lo <= retention.mean_delta <= hi
        assert 0.0 <= retention.p_value <= 1.0
        assert len(retention.treatment_daily) == 2  # days 1..2 (day 0 has no prior day)
        # every summary line renders
        assert all(isinstance(line, str) for line in baseline.summary_lines())

    def test_telemetry_replays_exactly(self, population, library, tmp_path):
        result = _ab(
            population, library, backend="vector", shards=2,
            telemetry_root=tmp_path,
        )
        for arm, campaign in result.arms.items():
            live_decisions = _decision_map(campaign)
            replayed = replay_retention_decisions(tmp_path / arm / "campaign.jsonl")
            assert replayed == live_decisions
            summaries = replay_day_summaries(tmp_path / arm / "campaign.jsonl")
            assert [s["day"] for s in summaries] == [d.day for d in campaign.days]
            for day, payload in zip(campaign.days, summaries):
                assert payload["dau"] == day.dau
                assert payload["metrics"] == day.result.metrics.as_dict()
                replayed_logs = replay_log_collection(
                    tmp_path / arm / f"day_{day.day:03d}.jsonl"
                )
                assert len(replayed_logs) == len(day.result.logs)
                if len(replayed_logs):
                    assert (
                        replayed_logs.segment_exit_rate()
                        == day.result.logs.segment_exit_rate()
                    )

    def test_networked_campaign_matches_across_backends(self, population, library):
        def run(backend):
            config = LongitudinalConfig(
                days=2,
                seed=11,
                num_shards=2,
                num_workers=0,
                sessions_per_user=2,
                trace_length=40,
                backend=backend,
                network="dual_isp",
            )
            return LongitudinalCampaign(config).run(population, library)

        scalar, vector = run("scalar"), run("vector")
        assert _session_map(scalar) == _session_map(vector)
        assert _decision_map(scalar) == _decision_map(vector)
        for a, b in zip(scalar.days, vector.days):
            assert a.result.link_usage == b.result.link_usage

    def test_arm_split_is_stable_and_partitions(self, population):
        arms = assign_arms(population, ["a", "b"])
        again = assign_arms(population, ["a", "b"])
        ids = lambda p: {u.user_id for u in p}  # noqa: E731
        assert ids(arms["a"]) == ids(again["a"])
        assert not ids(arms["a"]) & ids(arms["b"])
        assert ids(arms["a"]) | ids(arms["b"]) == {p.user_id for p in population}
        with pytest.raises(ValueError):
            assign_arms(population, ["a", "a"])

    def test_ab_campaign_requires_two_arms(self, population, library):
        with pytest.raises(ValueError):
            run_ab_campaign(
                population, library,
                arms={"only": lambda profile, seed: HYB()},
            )


class TestZeroSessionDays:
    def test_full_churn_produces_empty_days_and_replayable_telemetry(
        self, population, library, tmp_path
    ):
        config = LongitudinalConfig(
            days=3, seed=7, num_shards=2, num_workers=0,
            sessions_per_user=1, trace_length=30,
        )
        result = run_longitudinal_campaign(
            population,
            library,
            config,
            retention_model=_never_return(),
            telemetry_dir=tmp_path,
        )
        assert result.dau_series == [len(population), 0, 0]
        assert result.retention_series[1] == 0.0
        # empty days still aggregate (to zeros) and replay exactly
        for day in result.days[1:]:
            metrics = day.result.metrics
            assert metrics.num_sessions == 0
            assert metrics.mean_bitrate_kbps == 0.0
            assert metrics.session_exit_rate == 0.0
            replayed = replay_log_collection(tmp_path / f"day_{day.day:03d}.jsonl")
            assert len(replayed) == 0
        rows = result.daily_metrics("arm")
        assert [row.num_sessions for row in rows] == [len(result.days[0].result.logs), 0, 0]
        assert rows[1].stall_seconds_per_hour == 0.0
        # merged logs only contain day 0
        assert result.all_logs().days() == [0]

    def test_fleet_metrics_and_telemetry_survive_empty_collections(self, tmp_path):
        empty = LogCollection([])
        metrics = fleet_metrics(empty)
        assert metrics.num_sessions == 0
        assert metrics.segment_exit_rate == 0.0
        assert metrics.mean_bitrate_kbps == 0.0
        result = FleetResult(
            run_id="empty-day",
            config=FleetConfig(num_shards=1, num_workers=0),
            scenario_name="steady_state",
            logs=empty,
            shard_outputs=[],
            controller_states={},
            wall_time_s=0.0,
        )
        path = write_fleet_telemetry(result, tmp_path / "empty.jsonl")
        replayed = replay_log_collection(path)
        assert len(replayed) == 0

    def test_replay_rejects_eventless_files(self, tmp_path):
        empty_file = tmp_path / "not-telemetry.jsonl"
        empty_file.write_text("")
        with pytest.raises(ValueError):
            replay_log_collection(empty_file)


class TestCheckpointAcrossDays:
    @pytest.mark.parametrize("backend", ["scalar", "vector"])
    def test_resumed_campaign_matches_uninterrupted(
        self, population, library, tmp_path, backend
    ):
        # The default (stochastic, engagement-driven) retention model: the
        # resumed campaign must reproduce real churn decisions, not just
        # the always-return degenerate case.
        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        factory = LingXiFleetFactory(
            predictor, monte_carlo=MonteCarloConfig(num_samples=2, seed=0)
        )
        small = UserPopulation(list(population)[:4])

        def config(days):
            return LongitudinalConfig(
                days=days, seed=3, num_shards=1, num_workers=0,
                sessions_per_user=1, trace_length=40, backend=backend,
                drift=DriftConfig(influx_per_day=1),
            )

        uninterrupted = LongitudinalCampaign(config(2)).run(
            small, library, abr_factory=factory
        )

        day0 = LongitudinalCampaign(config(1)).run(
            small, library, abr_factory=factory,
            checkpoint_dir=tmp_path / backend,
        )
        checkpoint = load_fleet_checkpoint(tmp_path / backend / "day_000.json")
        assert checkpoint.states == day0.controller_states
        resume = load_resume_state(
            tmp_path / backend / "resume_day_000.json",
            tmp_path / backend / "day_000.json",
        )
        assert resume.next_day == 1
        assert resume.controller_states == checkpoint.states
        # the roster on disk IS the in-memory drifted one (influx included):
        # recovery needs nothing from the dead process
        assert resume.roster == day0.final_roster
        resumed = LongitudinalCampaign(config(1)).run(
            resume.population(),
            library,
            abr_factory=factory,
            resume_state=resume,
        )

        assert _session_map(resumed) == {
            key: value
            for key, value in _session_map(uninterrupted).items()
            if key[0] == 1
        }
        assert _decision_map(resumed) == {
            key: value
            for key, value in _decision_map(uninterrupted).items()
            if key[0] == 1
        }
        assert resumed.controller_states == uninterrupted.controller_states

    def test_resumed_campaign_appends_campaign_telemetry(
        self, population, library, tmp_path
    ):
        # Resuming into the same telemetry_dir must not truncate the
        # pre-crash retention/day_summary history in campaign.jsonl.
        small = UserPopulation(list(population)[:4])

        def config(days):
            return LongitudinalConfig(
                days=days, seed=3, num_shards=1, num_workers=0,
                sessions_per_user=1, trace_length=30,
            )

        full = LongitudinalCampaign(config(2)).run(
            small, library, telemetry_dir=tmp_path / "full"
        )
        resumable = tmp_path / "resumable"
        LongitudinalCampaign(config(1)).run(
            small, library, telemetry_dir=resumable, checkpoint_dir=resumable
        )
        resume = load_resume_state(
            resumable / "resume_day_000.json", resumable / "day_000.json"
        )
        LongitudinalCampaign(config(1)).run(
            resume.population(), library,
            resume_state=resume, telemetry_dir=resumable,
        )
        assert replay_retention_decisions(
            resumable / "campaign.jsonl"
        ) == replay_retention_decisions(tmp_path / "full" / "campaign.jsonl")
        assert [s["day"] for s in replay_day_summaries(resumable / "campaign.jsonl")] == [
            s["day"] for s in replay_day_summaries(tmp_path / "full" / "campaign.jsonl")
        ]

    def test_resume_state_rejects_conflicting_controller_states(
        self, population, library, tmp_path
    ):
        small = UserPopulation(list(population)[:2])
        config = LongitudinalConfig(
            days=1, seed=3, num_shards=1, num_workers=0,
            sessions_per_user=1, trace_length=30,
        )
        day0 = LongitudinalCampaign(config).run(
            small, library, checkpoint_dir=tmp_path
        )
        resume = load_resume_state(
            tmp_path / "resume_day_000.json", tmp_path / "day_000.json"
        )
        with pytest.raises(ValueError):
            LongitudinalCampaign(config).run(
                UserPopulation(day0.final_roster),
                library,
                resume_state=resume,
                controller_states={},
            )

    def test_checkpoint_state_actually_matters(self, population, library):
        # Positive control: dropping the saved state changes day-1 decisions'
        # inputs (lifetime segments restart), so the equality above is not
        # vacuous.
        predictor = ExitRatePredictor(channels=8, hidden=16, seed=0)
        factory = LingXiFleetFactory(
            predictor, monte_carlo=MonteCarloConfig(num_samples=2, seed=0)
        )
        small = UserPopulation(list(population)[:3])
        config = LongitudinalConfig(
            days=2, seed=3, num_shards=1, num_workers=0,
            sessions_per_user=1, trace_length=40,
        )
        full = LongitudinalCampaign(config).run(
            small, library, abr_factory=factory, retention_model=_always_return()
        )
        lifetime = lambda states: {  # noqa: E731
            uid: payload["user_state"]["lifetime_segments"]
            for uid, payload in states.items()
        }
        day0_only = LongitudinalCampaign(
            LongitudinalConfig(
                days=1, seed=3, num_shards=1, num_workers=0,
                sessions_per_user=1, trace_length=40,
            )
        ).run(small, library, abr_factory=factory, retention_model=_always_return())
        assert all(
            lifetime(full.controller_states)[uid] > lifetime(day0_only.controller_states)[uid]
            for uid in lifetime(full.controller_states)
        )


class TestDriftAndInflux:
    def test_influx_users_join_later_days_unconditionally(self, population, library):
        config = LongitudinalConfig(
            days=3, seed=21, num_shards=2, num_workers=0,
            sessions_per_user=1, trace_length=30,
            drift=DriftConfig(influx_per_day=4, influx_id_prefix="fresh"),
        )
        result = LongitudinalCampaign(config).run(
            population, library, retention_model=_always_return()
        )
        day1_new = [
            uid for uid in result.days[1].active_user_ids if uid.startswith("fresh")
        ]
        assert len(day1_new) == 4
        for uid in day1_new:
            decision = result.days[1].decisions[uid]
            assert decision.new_user and decision.returned and decision.probability == 1.0
        assert len(result.final_roster) == len(population) + 3 * 4

    def test_profile_drift_is_identity_keyed(self, population, library):
        def run(influx):
            config = LongitudinalConfig(
                days=2, seed=9, num_shards=1, num_workers=0,
                sessions_per_user=1, trace_length=30,
                drift=DriftConfig(influx_per_day=influx),
            )
            return LongitudinalCampaign(config).run(
                population, library, retention_model=_always_return()
            )

        without = {p.user_id: p for p in run(0).final_roster}
        with_influx = {p.user_id: p for p in run(5).final_roster}
        for profile in population:
            assert (
                without[profile.user_id].mean_bandwidth_kbps
                == with_influx[profile.user_id].mean_bandwidth_kbps
            )
            assert (
                without[profile.user_id].sensitivity
                == with_influx[profile.user_id].sensitivity
            )

    def test_cross_traffic_growth_scales_topology_per_day(self, population, library):
        topology = NetworkTopology(
            name="grow",
            links=(
                EdgeLink(
                    "x",
                    20_000.0,
                    cross_traffic=CrossTraffic(base_kbps=100.0, peak_kbps=1_000.0),
                ),
            ),
        )
        config = LongitudinalConfig(
            days=3, seed=4, num_shards=1, num_workers=0,
            sessions_per_user=1, trace_length=20,
            network=topology,
            drift=DriftConfig(cross_traffic_growth=0.5),
        )
        result = LongitudinalCampaign(config).run(
            population, library, retention_model=_always_return()
        )
        peaks = [
            day.result.config.network.links[0].cross_traffic.peak_kbps
            for day in result.days
        ]
        assert peaks == [1_000.0, 1_500.0, 2_250.0]

    def test_shifting_device_mix_schedule(self):
        schedule = shifting_device_mix(mobile_start=0.3, mobile_shift_per_day=0.2)
        assert schedule(0).mobile_fraction == pytest.approx(0.3)
        assert schedule(2).mobile_fraction == pytest.approx(0.7)
        assert schedule(50).mobile_fraction <= 0.95  # clamped

    def test_decision_rng_is_identity_keyed(self):
        a = _decision_rng(1, "retention", 2, "u00001").random()
        b = _decision_rng(1, "retention", 2, "u00001").random()
        c = _decision_rng(1, "retention", 2, "u00002").random()
        d = _decision_rng(1, "retention", 3, "u00001").random()
        assert a == b
        assert a != c and a != d
        assert _day_seed(5, 0) != _day_seed(5, 1)

    def test_ab_influx_apportionment_preserves_totals(self):
        from repro.fleet.longitudinal import _apportion

        assert _apportion(1, [0.5, 0.5]) == [1, 0]
        assert _apportion(5, [0.5, 0.5]) == [3, 2]
        assert _apportion(0, [0.5, 0.5]) == [0, 0]
        assert _apportion(7, [0.6, 0.4]) == [4, 3]
        for total in range(9):
            assert sum(_apportion(total, [0.37, 0.63])) == total

    def test_ab_comparisons_drop_nonfinite_pairs(self, population, library):
        # A fully-churned campaign has NaN retention from day 2 on: the
        # comparison must drop those days (and day 0), not report NaN stats.
        config = LongitudinalConfig(
            days=4, seed=5, num_shards=1, num_workers=0,
            sessions_per_user=1, trace_length=30,
        )
        result = run_ab_campaign(
            population,
            library,
            arms={
                "a": HybFleetFactory(parameters=QoEParameters(beta=0.8)),
                "b": HybFleetFactory(parameters=QoEParameters(beta=0.5)),
            },
            config=config,
            retention_model=_never_return(),
        )
        assert "retention_rate" not in result.comparisons  # only day 1 is finite
        # intensive ratios are undefined on empty days: days 1-3 drop out,
        # leaving a single pair — not enough for a comparison
        assert "mean_bitrate_kbps" not in result.comparisons
        assert "stall_seconds_per_hour" not in result.comparisons
        dau = result.comparisons["dau"]
        assert np.isfinite(dau.mean_delta)
        assert np.isfinite(dau.p_value)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            LongitudinalConfig(days=0)
        with pytest.raises(ValueError):
            DriftConfig(influx_per_day=-1)
        with pytest.raises(ValueError):
            DriftConfig(cross_traffic_growth=-1.0)
        with pytest.raises(KeyError):
            LongitudinalConfig(network="warp_net")
