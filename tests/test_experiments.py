"""Integration tests: experiment drivers run end-to-end on a tiny substrate."""

import numpy as np
import pytest

from repro.experiments import (
    fig01_qos_saturation,
    fig02_opportunities,
    fig03_watchtime_qos,
    fig04_exit_rate_qos,
    fig05_personalized_stall,
    fig08_trigger_tradeoff,
    fig09_predictor,
    fig10_simulation,
    fig11_heatmap,
    fig12_ab_test,
    fig13_bandwidth_bins,
    fig14_exit_rate_vs_param,
    fig15_user_trajectories,
)
from repro.experiments.campaign import CampaignConfig, run_campaign
from repro.experiments.common import format_table
from repro.abr.hyb import HYB


class TestCampaign:
    def test_campaign_produces_logs_and_parameters(self, tiny_substrate):
        result = run_campaign(
            tiny_substrate.population,
            tiny_substrate.library,
            lambda _profile: HYB(),
            CampaignConfig(days=1, sessions_per_user_per_day=1, trace_length=40, seed=0),
        )
        assert len(result.logs) == len(tiny_substrate.population)
        assert len(result.daily_parameters) == len(tiny_substrate.population)
        assert all(v == pytest.approx(0.9) for v in result.daily_parameters.values())


class TestAnalysisFigures:
    def test_fig01_structure(self, tiny_substrate):
        result = fig01_qos_saturation.run(
            substrate=tiny_substrate, days=1, sessions_per_user_per_day=1
        )
        assert set(result.bitrate) == {"Alg1", "Alg2", "Alg3"}
        assert len(result.days) == 1
        np.testing.assert_allclose(result.bitrate["Alg2"], 1.0)
        assert len(result.rows()) == 3

    def test_fig02_cdfs(self, tiny_substrate):
        result = fig02_opportunities.run(substrate=tiny_substrate)
        assert 0.0 <= result.fraction_below_max_bitrate <= 1.0
        assert result.bandwidth_cdf[-1] == pytest.approx(1.0)
        assert result.stall_count_cdf[-1] == pytest.approx(1.0)

    def test_fig03_normalized(self, tiny_substrate):
        result = fig03_watchtime_qos.run(substrate=tiny_substrate)
        assert np.nanmax(result.watch_time_by_tier) == pytest.approx(1.0)
        assert len(result.stall_bins_s) == result.watch_time_by_stall.size

    def test_fig04_magnitude_ordering(self, tiny_substrate):
        result = fig04_exit_rate_qos.run(substrate=tiny_substrate)
        assert result.exit_rate_by_tier.shape == (4,)
        # Stall must dominate quality — the paper's Takeaway 1.
        if np.isfinite(result.stall_magnitude) and np.isfinite(result.quality_magnitude):
            assert result.stall_magnitude > result.quality_magnitude

    def test_fig05_curves(self, tiny_substrate):
        result = fig05_personalized_stall.run(substrate=tiny_substrate)
        assert result.tolerance_cdf[-1] == pytest.approx(1.0)
        for curve in result.example_curves.values():
            assert np.all(curve >= 0.0) and np.all(curve <= 1.0)
            assert np.all(np.diff(curve) >= -1e-9)


class TestPredictorFigures:
    def test_fig08_recall_curve(self, tiny_substrate):
        result = fig08_trigger_tradeoff.run(substrate=tiny_substrate, max_history=4, train_epochs=3)
        assert len(result.recall_by_history) == 4
        assert len(result.stall_count_cdfs) >= 1

    def test_fig09_orderings(self, tiny_substrate):
        result = fig09_predictor.run(substrate=tiny_substrate, seeds=(0,), epochs=3)
        assert set(result.by_composition) == {"all", "event", "stall"}
        stall = result.by_composition["stall"].mean
        all_metrics = result.by_composition["all"].mean
        assert stall["precision"] >= all_metrics["precision"]
        for summary in result.by_composition.values():
            for value in summary.mean.values():
                assert 0.0 <= value <= 1.0


class TestSimulationFigures:
    def test_fig10_hyb_rule(self, tiny_substrate):
        result = fig10_simulation.run(
            baseline="hyb",
            user_modeling="rule",
            substrate=tiny_substrate,
            rule_thresholds=(2.0, 6.0),
            num_traces=2,
            trace_length=50,
            repeats=1,
        )
        assert result.completion_by_fixed
        assert 0.0 <= result.best_fixed <= 1.0
        assert result.completion_lingxi_bayesian is not None
        assert 0.0 <= result.completion_lingxi_bayesian <= 1.0

    def test_fig10_invalid_arguments(self, tiny_substrate):
        with pytest.raises(ValueError):
            fig10_simulation.run(user_modeling="bogus", substrate=tiny_substrate)
        with pytest.raises(ValueError):
            fig10_simulation.run(baseline="bogus", substrate=tiny_substrate)

    def test_fig11_heatmap_shape(self, tiny_substrate):
        result = fig11_heatmap.run(
            substrate=tiny_substrate,
            baselines=("hyb",),
            rule_thresholds=(2.0, 6.0),
            num_traces=2,
            trace_length=50,
            repeats=1,
        )
        assert result.heatmaps["hyb"].shape == (2, 2)


class TestABFigures:
    @pytest.fixture(scope="class")
    def ab_result(self, tiny_substrate):
        return fig12_ab_test.run(
            substrate=tiny_substrate,
            days_pre=2,
            days_post=2,
            sessions_per_user_per_day=2,
            trace_length=60,
        )

    def test_fig12_structure(self, ab_result):
        assert len(ab_result.control_daily) == 4
        assert len(ab_result.treatment_daily) == 4
        for result in (ab_result.watch_time, ab_result.bitrate, ab_result.stall_time):
            assert np.isfinite(result.effect)
            assert 0.0 <= result.p_value <= 1.0

    def test_fig13_bins(self, tiny_substrate, ab_result):
        result = fig13_bandwidth_bins.run(substrate=tiny_substrate, ab_result=ab_result)
        assert len(result.bin_labels) == len(result.mean_beta)
        finite_betas = [b for b in result.mean_beta if np.isfinite(b)]
        assert all(0.4 <= b <= 1.0 for b in finite_betas)

    def test_fig14_daily_points(self, tiny_substrate, ab_result):
        result = fig14_exit_rate_vs_param.run(
            substrate=tiny_substrate, ab_result=ab_result, min_stall_events=1
        )
        assert len(result.daily) == 2
        for day in result.daily:
            assert len(day.exit_rates) == len(day.parameters)

    def test_fig15_trajectories(self, tiny_substrate, ab_result):
        result = fig15_user_trajectories.run(
            substrate=tiny_substrate, ab_result=ab_result, users_per_group=1
        )
        assert len(result.high_tolerance) == 1
        assert len(result.stall_sensitive) == 1
        for trajectory in result.high_tolerance + result.stall_sensitive:
            for event in trajectory.events:
                assert event.stall_time > 0


class TestFormatting:
    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "3" in text


class TestRunnerCLI:
    def test_select_figures_default_is_everything(self):
        from repro.experiments.runner import FIGURE_IDS, select_figures

        assert select_figures(None) == list(FIGURE_IDS)
        assert select_figures([]) == list(FIGURE_IDS)

    def test_select_figures_preserves_order_and_pulls_fig12(self):
        from repro.experiments.runner import select_figures

        assert select_figures(["fig13", "fig01"]) == ["fig01", "fig12", "fig13"]
        assert select_figures(["fig15"]) == ["fig12", "fig15"]
        assert select_figures(["fig02"]) == ["fig02"]

    def test_select_figures_rejects_unknown(self):
        from repro.experiments.runner import select_figures

        with pytest.raises(ValueError, match="unknown figures"):
            select_figures(["fig99"])

    def test_argparse_flags(self):
        from repro.experiments.runner import _parse_args

        args = _parse_args(["--figures", "fig01,fig12", "--quiet"])
        assert args.figures == "fig01,fig12"
        assert args.quiet is True
        assert _parse_args([]).quiet is False

    def test_run_all_respects_selection(self, tiny_substrate):
        from repro.experiments.runner import run_all

        results = run_all(
            substrate_config=tiny_substrate.config,
            verbose=False,
            figures=["fig01"],
        )
        assert list(results) == ["fig01"]
