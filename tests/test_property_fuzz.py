"""Property-based differential fuzz: scalar == vector over random workloads.

``test_vector_backend.py`` sweeps hand-enumerated (ABR × trace × exit-model)
grids; this suite promotes the equivalence gate into a *property* checked
over randomly sampled workloads.  A seeded generator draws ~50 independent
:class:`SessionSpec` batches — random ABR mixes (all lockstep-native
families), random trace shapes and lengths, random exit-model families,
random videos/ladders, and (for half the cases) random shared-bottleneck
topologies — sometimes multi-tier (edge → peering → origin) with a random
cache temperature and allocator — with random start slots and fair-share
weights — and asserts for every case that

* the vector backend reproduces the scalar backend **segment for segment**
  (exact :class:`SegmentRecord` field equality),
* networked cases produce identical per-slot link-usage streams, and
* the vector backend stayed fully lockstep: zero fallback sessions.

Everything is keyed by the case seed, so a failing case replays exactly
(``pytest "tests/test_property_fuzz.py::test_scalar_vector_property[17]"``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.abr.bba import BBA
from repro.abr.bola import BOLA
from repro.abr.hyb import HYB
from repro.abr.robust_mpc import RobustMPC
from repro.abr.throughput import ThroughputRule
from repro.net import ALLOCATORS, CacheModel, EdgeLink, NetworkTopology
from repro.sim import SessionSpec, get_backend, spawn_session_seeds
from repro.sim.bandwidth import (
    LowBandwidthTraceGenerator,
    MarkovTraceGenerator,
    StationaryTraceGenerator,
)
from repro.sim.session import SessionConfig
from repro.sim.video import VideoLibrary
from repro.users.engagement import BaselineExitModel, RuleBasedUser
from repro.users.population import UserPopulation

NUM_CASES = 50

_ABR_FACTORIES = (ThroughputRule, HYB, BBA, BOLA, RobustMPC)


def _sample_trace_generator(rng: np.random.Generator):
    family = rng.integers(3)
    if family == 0:
        mean = float(rng.uniform(900.0, 6000.0))
        return StationaryTraceGenerator(mean, mean * float(rng.uniform(0.1, 0.4)))
    if family == 1:
        return MarkovTraceGenerator(
            good_mean_kbps=float(rng.uniform(2000.0, 6000.0)),
            bad_mean_kbps=float(rng.uniform(200.0, 900.0)),
            p_good_to_bad=float(rng.uniform(0.05, 0.3)),
            p_bad_to_good=float(rng.uniform(0.1, 0.4)),
        )
    return LowBandwidthTraceGenerator()


def _sample_exit_model(rng: np.random.Generator, profile):
    family = rng.integers(4)
    if family == 0:
        return None
    if family == 1:
        base = float(rng.uniform(0.01, 0.05))
        return BaselineExitModel(
            base_hazard=base,
            floor_hazard=base * float(rng.uniform(0.2, 0.9)),
            decay_time_s=float(rng.uniform(10.0, 60.0)),
        )
    if family == 2:
        return RuleBasedUser(
            stall_time_threshold_s=float(rng.uniform(2.0, 9.0)),
            stall_count_threshold=int(rng.integers(2, 9)),
        )
    return profile.exit_model()


def _sample_topology(rng: np.random.Generator) -> NetworkTopology | None:
    if rng.random() < 0.5:
        return None
    num_links = int(rng.integers(1, 4))
    if rng.random() < 0.4:
        # Multi-tier draw: every edge routes through a shared peering link
        # and (sometimes) an origin, with a random cache temperature and a
        # random allocator — the full path-aware surface under the same
        # scalar==vector property.
        has_origin = bool(rng.random() < 0.5)
        uplinks = ("peer", "origin") if has_origin else ("peer",)
        links = [
            EdgeLink(
                f"l{i}",
                capacity_kbps=float(rng.uniform(4_000.0, 30_000.0)),
                user_share=float(rng.uniform(0.5, 2.0)),
                uplinks=uplinks,
            )
            for i in range(num_links)
        ]
        links.append(
            EdgeLink(
                "peer",
                capacity_kbps=float(rng.uniform(6_000.0, 40_000.0)),
                tier="peering",
            )
        )
        if has_origin:
            links.append(
                EdgeLink(
                    "origin",
                    capacity_kbps=float(rng.uniform(5_000.0, 35_000.0)),
                    tier="origin",
                )
            )
        cache = (
            None
            if rng.random() < 0.25
            else CacheModel(hit_ratio=float(rng.uniform(0.0, 1.0)))
        )
        allocator = ALLOCATORS[int(rng.integers(len(ALLOCATORS)))]
        return NetworkTopology(
            name="fuzz_tiered", links=tuple(links), cache=cache, allocator=allocator
        )
    links = tuple(
        EdgeLink(
            f"l{i}",
            capacity_kbps=float(rng.uniform(4_000.0, 30_000.0)),
            user_share=float(rng.uniform(0.5, 2.0)),
        )
        for i in range(num_links)
    )
    return NetworkTopology(name="fuzz", links=links)


def _sample_batch(case_seed: int):
    """One random workload: (specs, topology)."""
    rng = np.random.default_rng(case_seed)
    num_sessions = int(rng.integers(3, 9))
    population = UserPopulation.generate(
        num_sessions,
        seed=case_seed + 10_000,
        bandwidth_median_kbps=float(rng.uniform(1_500.0, 8_000.0)),
    )
    library = VideoLibrary(
        num_videos=int(rng.integers(2, 6)),
        mean_duration=float(rng.uniform(20.0, 70.0)),
        std_duration=float(rng.uniform(5.0, 20.0)),
        seed=int(rng.integers(1_000)),
    )
    topology = _sample_topology(rng)
    # Half the un-networked cases share one ABR instance across the batch
    # (the other execution shape the backends must agree on); networked
    # cohorts always get per-session instances.
    shared_abr = (
        _ABR_FACTORIES[int(rng.integers(len(_ABR_FACTORIES)))]()
        if topology is None and rng.random() < 0.5
        else None
    )
    generator = _sample_trace_generator(rng)
    trace_length = int(rng.integers(25, 61))
    seeds = spawn_session_seeds(case_seed, num_sessions)
    specs = []
    for i, profile in enumerate(population):
        abr = (
            shared_abr
            if shared_abr is not None
            else _ABR_FACTORIES[int(rng.integers(len(_ABR_FACTORIES)))]()
        )
        specs.append(
            SessionSpec(
                abr=abr,
                video=library[int(rng.integers(len(library)))],
                trace=generator.generate(trace_length, rng),
                exit_model=_sample_exit_model(rng, profile),
                seed=seeds[i],
                user_id=profile.user_id,
                link=(
                    topology.link_for(profile.user_id).link_id
                    if topology is not None
                    else None
                ),
                start_step=int(rng.integers(0, 16)) if topology is not None else 0,
                weight=float(rng.uniform(0.5, 2.0)) if topology is not None else 1.0,
            )
        )
    return specs, topology


def _assert_traces_equal(scalar_traces, vector_traces, case_seed):
    assert len(scalar_traces) == len(vector_traces)
    for index, (scalar, vector) in enumerate(zip(scalar_traces, vector_traces)):
        assert scalar.exited_early == vector.exited_early, (case_seed, index)
        assert len(scalar.records) == len(vector.records), (case_seed, index)
        for a, b in zip(scalar.records, vector.records):
            assert a == b, (case_seed, index, a, b)


@pytest.mark.parametrize("case_seed", range(NUM_CASES))
def test_scalar_vector_property(case_seed):
    specs, topology = _sample_batch(case_seed)
    config = SessionConfig()

    scalar_usage: list = []
    scalar_traces = get_backend("scalar").run_batch(
        specs, config, network=topology, link_usage=scalar_usage
    )

    vector = get_backend("vector")
    vector_usage: list = []
    vector_traces = vector.run_batch(
        specs, config, network=topology, link_usage=vector_usage
    )

    _assert_traces_equal(scalar_traces, vector_traces, case_seed)
    assert scalar_usage == vector_usage, case_seed
    assert vector.last_fallback_sessions == 0, case_seed
    assert vector.total_fallback_sessions == 0, case_seed


def test_generator_is_deterministic():
    """The sampler itself is a pure function of the case seed."""
    specs_a, topo_a = _sample_batch(7)
    specs_b, topo_b = _sample_batch(7)
    assert len(specs_a) == len(specs_b)
    for a, b in zip(specs_a, specs_b):
        assert a.user_id == b.user_id
        assert a.start_step == b.start_step
        assert a.weight == b.weight
        assert np.array_equal(a.trace.values_kbps, b.trace.values_kbps)
    assert (topo_a is None) == (topo_b is None)
