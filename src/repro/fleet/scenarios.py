"""Workload scenarios for fleet runs.

A :class:`Scenario` tells the orchestrator how a simulated day of traffic
looks for each user: how many sessions they play, what their network looks
like while they play, and what catalogue their device pulls videos from.
Scenarios are plain picklable objects so they travel to worker processes
unchanged, and all randomness flows through the per-shard RNG the orchestrator
hands in — the same seed always produces the same traffic.

Ten workloads ship built-in (the registry is open for more):

``steady_state``
    Every user behaves exactly like their profile says — the baseline.
``flash_crowd``
    A platform-wide event multiplies per-user session counts while CDN
    congestion scales everyone's bandwidth down (**exogenous** congestion:
    every session still plays against a private, pre-scaled trace).
``regional_degradation``
    A deterministic fraction of users (a "region") sees their network degraded
    to a fraction of its mean and turned bursty (Markov-modulated), as in an
    access-network outage.
``device_mix``
    Heterogeneous devices: mobile users get a truncated low-rung ladder and
    short videos, TV users get the full ladder and long videos.
``flash_crowd_shared`` / ``link_outage`` / ``evening_peak``
    **Congestion-native** workloads for networked fleet runs
    (``FleetConfig(network=...)``): arrivals surge onto shared
    :mod:`repro.net` edge links, a link loses capacity mid-day, or diurnal
    cross-traffic squeezes every link — and the resulting throughput drops,
    stalls and exits *emerge* from sessions competing for capacity instead
    of being injected by trace scaling.  Without a network they degrade
    gracefully to steady-state-like runs (start slots and topology shaping
    have no effect on uncoupled sessions).
``cache_storm`` / ``origin_overload`` / ``peering_brownout``
    **Multi-tier** workloads for topologies with uplink chains
    (edge → peering → origin, e.g. ``cdn_3tier``): edge caches go cold and
    miss traffic floods upstream, the origin throttles mid-day, or peering
    links brown out — congestion concentrated on tiers that only cache-miss
    downloads traverse.  On flat topologies they degrade to an arrival
    surge / largest-link capacity shock.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.net.topology import (
    CacheModel,
    CrossTraffic,
    LinkEvent,
    NetworkTopology,
    stable_fraction,
)
from repro.sim.bandwidth import BandwidthTrace, MarkovTraceGenerator
from repro.sim.video import BitrateLadder, Video, VideoLibrary
from repro.users.population import UserProfile

__all__ = [
    "Scenario",
    "SteadyStateScenario",
    "FlashCrowdScenario",
    "FlashCrowdSharedScenario",
    "LinkOutageScenario",
    "EveningPeakScenario",
    "RegionalDegradationScenario",
    "DeviceMixScenario",
    "CacheStormScenario",
    "OriginOverloadScenario",
    "PeeringBrownoutScenario",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "stable_fraction",
]


class Scenario:
    """Baseline workload: users follow their own profiles (steady state)."""

    name = "steady_state"
    description = "every user plays their profile's sessions on their own network"

    def sessions_for(self, profile: UserProfile, rng: np.random.Generator) -> int:
        """Number of sessions this user plays today."""
        return profile.sessions_per_day

    def trace_for(
        self, profile: UserProfile, rng: np.random.Generator, length: int
    ) -> BandwidthTrace:
        """Bandwidth trace the user's sessions run over today."""
        return profile.bandwidth_trace(length, rng)

    def video_for(
        self, profile: UserProfile, library: VideoLibrary, rng: np.random.Generator
    ) -> Video:
        """Video the user plays next."""
        return library.sample(rng)

    def start_for(
        self, profile: UserProfile, session_index: int, rng: np.random.Generator
    ) -> int:
        """Slot at which this session starts downloading.

        Only networked runs are sensitive to start times (uncoupled sessions
        are invariant to when they run); the baseline starts everything at
        slot 0.
        """
        return 0

    def network_for(self, topology: NetworkTopology) -> NetworkTopology:
        """Scenario-specific topology shaping (outages, cross traffic).

        Applied once per run, before users are sharded by link.  The default
        leaves the topology untouched.
        """
        return topology


class SteadyStateScenario(Scenario):
    """Alias of the baseline for registry symmetry."""


class FlashCrowdScenario(Scenario):
    """Platform-wide event: everyone watches more while the CDN saturates."""

    name = "flash_crowd"
    description = "session counts multiplied, bandwidth scaled down by congestion"

    def __init__(self, session_multiplier: float = 3.0, congestion_factor: float = 0.55) -> None:
        if session_multiplier < 1.0:
            raise ValueError("session_multiplier must be at least 1")
        if not 0 < congestion_factor <= 1.0:
            raise ValueError("congestion_factor must be in (0, 1]")
        self.session_multiplier = session_multiplier
        self.congestion_factor = congestion_factor

    def sessions_for(self, profile: UserProfile, rng: np.random.Generator) -> int:
        return max(1, int(round(profile.sessions_per_day * self.session_multiplier)))

    def trace_for(
        self, profile: UserProfile, rng: np.random.Generator, length: int
    ) -> BandwidthTrace:
        trace = profile.bandwidth_trace(length, rng)
        return trace.scaled(self.congestion_factor, name=f"{trace.name}_crowd")


class RegionalDegradationScenario(Scenario):
    """A fixed cohort of users sits behind a degraded, bursty access network."""

    name = "regional_degradation"
    description = "a deterministic user cohort gets degraded bursty bandwidth"

    def __init__(
        self,
        affected_fraction: float = 0.3,
        degradation_factor: float = 0.3,
        salt: str = "region",
    ) -> None:
        if not 0 <= affected_fraction <= 1:
            raise ValueError("affected_fraction must be in [0, 1]")
        if not 0 < degradation_factor <= 1:
            raise ValueError("degradation_factor must be in (0, 1]")
        self.affected_fraction = affected_fraction
        self.degradation_factor = degradation_factor
        self.salt = salt

    def is_affected(self, profile: UserProfile) -> bool:
        """True when the user belongs to the degraded region."""
        return stable_fraction(profile.user_id, self.salt) < self.affected_fraction

    def trace_for(
        self, profile: UserProfile, rng: np.random.Generator, length: int
    ) -> BandwidthTrace:
        if not self.is_affected(profile):
            return profile.bandwidth_trace(length, rng)
        degraded_mean = max(profile.mean_bandwidth_kbps * self.degradation_factor, 50.0)
        generator = MarkovTraceGenerator(
            good_mean_kbps=degraded_mean * 1.2,
            bad_mean_kbps=max(degraded_mean * 0.3, 30.0),
            good_std_kbps=degraded_mean * 0.3,
            bad_std_kbps=degraded_mean * 0.15,
            p_good_to_bad=0.25,
            p_bad_to_good=0.2,
        )
        return generator.generate(length, rng, name=f"{profile.user_id}_degraded")


class DeviceMixScenario(Scenario):
    """Heterogeneous device/ladder mix: mobile, desktop and TV catalogues."""

    name = "device_mix"
    description = "users split across mobile/desktop/TV ladders and video lengths"

    DEVICE_CLASSES: tuple[str, ...] = ("mobile", "desktop", "tv")

    def __init__(
        self,
        ladder: BitrateLadder | None = None,
        mobile_fraction: float = 0.5,
        tv_fraction: float = 0.2,
        num_videos: int = 8,
        seed: int = 0,
        salt: str = "device",
    ) -> None:
        if mobile_fraction < 0 or tv_fraction < 0 or mobile_fraction + tv_fraction > 1:
            raise ValueError("device fractions must be non-negative and sum to <= 1")
        base = ladder or BitrateLadder()
        self.mobile_fraction = mobile_fraction
        self.tv_fraction = tv_fraction
        self.salt = salt
        mobile_ladder = BitrateLadder(
            bitrates_kbps=base.bitrates_kbps[: max(2, base.num_levels - 1)]
        )
        self.libraries: dict[str, VideoLibrary] = {
            "mobile": VideoLibrary(
                ladder=mobile_ladder, num_videos=num_videos, mean_duration=30.0,
                std_duration=10.0, seed=seed + 11,
            ),
            "desktop": VideoLibrary(
                ladder=base, num_videos=num_videos, mean_duration=60.0,
                std_duration=20.0, seed=seed + 12,
            ),
            "tv": VideoLibrary(
                ladder=base, num_videos=num_videos, mean_duration=120.0,
                std_duration=30.0, seed=seed + 13,
            ),
        }

    def device_for(self, profile: UserProfile) -> str:
        """Deterministic device class of a user."""
        draw = stable_fraction(profile.user_id, self.salt)
        if draw < self.mobile_fraction:
            return "mobile"
        if draw < self.mobile_fraction + self.tv_fraction:
            return "tv"
        return "desktop"

    def video_for(
        self, profile: UserProfile, library: VideoLibrary, rng: np.random.Generator
    ) -> Video:
        return self.libraries[self.device_for(profile)].sample(rng)


class FlashCrowdSharedScenario(Scenario):
    """Flash crowd on shared links: congestion emerges from the arrival surge.

    Session counts multiply platform-wide and most sessions arrive inside a
    short surge window (the rest spread over the day), so concurrency on
    every edge link spikes — and, unlike :class:`FlashCrowdScenario`, nobody
    scales any trace: the per-session throughput collapse on the hot links
    is produced entirely by the fair-share allocator dividing finite
    capacity among more downloads.
    """

    name = "flash_crowd_shared"
    description = "arrival surge onto shared links; congestion emerges from load"

    def __init__(
        self,
        session_multiplier: float = 3.0,
        day_slots: int = 64,
        surge_slot: int = 16,
        surge_width: int = 8,
        surge_fraction: float = 0.7,
    ) -> None:
        if session_multiplier < 1.0:
            raise ValueError("session_multiplier must be at least 1")
        if day_slots <= 0 or surge_width <= 0:
            raise ValueError("day_slots and surge_width must be positive")
        if not 0 <= surge_slot < day_slots:
            raise ValueError("surge_slot must fall inside the day")
        if not 0 <= surge_fraction <= 1:
            raise ValueError("surge_fraction must be in [0, 1]")
        self.session_multiplier = session_multiplier
        self.day_slots = day_slots
        self.surge_slot = surge_slot
        self.surge_width = surge_width
        self.surge_fraction = surge_fraction

    def sessions_for(self, profile: UserProfile, rng: np.random.Generator) -> int:
        return max(1, int(round(profile.sessions_per_day * self.session_multiplier)))

    def start_for(
        self, profile: UserProfile, session_index: int, rng: np.random.Generator
    ) -> int:
        if rng.random() < self.surge_fraction:
            return int(self.surge_slot + rng.integers(self.surge_width))
        return int(rng.integers(self.day_slots))


class LinkOutageScenario(Scenario):
    """One edge link loses capacity mid-day (default: halved).

    Session arrivals spread uniformly over the day, so the outage window
    catches live traffic: sessions on the degraded link see their fair
    shares collapse while the window lasts, and the other links are
    untouched — a clean natural experiment for per-link telemetry.
    """

    name = "link_outage"
    description = "a link loses half its capacity for a mid-day window"

    def __init__(
        self,
        link_id: str | None = None,
        outage_start: int = 16,
        outage_end: int = 40,
        capacity_multiplier: float = 0.5,
        day_slots: int = 64,
    ) -> None:
        if day_slots <= 0:
            raise ValueError("day_slots must be positive")
        self.link_id = link_id
        self.outage_start = outage_start
        self.outage_end = outage_end
        self.capacity_multiplier = capacity_multiplier
        self.day_slots = day_slots

    def target_link(self, topology: NetworkTopology) -> str:
        """Link hit by the outage: explicit id, else the largest link."""
        if self.link_id is not None:
            return self.link_id
        return max(
            topology.links, key=lambda link: (link.capacity_kbps, link.link_id)
        ).link_id

    def network_for(self, topology: NetworkTopology) -> NetworkTopology:
        return topology.with_event(
            self.target_link(topology),
            LinkEvent(self.outage_start, self.outage_end, self.capacity_multiplier),
        )

    def start_for(
        self, profile: UserProfile, session_index: int, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(self.day_slots))


class EveningPeakScenario(Scenario):
    """Diurnal cross-traffic peak with session arrivals skewed into it.

    Every link carries a smooth background-load cycle peaking in the
    "evening" (a fraction of the day), and arrival times lean toward that
    peak (triangular distribution), so utilization and congestion build up
    over the simulated day the way platform evening peaks do.
    """

    name = "evening_peak"
    description = "diurnal cross-traffic peak; arrivals skew into the evening"

    def __init__(
        self,
        day_slots: int = 64,
        peak_phase: float = 0.75,
        cross_traffic_fraction: float = 0.35,
    ) -> None:
        if day_slots <= 0:
            raise ValueError("day_slots must be positive")
        if not 0 <= peak_phase <= 1:
            raise ValueError("peak_phase must be in [0, 1]")
        if not 0 <= cross_traffic_fraction < 1:
            raise ValueError("cross_traffic_fraction must be in [0, 1)")
        self.day_slots = day_slots
        self.peak_phase = peak_phase
        self.cross_traffic_fraction = cross_traffic_fraction

    def network_for(self, topology: NetworkTopology) -> NetworkTopology:
        links = tuple(
            link
            if link.cross_traffic is not None
            else replace(
                link,
                cross_traffic=CrossTraffic(
                    base_kbps=0.0,
                    peak_kbps=link.capacity_kbps * self.cross_traffic_fraction,
                    period=self.day_slots,
                    phase=self.peak_phase,
                ),
            )
            for link in topology.links
        )
        return replace(topology, links=links)

    def start_for(
        self, profile: UserProfile, session_index: int, rng: np.random.Generator
    ) -> int:
        mode = self.peak_phase * self.day_slots
        draw = rng.triangular(0.0, mode, self.day_slots)
        return min(int(draw), self.day_slots - 1)


class CacheStormScenario(Scenario):
    """Edge caches go cold: most downloads traverse the full upstream path.

    On a multi-tier topology (:class:`~repro.net.topology.CacheModel` +
    ``EdgeLink.uplinks``) the scenario replaces the cache with a much colder
    one and multiplies session counts with a surge window, so miss traffic
    floods the peering and origin tiers — the CDN cache-storm regime where
    edge capacity is fine but upstream links melt.  On flat topologies the
    cache override is inert and the scenario degrades to an arrival surge.
    """

    name = "cache_storm"
    description = "cold CDN caches push an arrival surge onto peering/origin"

    def __init__(
        self,
        hit_ratio: float = 0.1,
        session_multiplier: float = 2.0,
        day_slots: int = 64,
        surge_slot: int = 12,
        surge_width: int = 12,
        surge_fraction: float = 0.6,
    ) -> None:
        if not 0.0 <= hit_ratio <= 1.0:
            raise ValueError("hit_ratio must be in [0, 1]")
        if session_multiplier < 1.0:
            raise ValueError("session_multiplier must be at least 1")
        if day_slots <= 0 or surge_width <= 0:
            raise ValueError("day_slots and surge_width must be positive")
        if not 0 <= surge_slot < day_slots:
            raise ValueError("surge_slot must fall inside the day")
        if not 0 <= surge_fraction <= 1:
            raise ValueError("surge_fraction must be in [0, 1]")
        self.hit_ratio = hit_ratio
        self.session_multiplier = session_multiplier
        self.day_slots = day_slots
        self.surge_slot = surge_slot
        self.surge_width = surge_width
        self.surge_fraction = surge_fraction

    def network_for(self, topology: NetworkTopology) -> NetworkTopology:
        salt = topology.cache.salt if topology.cache is not None else "cdn-cache"
        return replace(topology, cache=CacheModel(self.hit_ratio, salt=salt))

    def sessions_for(self, profile: UserProfile, rng: np.random.Generator) -> int:
        return max(1, int(round(profile.sessions_per_day * self.session_multiplier)))

    def start_for(
        self, profile: UserProfile, session_index: int, rng: np.random.Generator
    ) -> int:
        if rng.random() < self.surge_fraction:
            return int(self.surge_slot + rng.integers(self.surge_width))
        return int(rng.integers(self.day_slots))


class _TierEventScenario(Scenario):
    """Shared machinery: a capacity event on every link of one tier.

    Subclasses fix the tier; when the topology has no link of that tier the
    event falls back to the largest link (so the scenario still produces a
    mid-day capacity shock on flat topologies).
    """

    tier = "origin"

    def __init__(
        self,
        event_start: int = 16,
        event_end: int = 40,
        capacity_multiplier: float = 0.35,
        day_slots: int = 64,
    ) -> None:
        if day_slots <= 0:
            raise ValueError("day_slots must be positive")
        self.event_start = event_start
        self.event_end = event_end
        self.capacity_multiplier = capacity_multiplier
        self.day_slots = day_slots

    def target_links(self, topology: NetworkTopology) -> list[str]:
        """Every link of the target tier, else the largest link."""
        targets = [
            link.link_id for link in topology.links if link.tier == self.tier
        ]
        if targets:
            return targets
        fallback = max(
            topology.links, key=lambda link: (link.capacity_kbps, link.link_id)
        )
        return [fallback.link_id]

    def network_for(self, topology: NetworkTopology) -> NetworkTopology:
        event = LinkEvent(self.event_start, self.event_end, self.capacity_multiplier)
        for link_id in self.target_links(topology):
            topology = topology.with_event(link_id, event)
        return topology

    def start_for(
        self, profile: UserProfile, session_index: int, rng: np.random.Generator
    ) -> int:
        return int(rng.integers(self.day_slots))


class OriginOverloadScenario(_TierEventScenario):
    """The CDN origin loses most of its capacity for a mid-day window.

    Cache misses from every edge funnel through the origin link, so the
    window throttles exactly the miss traffic: edge-only (cache-hit)
    downloads sail on while full-path sessions collapse to the origin's
    shrunken fair shares — the telemetry signature is origin-tier rows
    pinned at utilization 1.0 with edge rows mostly idle.
    """

    name = "origin_overload"
    description = "origin-tier links lose capacity mid-day; misses feel it"
    tier = "origin"


class PeeringBrownoutScenario(_TierEventScenario):
    """ISP peering links brown out (partial capacity) for a mid-day window.

    Peering sits between the edges and the origin, so the brownout splits
    the fleet by path: sessions whose edge feeds the browned-out peering
    link lose miss throughput, sessions on other edges are untouched — an
    ISP-vs-ISP asymmetry natural experiment.
    """

    name = "peering_brownout"
    description = "peering-tier links brown out for a mid-day window"
    tier = "peering"

    def __init__(
        self,
        event_start: int = 20,
        event_end: int = 44,
        capacity_multiplier: float = 0.4,
        day_slots: int = 64,
    ) -> None:
        super().__init__(event_start, event_end, capacity_multiplier, day_slots)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[[], Scenario]] = {}


def register_scenario(name: str, factory: Callable[[], Scenario]) -> None:
    """Register a scenario factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(scenario: str | Scenario | None) -> Scenario:
    """Resolve a scenario name (or pass an instance through, or default)."""
    if scenario is None:
        return SteadyStateScenario()
    if isinstance(scenario, Scenario):
        return scenario
    try:
        factory = _REGISTRY[scenario]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario!r}; available: {available_scenarios()}"
        ) from None
    return factory()


register_scenario("steady_state", SteadyStateScenario)
register_scenario("flash_crowd", FlashCrowdScenario)
register_scenario("regional_degradation", RegionalDegradationScenario)
register_scenario("device_mix", DeviceMixScenario)
register_scenario("flash_crowd_shared", FlashCrowdSharedScenario)
register_scenario("link_outage", LinkOutageScenario)
register_scenario("evening_peak", EveningPeakScenario)
register_scenario("cache_storm", CacheStormScenario)
register_scenario("origin_overload", OriginOverloadScenario)
register_scenario("peering_brownout", PeeringBrownoutScenario)
