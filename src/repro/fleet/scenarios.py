"""Workload scenarios for fleet runs.

A :class:`Scenario` tells the orchestrator how a simulated day of traffic
looks for each user: how many sessions they play, what their network looks
like while they play, and what catalogue their device pulls videos from.
Scenarios are plain picklable objects so they travel to worker processes
unchanged, and all randomness flows through the per-shard RNG the orchestrator
hands in — the same seed always produces the same traffic.

Four workloads ship built-in (the registry is open for more):

``steady_state``
    Every user behaves exactly like their profile says — the baseline.
``flash_crowd``
    A platform-wide event multiplies per-user session counts while CDN
    congestion scales everyone's bandwidth down.
``regional_degradation``
    A deterministic fraction of users (a "region") sees their network degraded
    to a fraction of its mean and turned bursty (Markov-modulated), as in an
    access-network outage.
``device_mix``
    Heterogeneous devices: mobile users get a truncated low-rung ladder and
    short videos, TV users get the full ladder and long videos.
"""

from __future__ import annotations

import hashlib
from typing import Callable

import numpy as np

from repro.sim.bandwidth import BandwidthTrace, MarkovTraceGenerator
from repro.sim.video import BitrateLadder, Video, VideoLibrary
from repro.users.population import UserProfile


def stable_fraction(user_id: str, salt: str = "") -> float:
    """Deterministic pseudo-uniform value in [0, 1) derived from a user id.

    Unlike ``hash()`` this is stable across processes and Python runs, so the
    same users land in the same scenario cohort in every shard and worker.
    """
    digest = hashlib.md5(
        f"{salt}:{user_id}".encode(), usedforsecurity=False
    ).hexdigest()
    return int(digest[:8], 16) / float(0x100000000)


class Scenario:
    """Baseline workload: users follow their own profiles (steady state)."""

    name = "steady_state"
    description = "every user plays their profile's sessions on their own network"

    def sessions_for(self, profile: UserProfile, rng: np.random.Generator) -> int:
        """Number of sessions this user plays today."""
        return profile.sessions_per_day

    def trace_for(
        self, profile: UserProfile, rng: np.random.Generator, length: int
    ) -> BandwidthTrace:
        """Bandwidth trace the user's sessions run over today."""
        return profile.bandwidth_trace(length, rng)

    def video_for(
        self, profile: UserProfile, library: VideoLibrary, rng: np.random.Generator
    ) -> Video:
        """Video the user plays next."""
        return library.sample(rng)


class SteadyStateScenario(Scenario):
    """Alias of the baseline for registry symmetry."""


class FlashCrowdScenario(Scenario):
    """Platform-wide event: everyone watches more while the CDN saturates."""

    name = "flash_crowd"
    description = "session counts multiplied, bandwidth scaled down by congestion"

    def __init__(self, session_multiplier: float = 3.0, congestion_factor: float = 0.55) -> None:
        if session_multiplier < 1.0:
            raise ValueError("session_multiplier must be at least 1")
        if not 0 < congestion_factor <= 1.0:
            raise ValueError("congestion_factor must be in (0, 1]")
        self.session_multiplier = session_multiplier
        self.congestion_factor = congestion_factor

    def sessions_for(self, profile: UserProfile, rng: np.random.Generator) -> int:
        return max(1, int(round(profile.sessions_per_day * self.session_multiplier)))

    def trace_for(
        self, profile: UserProfile, rng: np.random.Generator, length: int
    ) -> BandwidthTrace:
        trace = profile.bandwidth_trace(length, rng)
        return trace.scaled(self.congestion_factor, name=f"{trace.name}_crowd")


class RegionalDegradationScenario(Scenario):
    """A fixed cohort of users sits behind a degraded, bursty access network."""

    name = "regional_degradation"
    description = "a deterministic user cohort gets degraded bursty bandwidth"

    def __init__(
        self,
        affected_fraction: float = 0.3,
        degradation_factor: float = 0.3,
        salt: str = "region",
    ) -> None:
        if not 0 <= affected_fraction <= 1:
            raise ValueError("affected_fraction must be in [0, 1]")
        if not 0 < degradation_factor <= 1:
            raise ValueError("degradation_factor must be in (0, 1]")
        self.affected_fraction = affected_fraction
        self.degradation_factor = degradation_factor
        self.salt = salt

    def is_affected(self, profile: UserProfile) -> bool:
        """True when the user belongs to the degraded region."""
        return stable_fraction(profile.user_id, self.salt) < self.affected_fraction

    def trace_for(
        self, profile: UserProfile, rng: np.random.Generator, length: int
    ) -> BandwidthTrace:
        if not self.is_affected(profile):
            return profile.bandwidth_trace(length, rng)
        degraded_mean = max(profile.mean_bandwidth_kbps * self.degradation_factor, 50.0)
        generator = MarkovTraceGenerator(
            good_mean_kbps=degraded_mean * 1.2,
            bad_mean_kbps=max(degraded_mean * 0.3, 30.0),
            good_std_kbps=degraded_mean * 0.3,
            bad_std_kbps=degraded_mean * 0.15,
            p_good_to_bad=0.25,
            p_bad_to_good=0.2,
        )
        return generator.generate(length, rng, name=f"{profile.user_id}_degraded")


class DeviceMixScenario(Scenario):
    """Heterogeneous device/ladder mix: mobile, desktop and TV catalogues."""

    name = "device_mix"
    description = "users split across mobile/desktop/TV ladders and video lengths"

    DEVICE_CLASSES: tuple[str, ...] = ("mobile", "desktop", "tv")

    def __init__(
        self,
        ladder: BitrateLadder | None = None,
        mobile_fraction: float = 0.5,
        tv_fraction: float = 0.2,
        num_videos: int = 8,
        seed: int = 0,
        salt: str = "device",
    ) -> None:
        if mobile_fraction < 0 or tv_fraction < 0 or mobile_fraction + tv_fraction > 1:
            raise ValueError("device fractions must be non-negative and sum to <= 1")
        base = ladder or BitrateLadder()
        self.mobile_fraction = mobile_fraction
        self.tv_fraction = tv_fraction
        self.salt = salt
        mobile_ladder = BitrateLadder(
            bitrates_kbps=base.bitrates_kbps[: max(2, base.num_levels - 1)]
        )
        self.libraries: dict[str, VideoLibrary] = {
            "mobile": VideoLibrary(
                ladder=mobile_ladder, num_videos=num_videos, mean_duration=30.0,
                std_duration=10.0, seed=seed + 11,
            ),
            "desktop": VideoLibrary(
                ladder=base, num_videos=num_videos, mean_duration=60.0,
                std_duration=20.0, seed=seed + 12,
            ),
            "tv": VideoLibrary(
                ladder=base, num_videos=num_videos, mean_duration=120.0,
                std_duration=30.0, seed=seed + 13,
            ),
        }

    def device_for(self, profile: UserProfile) -> str:
        """Deterministic device class of a user."""
        draw = stable_fraction(profile.user_id, self.salt)
        if draw < self.mobile_fraction:
            return "mobile"
        if draw < self.mobile_fraction + self.tv_fraction:
            return "tv"
        return "desktop"

    def video_for(
        self, profile: UserProfile, library: VideoLibrary, rng: np.random.Generator
    ) -> Video:
        return self.libraries[self.device_for(profile)].sample(rng)


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[[], Scenario]] = {}


def register_scenario(name: str, factory: Callable[[], Scenario]) -> None:
    """Register a scenario factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_scenarios() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(scenario: str | Scenario | None) -> Scenario:
    """Resolve a scenario name (or pass an instance through, or default)."""
    if scenario is None:
        return SteadyStateScenario()
    if isinstance(scenario, Scenario):
        return scenario
    try:
        factory = _REGISTRY[scenario]
    except KeyError:
        raise KeyError(
            f"unknown scenario {scenario!r}; available: {available_scenarios()}"
        ) from None
    return factory()


register_scenario("steady_state", SteadyStateScenario)
register_scenario("flash_crowd", FlashCrowdScenario)
register_scenario("regional_degradation", RegionalDegradationScenario)
register_scenario("device_mix", DeviceMixScenario)
