"""Structured JSONL telemetry for fleet runs.

Every line of a telemetry file is one event record::

    {"run_id": ..., "shard": ..., "user_id": ..., "event": ..., "payload": {...}}

following the structured-trace-log convention of large-scale simulators: one
event per line, self-describing and replayable.  A writer owns one run's file
(opening a path truncates it), and events are only ever appended during the
run.  Event types emitted by the orchestrator:

``run_start``
    One per run; payload carries the fleet configuration summary.
``session``
    One per playback session; payload carries the full session log (per-segment
    records included) so a telemetry file can be replayed into a
    :class:`~repro.analytics.logs.LogCollection` that is *exactly* equal to the
    in-memory one — floats survive the JSON roundtrip bit-for-bit.
``shard_summary``
    One per shard; payload carries the shard's session/segment counters.
``link_utilization``
    Networked runs only: one per edge link per simulation slot, carrying the
    link's usable capacity, the number of sessions actively downloading, and
    their total demand and allocation — the raw material for congestion
    analytics (:class:`~repro.analytics.logs.LinkUtilizationLog`).
``run_report``
    Profiled runs only (observability enabled): one per run, carrying the
    run health report of :func:`repro.obs.build_run_report` — merged span
    tree, metrics snapshot, throughput and peak RSS.
``run_end``
    One per run; payload carries the fleet-level metrics plus the backend
    fallback counters (``last/total_fallback_sessions``,
    ``total_batch_sessions``).

The replay/loader API (:func:`read_events`, :func:`replay_log_collection`,
:func:`replay_link_utilization`) feeds the existing analytics layer, so
every §2-style aggregation works on a telemetry file exactly as it does on
live simulation output.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.analytics.logs import LinkUtilizationLog, LogCollection, SessionLog
from repro.net.allocator import LinkUsageSample
from repro.sim.session import PlaybackTrace, SegmentRecord


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured telemetry record."""

    run_id: str
    shard: int
    user_id: str
    event: str
    payload: dict

    def to_json(self) -> str:
        """Single-line JSON form of the event."""
        return json.dumps(
            {
                "run_id": self.run_id,
                "shard": self.shard,
                "user_id": self.user_id,
                "event": self.event,
                "payload": self.payload,
            },
            default=_to_builtin,
        )

    @classmethod
    def from_json(cls, line: str) -> "TelemetryEvent":
        """Parse one JSONL line."""
        raw = json.loads(line)
        return cls(
            run_id=str(raw["run_id"]),
            shard=int(raw["shard"]),
            user_id=str(raw["user_id"]),
            event=str(raw["event"]),
            payload=dict(raw.get("payload", {})),
        )


def _to_builtin(value):
    """JSON fallback for numpy scalars/arrays."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    raise TypeError(f"not JSON serialisable: {type(value)!r}")


class TelemetryWriter:
    """JSONL event writer for one run (usable as a context manager).

    Opening a path truncates it — one telemetry file describes exactly one
    run, which is what keeps :func:`replay_log_collection` equal to the live
    run's collection.  ``append=True`` keeps existing events instead: that is
    how a *resumed* longitudinal campaign continues its ``campaign.jsonl``
    without destroying the pre-crash decision history.
    """

    def __init__(self, path: str | Path, append: bool = False) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self.path.open("a" if append else "w")
        self.events_written = 0

    def emit(self, event: TelemetryEvent) -> None:
        """Write one event as a JSON line."""
        self._handle.write(event.to_json())
        self._handle.write("\n")
        self.events_written += 1

    def emit_many(self, events: Iterable[TelemetryEvent]) -> None:
        """Write several events in order."""
        for event in events:
            self.emit(event)

    def write_raw(self, data: bytes) -> None:
        """Append pre-encoded JSONL bytes (newline-terminated lines).

        This is the shared-memory drain path of the pooled fleet: a worker
        encodes its shard's events once (:func:`encode_shard_events`) and the
        parent streams the blob to disk without re-serialising.  The bytes
        are exactly what :meth:`emit` would have written for the same events,
        so replay readers cannot tell the two paths apart.
        """
        if not data:
            return
        if not data.endswith(b"\n"):
            raise ValueError("raw telemetry blobs must be newline-terminated")
        self._handle.write(data.decode("utf-8"))
        self.events_written += data.count(b"\n")

    def close(self) -> None:
        """Flush and close the file."""
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "TelemetryWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def iter_event_lines(path: str | Path) -> Iterator[tuple[int, bytes]]:
    """Stream ``(byte_offset, raw_line)`` pairs of a telemetry JSONL file.

    The low-level iteration primitive shared by :func:`read_events` and the
    out-of-core reader (:mod:`repro.obs.telemetry_reader`): byte offsets are
    what make a chunked index seekable, and lines are yielded one at a time
    so memory stays bounded regardless of file size.  Blank lines are
    yielded too (with their offsets) — callers decide how to treat them —
    so offsets always add up to the file size.
    """
    offset = 0
    with Path(path).open("rb") as handle:
        for line in handle:
            yield offset, line
            offset += len(line)


def read_events(path: str | Path) -> Iterator[TelemetryEvent]:
    """Stream the events of a telemetry JSONL file in order."""
    for _offset, raw in iter_event_lines(path):
        line = raw.strip()
        if line:
            yield TelemetryEvent.from_json(line.decode("utf-8"))


# --------------------------------------------------------------------------- #
# Session (de)serialisation
# --------------------------------------------------------------------------- #
def session_payload(log: SessionLog) -> dict:
    """Full JSON payload of one session log (replayable without loss)."""
    trace = log.trace
    return {
        "day": int(log.day),
        "session_index": int(log.session_index),
        "mean_bandwidth_kbps": float(log.mean_bandwidth_kbps),
        "video_duration": float(trace.video_duration),
        "segment_duration": float(trace.segment_duration),
        "trace_name": str(trace.trace_name),
        "exited_early": bool(trace.exited_early),
        "records": [asdict(record) for record in trace.records],
    }


def session_from_payload(user_id: str, payload: dict) -> SessionLog:
    """Inverse of :func:`session_payload`."""
    trace = PlaybackTrace(
        user_id=user_id,
        video_duration=float(payload["video_duration"]),
        segment_duration=float(payload["segment_duration"]),
        trace_name=str(payload["trace_name"]),
        records=[SegmentRecord(**raw) for raw in payload["records"]],
        exited_early=bool(payload["exited_early"]),
    )
    return SessionLog(
        user_id=user_id,
        day=int(payload["day"]),
        session_index=int(payload["session_index"]),
        trace=trace,
        mean_bandwidth_kbps=float(payload["mean_bandwidth_kbps"]),
    )


def session_event(run_id: str, shard: int, log: SessionLog) -> TelemetryEvent:
    """Build the ``session`` event for one session log."""
    return TelemetryEvent(
        run_id=run_id,
        shard=shard,
        user_id=log.user_id,
        event="session",
        payload=session_payload(log),
    )


def link_utilization_event(
    run_id: str, shard: int, sample: LinkUsageSample
) -> TelemetryEvent:
    """Build the ``link_utilization`` event for one per-slot link sample."""
    return TelemetryEvent(
        run_id=run_id,
        shard=shard,
        user_id="",
        event="link_utilization",
        payload=sample.as_payload(),
    )


def shard_summary_event(run_id: str, output) -> TelemetryEvent:
    """Build the ``shard_summary`` event for one shard output."""
    return TelemetryEvent(
        run_id=run_id,
        shard=output.shard_index,
        user_id="",
        event="shard_summary",
        payload={
            "num_sessions": len(output.sessions),
            "num_segments": output.num_segments,
            "wall_time_s": output.wall_time_s,
            "fallback_sessions": output.fallback_sessions,
            "batch_sessions": output.batch_sessions,
        },
    )


def iter_shard_events(run_id: str, output) -> Iterator[TelemetryEvent]:
    """All telemetry events of one shard output, in canonical order.

    ``output`` is a :class:`~repro.fleet.orchestrator.ShardOutput` (duck
    typed to avoid a module cycle).  Both telemetry paths run through this
    generator — the orchestrator writing inline results, and pool workers
    pre-encoding their shard's blob — which is what makes pooled telemetry
    byte-identical to inline telemetry.
    """
    for log in output.sessions:
        yield session_event(run_id, output.shard_index, log)
    for sample in output.link_usage:
        yield link_utilization_event(run_id, output.shard_index, sample)
    yield shard_summary_event(run_id, output)


def encode_events(events: Iterable[TelemetryEvent]) -> bytes:
    """Encode events to the exact bytes :class:`TelemetryWriter` would write."""
    return "".join(event.to_json() + "\n" for event in events).encode("utf-8")


def encode_shard_events(run_id: str, output) -> bytes:
    """One shard's telemetry as a raw JSONL blob (the pool's shm payload)."""
    return encode_events(iter_shard_events(run_id, output))


def replay_link_usage(events: Iterable[TelemetryEvent]) -> list[LinkUsageSample]:
    """Reconstruct the link-usage samples recorded in a stream of events."""
    return [
        LinkUsageSample.from_payload(event.payload)
        for event in events
        if event.event == "link_utilization"
    ]


def replay_link_utilization(path: str | Path) -> LinkUtilizationLog:
    """Load a networked run's telemetry back into a link-utilization log.

    Like :func:`replay_log_collection`, the result is value-equal to the
    live run's ``FleetResult.link_utilization()``: every float survives the
    JSON roundtrip exactly.
    """
    samples = replay_link_usage(read_events(path))
    if not samples:
        raise ValueError(f"no link_utilization events found in {path}")
    return LinkUtilizationLog(samples)


def replay_sessions(events: Iterable[TelemetryEvent]) -> list[SessionLog]:
    """Reconstruct the session logs recorded in a stream of events."""
    return [
        session_from_payload(event.user_id, event.payload)
        for event in events
        if event.event == "session"
    ]


def replay_log_collection(path: str | Path) -> LogCollection:
    """Load a telemetry file back into a :class:`LogCollection`.

    The result is value-equal to the live run's collection: every float in a
    segment record survives the JSON write→read roundtrip exactly, so all
    aggregations (exit rate by stall bin, watch time by QoS, …) match the
    in-memory ones bit-for-bit.

    A telemetry file with events but **no** ``session`` events replays into an
    empty collection — that is what a zero-arrival day of a longitudinal
    campaign writes (``run_start``/``run_end`` only).  A file with no events
    at all is rejected: it is not fleet telemetry.
    """
    sessions: list[SessionLog] = []
    saw_event = False
    for event in read_events(path):
        saw_event = True
        if event.event == "session":
            sessions.append(session_from_payload(event.user_id, event.payload))
    if not saw_event:
        raise ValueError(f"no telemetry events found in {path}")
    return LogCollection(sessions)


def replay_run_summary(path: str | Path, run_id: str | None = None) -> dict:
    """The ``run_end`` payload of a run recorded in a telemetry file.

    This is where the fleet-level metrics *and* the backend fallback
    counters surface on replay.  ``run_id`` selects one run of a
    multi-run file (a longitudinal campaign's day stream); by default the
    last ``run_end`` wins.
    """
    summary: dict | None = None
    for event in read_events(path):
        if event.event == "run_end" and (run_id is None or event.run_id == run_id):
            summary = event.payload
    if summary is None:
        raise ValueError(f"no run_end event found in {path}")
    return summary


def replay_run_report(path: str | Path, run_id: str | None = None) -> dict | None:
    """The ``run_report`` payload recorded in a telemetry file, if any.

    Returns ``None`` for unprofiled runs — absence of a health report is
    normal, unlike absence of a ``run_end``.
    """
    report: dict | None = None
    for event in read_events(path):
        if event.event == "run_report" and (
            run_id is None or event.run_id == run_id
        ):
            report = event.payload
    return report
