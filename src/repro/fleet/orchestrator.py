"""Sharded multi-user fleet orchestration.

:class:`FleetOrchestrator` turns the single-session engine into a platform
simulator: a :class:`~repro.users.population.UserPopulation` is split into
``num_shards`` deterministic shards, each shard simulates all of its users'
sessions for one simulated day (scenario-shaped traffic, per-user ABR state,
per-user exit behaviour), and the shards run concurrently on the persistent
shared-memory worker pool of :mod:`repro.fleet.pool`.  Results come back in
shard order, so fleet metrics are identical for a given ``(seed,
num_shards)`` no matter how many worker processes execute the shards —
including zero (inline execution).

Determinism contract
--------------------
* Sharding is round-robin by population index (``UserPopulation.shards``).
* Shard ``i`` draws all of its randomness from child ``i`` of
  ``numpy.random.SeedSequence(seed)``.
* Per-user controller seeds are drawn from the shard stream in user order.

ABR factories
-------------
Worker processes need picklable factories, so the fleet defines its own
two-argument protocol ``factory(profile, seed) -> ABRAlgorithm`` with two
implementations: :class:`HybFleetFactory` (the production baseline) and
:class:`LingXiFleetFactory` (per-user LingXi controllers whose Monte-Carlo
evaluator is swapped for the batched lockstep one of
:mod:`repro.fleet.batched`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from repro import obs
from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.obs import live as obs_live
from repro.abr.hyb import HYB
from repro.analytics.logs import LogCollection, SessionLog
from repro.core.controller import ControllerConfig, LingXiABR, LingXiController
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig
from repro.core.parameter_space import ParameterSpace
from repro.core.persistence import controller_state_payload, restore_controller_state
from repro.core.triggers import TriggerPolicy
from repro.fleet.batched import BatchedMonteCarloEvaluator
from repro.fleet.pool import ShardDescriptor, WorkerPool, shared_pool
from repro.fleet.scenarios import Scenario, get_scenario
from repro.fleet.telemetry import (
    TelemetryEvent,
    TelemetryWriter,
    iter_shard_events,
)
from repro.net.allocator import LinkUsageSample
from repro.net.topology import (
    ALLOCATORS,
    NetworkTopology,
    get_topology,
    stable_user_key,
)
from repro.sim.backend import SessionSpec, get_backend
from repro.sim.session import PlaybackSession, SessionConfig
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation, UserProfile


class HybFleetFactory:
    """Picklable per-user factory for the HYB production baseline."""

    def __init__(self, parameters: QoEParameters | None = None) -> None:
        self.parameters = parameters or QoEParameters()

    def __call__(self, profile: UserProfile, seed: int) -> ABRAlgorithm:
        """Fresh HYB instance for one user."""
        return HYB(parameters=self.parameters)


class LingXiFleetFactory:
    """Picklable per-user factory building LingXi-wrapped HYB controllers.

    Each user gets their own :class:`LingXiController` whose sequential
    Monte-Carlo evaluator is replaced by the batched lockstep evaluator, so
    candidate scoring inside a shard batches its NN inference.
    """

    def __init__(
        self,
        predictor: ExitRatePredictor,
        parameter_space: ParameterSpace | None = None,
        monte_carlo: MonteCarloConfig | None = None,
        controller_config: ControllerConfig | None = None,
        trigger: TriggerPolicy | None = None,
        baseline_parameters: QoEParameters | None = None,
    ) -> None:
        self.predictor = predictor
        self.parameter_space = parameter_space or ParameterSpace.for_hyb()
        self.monte_carlo = monte_carlo or MonteCarloConfig(num_samples=3)
        self.controller_config = controller_config or ControllerConfig(max_sample_times=3)
        self.trigger = trigger or TriggerPolicy()
        self.baseline_parameters = baseline_parameters or QoEParameters()

    def __call__(self, profile: UserProfile, seed: int) -> ABRAlgorithm:
        """Fresh LingXi(HYB) instance for one user."""
        controller = LingXiController(
            parameter_space=self.parameter_space,
            predictor=self.predictor,
            monte_carlo=self.monte_carlo,
            trigger=self.trigger,
            config=replace(self.controller_config, seed=seed),
        )
        controller.evaluator = BatchedMonteCarloEvaluator(
            self.predictor, config=self.monte_carlo, pruning=controller.pruning
        )
        return LingXiABR(HYB(parameters=self.baseline_parameters), controller)


@dataclass(frozen=True)
class FleetConfig:
    """Knobs of one fleet run."""

    num_shards: int = 4
    #: Worker processes for the pool; ``None`` → ``min(num_shards, cpu)``,
    #: ``0`` or ``1`` → run shards inline (no pool).
    num_workers: int | None = None
    #: Override of every user's sessions-per-day (scenario multipliers still
    #: apply on top); ``None`` keeps each profile's own activity level.
    sessions_per_user: int | None = None
    trace_length: int = 120
    seed: int = 0
    day: int = 0
    session_config: SessionConfig = field(default_factory=SessionConfig)
    #: Simulation backend executing each shard's sessions.  ``"scalar"`` is
    #: the classic per-session loop with a shared shard RNG; any other
    #: registered backend (e.g. ``"vector"``) routes the shard through
    #: :class:`~repro.sim.backend.SessionSpec` batches with per-session
    #: `Philox` substreams.
    backend: str = "scalar"
    #: Shared-bottleneck network substrate: a registered topology name (or a
    #: :class:`~repro.net.topology.NetworkTopology` instance), or ``None``
    #: for the classic uncoupled mode.  Networked runs shard users **by edge
    #: link** (so allocation coupling stays intra-shard), route every shard
    #: through the spec-batched path regardless of backend, and emit
    #: per-slot link-utilization telemetry.
    network: str | NetworkTopology | None = None
    #: Rate-control algorithm override for networked runs: a name from
    #: :data:`repro.net.topology.ALLOCATORS` (``"max_min_fair"`` /
    #: ``"low_lapsley"``), or ``None`` to keep whatever the topology itself
    #: selects.  Applied after scenario shaping, so one fleet config can A/B
    #: allocators on any registered topology.
    allocator: str | None = None
    #: Force the spec-batched shard path even for un-networked
    #: ``backend="scalar"`` runs.  On that path both backends resolve the
    #: same per-user identity-keyed RNG substreams, so a scalar run is
    #: **bit-identical** to a vector run of the same config — the property
    #: longitudinal campaigns pin across backends.  ``False`` keeps the
    #: historical shared-shard-RNG scalar loop.
    spec_batched: bool = False

    def __post_init__(self) -> None:
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")
        get_backend(self.backend)  # fail fast on unknown backend names
        get_topology(self.network)  # ... and unknown topology names
        if self.allocator is not None:
            if self.allocator not in ALLOCATORS:
                raise ValueError(
                    f"unknown allocator {self.allocator!r}; "
                    f"available: {list(ALLOCATORS)}"
                )
            if self.network is None:
                raise ValueError("allocator requires a networked run (network=...)")
        if self.num_workers is not None and self.num_workers < 0:
            raise ValueError("num_workers must be non-negative")
        if self.sessions_per_user is not None and self.sessions_per_user <= 0:
            raise ValueError("sessions_per_user must be positive")
        if self.trace_length <= 0:
            raise ValueError("trace_length must be positive")


@dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs to simulate one shard (picklable)."""

    run_id: str
    shard_index: int
    seed_seq: np.random.SeedSequence
    profiles: tuple[UserProfile, ...]
    scenario: Scenario
    library: VideoLibrary
    abr_factory: Callable[[UserProfile, int], ABRAlgorithm]
    sessions_per_user: int | None
    trace_length: int
    day: int
    session_config: SessionConfig
    controller_states: dict[str, dict] = field(default_factory=dict)
    backend: str = "scalar"
    spec_batched: bool = False
    #: Root fleet seed, used by the spec-batched path to key per-user
    #: `SeedSequence` substreams by user *identity* (md5) instead of shard
    #: position — the property that makes batched fleet runs invariant to
    #: shard and worker counts.
    seed: int = 0
    #: Full (scenario-shaped) topology for networked runs, or ``None`` for
    #: the classic uncoupled mode.  User→link attachment must happen on the
    #: full topology (restriction renormalises ``user_share``); the engines
    #: then run on the restriction to ``shard_link_ids`` so each shard only
    #: allocates — and reports usage for — the links it owns.
    network: NetworkTopology | None = None
    shard_link_ids: tuple[str, ...] = ()
    #: Collect observability (spans + metrics) inside the shard worker and
    #: ship the snapshot back with the result.  Set by the orchestrator when
    #: the parent process has obs enabled; workers always run their own
    #: fresh collector (see :func:`repro.obs.collect`), so a fork-inherited
    #: parent collector is never mutated from a child.
    profile: bool = False


@dataclass
class ShardOutput:
    """What one shard hands back to the orchestrator."""

    shard_index: int
    sessions: list[SessionLog]
    controller_states: dict[str, dict]
    num_segments: int
    wall_time_s: float
    link_usage: list[LinkUsageSample] = field(default_factory=list)
    #: Sessions the batched backend bounced to the scalar reference engine
    #: (and the size of the batch they came from); zero on the classic
    #: scalar path, which has no fallback concept.
    fallback_sessions: int = 0
    batch_sessions: int = 0
    #: Serialised :meth:`repro.obs.Collector.snapshot` when the shard ran
    #: with ``profile=True``; the orchestrator grafts it into its own tree.
    obs: dict | None = None
    #: Pre-encoded telemetry JSONL for this shard (pooled runs only): the
    #: worker serialises its events once into the shared-memory arena and
    #: :func:`write_fleet_telemetry` streams the blob to disk verbatim.
    telemetry_blob: bytes | None = None


@dataclass(frozen=True)
class FleetMetrics:
    """Deterministic fleet-level aggregates (no wall-clock terms)."""

    num_sessions: int
    num_segments: int
    exited_sessions: int
    segment_exits: int
    total_watch_time_s: float
    total_stall_time_s: float
    mean_bitrate_kbps: float

    @property
    def session_exit_rate(self) -> float:
        """Fraction of sessions abandoned before the video ended."""
        return self.exited_sessions / self.num_sessions if self.num_sessions else 0.0

    @property
    def segment_exit_rate(self) -> float:
        """Exit probability per watched segment."""
        return self.segment_exits / self.num_segments if self.num_segments else 0.0

    def as_dict(self) -> dict:
        """Plain-dict view (telemetry payload)."""
        return {
            "num_sessions": self.num_sessions,
            "num_segments": self.num_segments,
            "exited_sessions": self.exited_sessions,
            "segment_exits": self.segment_exits,
            "total_watch_time_s": self.total_watch_time_s,
            "total_stall_time_s": self.total_stall_time_s,
            "mean_bitrate_kbps": self.mean_bitrate_kbps,
            "session_exit_rate": self.session_exit_rate,
            "segment_exit_rate": self.segment_exit_rate,
        }


@dataclass
class FleetResult:
    """Merged output of one fleet run."""

    run_id: str
    config: FleetConfig
    scenario_name: str
    logs: LogCollection
    shard_outputs: list[ShardOutput]
    controller_states: dict[str, dict]
    wall_time_s: float
    telemetry_path: Path | None = None
    #: Run health report (:func:`repro.obs.build_run_report`) when the run
    #: executed with observability enabled; ``None`` otherwise.
    obs_report: dict | None = None

    @property
    def total_fallback_sessions(self) -> int:
        """Sessions the batched backends bounced to the scalar engine."""
        return sum(output.fallback_sessions for output in self.shard_outputs)

    @property
    def total_batch_sessions(self) -> int:
        """Sessions that went through the spec-batched shard path."""
        return sum(output.batch_sessions for output in self.shard_outputs)

    @property
    def metrics(self) -> FleetMetrics:
        """Deterministic fleet-level aggregates over all shards."""
        return fleet_metrics(self.logs)

    @property
    def sessions_per_second(self) -> float:
        """Throughput of the run (sessions / wall-clock second)."""
        if self.wall_time_s <= 0:
            return float("inf")
        return len(self.logs) / self.wall_time_s

    @property
    def link_usage(self) -> list[LinkUsageSample]:
        """All shards' per-slot link-utilization samples, in shard order."""
        return [
            sample for output in self.shard_outputs for sample in output.link_usage
        ]

    def link_utilization(self):
        """:class:`~repro.analytics.logs.LinkUtilizationLog` over the run.

        Raises when the run was not networked (no usage samples).
        """
        from repro.analytics.logs import LinkUtilizationLog

        return LinkUtilizationLog(self.link_usage)


def fleet_metrics(logs: LogCollection) -> FleetMetrics:
    """Compute :class:`FleetMetrics` from a log collection."""
    num_segments = 0
    segment_exits = 0
    exited_sessions = 0
    watch_time = 0.0
    stall_time = 0.0
    bitrate_sum = 0.0
    for session in logs:
        trace = session.trace
        num_segments += len(trace)
        segment_exits += int(trace.exited_flags.sum())
        exited_sessions += int(trace.exited_early)
        watch_time += trace.watch_time
        stall_time += trace.total_stall_time
        bitrate_sum += float(trace.bitrates_kbps.sum())
    return FleetMetrics(
        num_sessions=len(logs),
        num_segments=num_segments,
        exited_sessions=exited_sessions,
        segment_exits=segment_exits,
        total_watch_time_s=watch_time,
        total_stall_time_s=stall_time,
        mean_bitrate_kbps=bitrate_sum / num_segments if num_segments else 0.0,
    )


def _run_shard(task: ShardTask) -> ShardOutput:
    """Simulate one shard: every user's sessions for one simulated day.

    Module-level so it pickles for the process pool; also called inline when
    the pool is disabled.  With ``task.profile`` the shard runs under a
    private obs collector (identical inline and in a forked worker) and the
    snapshot travels back in :attr:`ShardOutput.obs`.
    """
    # Heartbeat bracket: identical for inline and pooled execution (workers
    # run this very function), wall-clock only — a no-op without a live run.
    obs_live.begin_shard(task.shard_index, task.day)
    try:
        if not task.profile:
            output = _run_shard_impl(task)
        else:
            with obs.collect() as collector:
                with obs.span("shard.run"):
                    output = _run_shard_impl(task)
                output.obs = collector.snapshot()
    except BaseException as exc:
        obs_live.fail_shard(f"{type(exc).__name__}: {exc}"[:150])
        raise
    obs_live.finish_shard(len(output.sessions), output.num_segments)
    return output


def _run_shard_impl(task: ShardTask) -> ShardOutput:
    """Backend dispatch for one shard.

    ``backend="scalar"`` keeps the classic loop — one
    shared shard RNG threading through every session, preserving historical
    fleet numbers for the built-in factories (fixed-mode LingXi controllers
    are the exception: their candidate sweeps now use the batched
    ``evaluate_many`` path, which drops inter-candidate pruning); any other
    backend — and *every* networked run, whose coupled sessions only exist
    at the batch level — builds the shard's full
    :class:`~repro.sim.backend.SessionSpec` list up front and hands it to the
    backend as one batch with per-session RNG substreams.
    """
    if task.backend != "scalar" or task.network is not None or task.spec_batched:
        return _run_shard_batched(task)
    start = time.perf_counter()  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
    rng = np.random.default_rng(task.seed_seq)
    engine = PlaybackSession(task.session_config)
    sessions: list[SessionLog] = []
    controller_states: dict[str, dict] = {}
    num_segments = 0

    for profile in task.profiles:
        abr_seed = int(rng.integers(2**31 - 1))
        abr = task.abr_factory(profile, abr_seed)
        controller = getattr(abr, "controller", None)
        if controller is not None and profile.user_id in task.controller_states:
            restore_controller_state(controller, task.controller_states[profile.user_id])
        exit_model = profile.exit_model()
        scenario_profile = (
            replace(profile, sessions_per_day=task.sessions_per_user)
            if task.sessions_per_user is not None
            else profile
        )
        num_sessions = task.scenario.sessions_for(scenario_profile, rng)
        trace = task.scenario.trace_for(profile, rng, task.trace_length)
        for session_index in range(num_sessions):
            video = task.scenario.video_for(profile, task.library, rng)
            playback = engine.run(
                abr,
                video,
                trace,
                exit_model=exit_model,
                rng=rng,
                user_id=profile.user_id,
            )
            num_segments += len(playback)
            sessions.append(
                SessionLog(
                    user_id=profile.user_id,
                    day=task.day,
                    session_index=session_index,
                    trace=playback,
                    mean_bandwidth_kbps=profile.mean_bandwidth_kbps,
                )
            )
            obs_live.add_sessions(1, len(playback))
        if controller is not None:
            controller_states[profile.user_id] = controller_state_payload(controller)

    return ShardOutput(
        shard_index=task.shard_index,
        sessions=sessions,
        controller_states=controller_states,
        num_segments=num_segments,
        wall_time_s=time.perf_counter() - start,  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
    )


def _trim_trailing_idle(samples: list[LinkUsageSample]) -> list[LinkUsageSample]:
    """Drop each link's idle samples after its last busy slot.

    The engines emit usage for every link while *any* of the shard's
    sessions is still running, so a link's trailing-idle tail (and an
    always-idle link's entire stream) would depend on which other links
    share its shard.  A link's *busy span* is a function of its own users
    only, and leading/mid-run idle slots are always covered (the link's own
    future sessions keep the loop alive) — so after this trim the fleet's
    link-usage stream is invariant to the shard count.
    """
    last_busy: dict[str, int] = {}
    for sample in samples:
        if sample.active_sessions > 0:
            last_busy[sample.link_id] = max(
                sample.step, last_busy.get(sample.link_id, -1)
            )
    return [
        sample
        for sample in samples
        if sample.step <= last_busy.get(sample.link_id, -1)
    ]


def _run_shard_batched(task: ShardTask) -> ShardOutput:
    """Spec-building shard path for non-scalar backends and networked runs.

    All of a user's randomness — ABR seed, scenario draws (session counts,
    traces, videos, start slots) and the per-session `Philox` exit
    substreams — flows from a `SeedSequence` keyed by ``(fleet seed,
    md5(user_id))`` via :func:`~repro.net.topology.stable_user_key`.  Keying
    by user *identity* rather than shard position makes every user's traffic
    independent of how the population is sharded, so batched fleet
    aggregates are invariant to shard and worker counts (networked runs
    included: links never straddle shards, so each link's contention set is
    sharding-independent too).  The concrete traces and videos therefore
    differ from a ``backend="scalar"`` run of the same seed, which keeps its
    historical shard-RNG routing.
    """
    start = time.perf_counter()  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
    backend = get_backend(task.backend)
    specs: list[SessionSpec] = []
    metas: list[tuple[str, int, int, float]] = []
    controllers: dict[str, object] = {}

    obs_live.set_phase("build_specs")
    with obs.span("shard.build_specs"):
        for profile in task.profiles:
            obs_live.pulse()
            user_seq = np.random.SeedSequence(
                task.seed, spawn_key=stable_user_key(profile.user_id)
            )
            rng = np.random.default_rng(user_seq.spawn(1)[0])
            abr_seed = int(rng.integers(2**31 - 1))
            abr = task.abr_factory(profile, abr_seed)
            controller = getattr(abr, "controller", None)
            if controller is not None:
                if profile.user_id in task.controller_states:
                    restore_controller_state(
                        controller, task.controller_states[profile.user_id]
                    )
                controllers[profile.user_id] = controller
            exit_model = profile.exit_model()
            scenario_profile = (
                replace(profile, sessions_per_day=task.sessions_per_user)
                if task.sessions_per_user is not None
                else profile
            )
            num_sessions = task.scenario.sessions_for(scenario_profile, rng)
            trace = task.scenario.trace_for(profile, rng, task.trace_length)
            session_seeds = user_seq.spawn(num_sessions)
            link = (
                task.network.link_for(profile.user_id).link_id
                if task.network is not None
                else None
            )
            for session_index in range(num_sessions):
                video = task.scenario.video_for(profile, task.library, rng)
                start_step = (
                    task.scenario.start_for(scenario_profile, session_index, rng)
                    if task.network is not None
                    else 0
                )
                specs.append(
                    SessionSpec(
                        abr=abr,
                        video=video,
                        trace=trace,
                        exit_model=exit_model,
                        seed=session_seeds[session_index],
                        user_id=profile.user_id,
                        link=link,
                        start_step=start_step,
                    )
                )
                metas.append(
                    (profile.user_id, task.day, session_index, profile.mean_bandwidth_kbps)
                )

    run_network = (
        task.network.restrict(task.shard_link_ids)
        if task.network is not None
        else None
    )
    link_usage: list[LinkUsageSample] = []
    obs_live.set_shard_total(len(specs))
    obs_live.set_phase("run_batch")
    with obs.span("shard.run_batch"):
        playbacks = backend.run_batch(
            specs, task.session_config, network=run_network, link_usage=link_usage
        )
    link_usage = _trim_trailing_idle(link_usage)
    sessions = SessionLog.zip_with_playbacks(metas, playbacks)
    fallback_sessions = int(getattr(backend, "last_fallback_sessions", 0))
    obs.counter_add("backend.batch_sessions", len(specs))
    obs.counter_add("backend.fallback_sessions", fallback_sessions)
    return ShardOutput(
        shard_index=task.shard_index,
        sessions=sessions,
        controller_states={
            user_id: controller_state_payload(controller)
            for user_id, controller in controllers.items()
        },
        num_segments=sum(len(playback) for playback in playbacks),
        wall_time_s=time.perf_counter() - start,  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
        link_usage=link_usage,
        fallback_sessions=fallback_sessions,
        batch_sessions=len(specs),
    )


class FleetOrchestrator:
    """Shard a population, fan the shards out on a pool, merge the results.

    Parallel runs (``num_workers > 1``) execute on the persistent
    shared-memory :class:`~repro.fleet.pool.WorkerPool` — by default the
    process-global pool of :func:`~repro.fleet.pool.shared_pool`, reused
    across runs; pass ``pool=`` to pin a specific pool (a longitudinal
    campaign holds one across all of its days).  ``num_workers`` of 0/1 keeps
    the inline reference path, which the pooled path must match bit-for-bit.
    """

    def __init__(
        self, config: FleetConfig | None = None, *, pool: WorkerPool | None = None
    ) -> None:
        self.config = config or FleetConfig()
        self._pool = pool

    def _resolve_workers(self) -> int:
        if self.config.num_workers is not None:
            return self.config.num_workers
        return min(self.config.num_shards, os.cpu_count() or 1)

    def _descriptors(
        self,
        pool: WorkerPool,
        tasks: list[ShardTask],
        *,
        population: UserPopulation,
        scenario: Scenario,
        library: VideoLibrary,
        abr_factory,
        network: NetworkTopology | None,
        telemetry: bool,
        heartbeat: tuple | None = None,
    ) -> list[ShardDescriptor]:
        """Shard descriptors for the pooled path (one per non-empty shard).

        Heavy objects are registered in the pool's worker-side cache —
        pickled once per pool lifetime, not once per shard per run — and
        every per-shard value a worker can recompute deterministically
        (profile slice, link slice, `SeedSequence`) stays out of the wire
        format entirely.
        """
        config = self.config
        population_ref = pool.cache(population)
        scenario_ref = pool.cache(scenario)
        library_ref = pool.cache(library)
        factory_ref = pool.cache(abr_factory)
        session_config_ref = pool.cache(config.session_config)
        network_ref = pool.cache(network) if network is not None else None
        return [
            ShardDescriptor(
                run_id=task.run_id,
                shard_index=task.shard_index,
                num_shards=config.num_shards,
                seed=config.seed,
                day=task.day,
                sessions_per_user=task.sessions_per_user,
                trace_length=task.trace_length,
                backend=task.backend,
                spec_batched=task.spec_batched,
                population=population_ref,
                scenario=scenario_ref,
                library=library_ref,
                abr_factory=factory_ref,
                session_config=session_config_ref,
                network=network_ref,
                controller_states=task.controller_states,
                profile=task.profile,
                telemetry=telemetry,
                heartbeat=heartbeat,
            )
            for task in tasks
        ]

    def run(
        self,
        population: UserPopulation,
        library: VideoLibrary,
        scenario: str | Scenario | None = None,
        abr_factory: Callable[[UserProfile, int], ABRAlgorithm] | None = None,
        telemetry_path: str | Path | None = None,
        controller_states: dict[str, dict] | None = None,
        run_id: str | None = None,
    ) -> FleetResult:
        """Simulate one day of fleet traffic.

        ``controller_states`` (user id → payload, e.g. from a previous run's
        :attr:`FleetResult.controller_states` or a saved checkpoint) restores
        per-user LingXi long-term state before the day starts.
        """
        with obs.span("fleet.run_day"):
            return self._run_day(
                population,
                library,
                scenario=scenario,
                abr_factory=abr_factory,
                telemetry_path=telemetry_path,
                controller_states=controller_states,
                run_id=run_id,
            )

    def _run_day(
        self,
        population: UserPopulation,
        library: VideoLibrary,
        scenario: str | Scenario | None,
        abr_factory: Callable[[UserProfile, int], ABRAlgorithm] | None,
        telemetry_path: str | Path | None,
        controller_states: dict[str, dict] | None,
        run_id: str | None,
    ) -> FleetResult:
        config = self.config
        profiling = obs.enabled()
        run_started = time.perf_counter()  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
        scenario = get_scenario(scenario)
        abr_factory = abr_factory or HybFleetFactory()
        run_id = run_id or f"fleet-{config.seed:08d}-s{config.num_shards}-d{config.day}"
        states = controller_states or {}
        live = obs_live.active_run()
        if live is not None:
            live.begin_fleet_run(
                run_id=run_id, num_shards=config.num_shards, day=config.day
            )

        with obs.span("fleet.prepare"):
            network = get_topology(config.network)
            if network is not None:
                network = scenario.network_for(network)
                if config.allocator is not None:
                    network = replace(network, allocator=config.allocator)
                # Shard by edge link: a link's whole contention set lives in
                # one shard, so fair-share coupling never crosses a shard
                # boundary.
                shard_profiles = network.shard_profiles(
                    population.profiles, config.num_shards
                )
                shard_links = network.shard_links(config.num_shards)
            else:
                shard_profiles = population.shards(config.num_shards)
                shard_links = [[] for _ in range(config.num_shards)]
            seed_children = np.random.SeedSequence(config.seed).spawn(
                config.num_shards
            )
            tasks = [
                ShardTask(
                    run_id=run_id,
                    shard_index=index,
                    seed_seq=seed_children[index],
                    profiles=tuple(profiles),
                    scenario=scenario,
                    library=library,
                    abr_factory=abr_factory,
                    sessions_per_user=config.sessions_per_user,
                    trace_length=config.trace_length,
                    day=config.day,
                    session_config=config.session_config,
                    controller_states={
                        p.user_id: states[p.user_id]
                        for p in profiles
                        if p.user_id in states
                    },
                    backend=config.backend,
                    spec_batched=config.spec_batched,
                    seed=config.seed,
                    network=network,
                    shard_link_ids=tuple(shard_links[index]),
                    profile=profiling,
                )
                for index, profiles in enumerate(shard_profiles)
                if profiles
            ]

        workers = self._resolve_workers()
        start = time.perf_counter()  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
        with obs.span("fleet.run_shards"):
            # Both execution paths emit the same span skeleton
            # (``shard.spawn``, then ``shard.map`` wrapping
            # ``pool.dispatch``/``pool.drain``) so a profiled run's tree has
            # the same structure at any shard/worker count; inline runs
            # record ~zero spawn time, and a pre-warmed shared pool records
            # ~zero there too — that is the point of keeping it alive.
            pool = None
            with obs.span("shard.spawn"):
                if workers > 1 and len(tasks) > 1:
                    pool = self._pool if self._pool is not None else shared_pool(workers)
            with obs.span("shard.map"):
                if pool is None:
                    with obs.span("pool.dispatch"):
                        outputs = [_run_shard(task) for task in tasks]
                    with obs.span("pool.drain"):
                        pass
                else:
                    outputs = pool.run(
                        self._descriptors(
                            pool,
                            tasks,
                            population=population,
                            scenario=scenario,
                            library=library,
                            abr_factory=abr_factory,
                            network=network,
                            telemetry=telemetry_path is not None,
                            heartbeat=live.worker_token() if live is not None else None,
                        )
                    )
            outputs.sort(key=lambda output: output.shard_index)
            for output in outputs:
                obs.merge_shard_snapshot(output.obs)
        wall_time = time.perf_counter() - start  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)

        with obs.span("fleet.merge"):
            sessions: list[SessionLog] = []
            merged_states: dict[str, dict] = {}
            for output in outputs:
                sessions.extend(output.sessions)
                merged_states.update(output.controller_states)
            if not sessions:
                raise ValueError("fleet run produced no sessions")
            logs = LogCollection(sessions)
        num_segments = sum(output.num_segments for output in outputs)
        obs.counter_add("fleet.sessions", len(sessions))
        obs.counter_add("fleet.segments", num_segments)
        obs.counter_add("fleet.shards", len(outputs))
        obs.gauge_max("fleet.workers", workers)

        live_summary = None
        if live is not None:
            live.finish_fleet_run(sessions=len(sessions))
            live.watchdog_tick()  # final pass so just-stalled shards are counted
            live_summary = live.summary()
            stragglers = live_summary["stragglers"]
            if stragglers:
                obs.counter_add("pool.straggler.shards", len(stragglers))
                obs.gauge_max(
                    "pool.straggler.stall_intervals",
                    max(item["stalled_intervals"] for item in stragglers),
                )

        result = FleetResult(
            run_id=run_id,
            config=config,
            scenario_name=scenario.name,
            logs=logs,
            shard_outputs=outputs,
            controller_states=merged_states,
            wall_time_s=wall_time,
            telemetry_path=Path(telemetry_path) if telemetry_path is not None else None,
        )
        if profiling and obs.enabled():
            from repro.obs import build_run_report

            result.obs_report = build_run_report(
                run_id=run_id,
                sessions=len(sessions),
                segments=num_segments,
                wall_time_s=time.perf_counter() - run_started,  # contract: DET-CLOCK-002 exempt(wall-time telemetry only; excluded from bit-exact comparison)
                fallback_sessions=result.total_fallback_sessions,
                batch_sessions=result.total_batch_sessions,
                per_shard=[
                    {
                        "shard": output.shard_index,
                        "sessions": len(output.sessions),
                        "segments": output.num_segments,
                        "wall_time_s": output.wall_time_s,
                        "fallback_sessions": output.fallback_sessions,
                    }
                    for output in outputs
                ],
                live=live_summary,
            )
        if telemetry_path is not None:
            with obs.span("fleet.telemetry"):
                write_fleet_telemetry(result, telemetry_path)
        return result


def write_fleet_telemetry(result: FleetResult, path: str | Path) -> Path:
    """Emit the full JSONL telemetry stream of a fleet run to ``path``."""
    path = Path(path)
    with TelemetryWriter(path) as writer:
        writer.emit(
            TelemetryEvent(
                run_id=result.run_id,
                shard=-1,
                user_id="",
                event="run_start",
                payload={
                    "scenario": result.scenario_name,
                    "num_shards": result.config.num_shards,
                    "seed": result.config.seed,
                    "day": result.config.day,
                    "num_users_with_state": len(result.controller_states),
                },
            )
        )
        for output in result.shard_outputs:
            if output.telemetry_blob is not None:
                # Pooled shard: the worker already encoded these exact events
                # into its shared-memory arena — stream the bytes verbatim.
                writer.write_raw(output.telemetry_blob)
            else:
                writer.emit_many(iter_shard_events(result.run_id, output))
        if result.obs_report is not None:
            writer.emit(
                TelemetryEvent(
                    run_id=result.run_id,
                    shard=-1,
                    user_id="",
                    event="run_report",
                    payload=result.obs_report,
                )
            )
        writer.emit(
            TelemetryEvent(
                run_id=result.run_id,
                shard=-1,
                user_id="",
                event="run_end",
                payload={
                    **result.metrics.as_dict(),
                    # The backend fallback counters: "last" is this run's own
                    # count (the most recent batch of every shard), "total"
                    # the same sum — they diverge only on the in-process
                    # backend object, which accumulates across runs.
                    "last_fallback_sessions": result.total_fallback_sessions,
                    "total_fallback_sessions": result.total_fallback_sessions,
                    "total_batch_sessions": result.total_batch_sessions,
                },
            )
        )
    return path


def run_fleet_day(
    population: UserPopulation,
    library: VideoLibrary,
    config: FleetConfig | None = None,
    scenario: str | Scenario | None = None,
    abr_factory: Callable[[UserProfile, int], ABRAlgorithm] | None = None,
    telemetry_path: str | Path | None = None,
    controller_states: dict[str, dict] | None = None,
) -> FleetResult:
    """Convenience one-call wrapper around :class:`FleetOrchestrator`."""
    return FleetOrchestrator(config).run(
        population,
        library,
        scenario=scenario,
        abr_factory=abr_factory,
        telemetry_path=telemetry_path,
        controller_states=controller_states,
    )
