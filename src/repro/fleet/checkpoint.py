"""Checkpoint/resume of per-user controller state across fleet runs.

The production system serialises each user's long-term LingXi state when the
app terminates and restores it at next startup (§4, "Seamless Integration").
At fleet scale the same contract is one JSON checkpoint per run: a manifest
plus the :func:`~repro.core.persistence.controller_state_payload` of every
user whose ABR carried a controller.  A later run resumes by handing the
loaded states back to :meth:`FleetOrchestrator.run`, which restores them
before the simulated day starts — multi-day campaigns survive process (and
machine) boundaries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.controller import LingXiController
from repro.core.persistence import controller_state_payload, restore_controller_state
from repro.fleet.orchestrator import FleetResult

#: Schema version of the checkpoint file.
CHECKPOINT_VERSION = 1

#: Explicit schema migrations: ``old_version -> callable(raw) -> raw'`` where
#: the returned document carries a strictly newer ``version``.  Loading walks
#: the chain until it reaches :data:`CHECKPOINT_VERSION`; a version with no
#: registered migration is **rejected**, never restored blindly.
_MIGRATIONS: dict[int, Callable[[dict], dict]] = {}  # contract: CKPT-006


def register_checkpoint_migration(
    version: int, migrate: Callable[[dict], dict]
) -> None:
    """Register an explicit migration for checkpoints written at ``version``."""
    if version == CHECKPOINT_VERSION:
        raise ValueError("cannot register a migration for the current version")
    _MIGRATIONS[version] = migrate


@dataclass
class FleetCheckpoint:
    """A loaded fleet checkpoint: manifest + per-user controller payloads."""

    run_id: str
    day: int
    states: dict[str, dict] = field(default_factory=dict)
    version: int = CHECKPOINT_VERSION

    @property
    def num_users(self) -> int:
        """Number of users with persisted controller state."""
        return len(self.states)


def save_fleet_checkpoint(result: FleetResult, path: str | Path) -> Path:
    """Write the controller states of a fleet run as one JSON checkpoint."""
    return save_checkpoint_states(
        result.controller_states, path, run_id=result.run_id, day=result.config.day
    )


def save_checkpoint_states(
    states: dict[str, dict], path: str | Path, run_id: str = "", day: int = 0
) -> Path:
    """Write a user-id → controller-payload mapping as a checkpoint file."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "version": CHECKPOINT_VERSION,
        "run_id": run_id,
        "day": int(day),
        "states": states,
    }
    path.write_text(json.dumps(payload, indent=2))
    return path


def load_fleet_checkpoint(path: str | Path) -> FleetCheckpoint:
    """Load a checkpoint written by :func:`save_fleet_checkpoint`.

    Checkpoints whose ``version`` differs from :data:`CHECKPOINT_VERSION`
    are either migrated through the explicitly registered chain
    (:func:`register_checkpoint_migration`) or rejected with a
    ``ValueError`` — a stale schema is never restored as-is.
    """
    raw = json.loads(Path(path).read_text())
    version = int(raw.get("version", 0))
    seen = {version}
    while version != CHECKPOINT_VERSION and version in _MIGRATIONS:
        raw = _MIGRATIONS[version](raw)
        version = int(raw.get("version", 0))
        if version in seen:
            raise ValueError(
                f"checkpoint migration from version {version} does not progress"
            )
        seen.add(version)
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version} "
            f"(expected {CHECKPOINT_VERSION}, no registered migration)"
        )
    return FleetCheckpoint(
        run_id=str(raw.get("run_id", "")),
        day=int(raw.get("day", 0)),
        states={str(user): dict(state) for user, state in raw.get("states", {}).items()},
        version=version,
    )


def checkpoint_controllers(controllers: dict[str, LingXiController]) -> dict[str, dict]:
    """Payload mapping for a dict of live controllers (e.g. from a campaign)."""
    return {
        user_id: controller_state_payload(controller)
        for user_id, controller in controllers.items()
    }


def restore_controllers(
    controllers: dict[str, LingXiController], checkpoint: FleetCheckpoint
) -> int:
    """Restore every matching controller in place; returns how many matched."""
    restored = 0
    for user_id, controller in controllers.items():
        payload = checkpoint.states.get(user_id)
        if payload is not None:
            restore_controller_state(controller, payload)
            restored += 1
    return restored
