"""Longitudinal multi-day fleets: churn, drift and cross-day A/B campaigns.

Every fleet scenario so far simulated one isolated day, so the paper's core
claim — QoE decisions today change whether a user comes back *tomorrow* —
never compounded.  :class:`LongitudinalCampaign` closes the loop:

* each simulated day is one :class:`~repro.fleet.orchestrator.FleetOrchestrator`
  run over the users who actually showed up;
* each user's day is reduced to an
  :class:`~repro.users.retention.EngagementSummary`, and a
  :class:`~repro.users.retention.RetentionModel` maps it to the probability
  that the user arrives again the next day (lapsed users may come back);
* per-user controller state (LingXi long-term state) carries across days
  through the existing checkpoint layer;
* the population drifts: per-user bandwidth/tolerance drift, new-user
  influx, per-day workload schedules (e.g. a shifting device mix) and
  cross-traffic evolution on the network topology.

Determinism contract
--------------------
Every stochastic decision outside the session engines — the retention coin,
profile drift, influx draws, per-day fleet seeds — flows from a `Philox`
stream keyed by ``(campaign seed, decision kind, day, md5(user id))``.
Combined with the orchestrator's spec-batched path (``spec_batched=True`` is
forced, so scalar and vector backends resolve identical per-user RNG
substreams), a campaign is **bit-identical** across shard counts, worker
counts and backends: same traces, same retention decisions, same telemetry.

The cross-day A/B harness (:func:`run_ab_campaign`) splits a population into
two arms by stable user-id hash, runs both arms through the same days with
shared seeds, and feeds the per-day cohort metrics into
:func:`repro.analytics.abtest.compare_arm_series` — the compounding analogue
of the Figure 12 difference-in-differences protocol.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Mapping, Sequence

import numpy as np

from repro import obs
from repro.abr.base import ABRAlgorithm
from repro.analytics.abtest import ArmComparison, compare_arm_series
from repro.analytics.logs import LogCollection
from repro.analytics.metrics import GroupDailyMetrics, aggregate_daily_metrics
from repro.fleet.checkpoint import load_fleet_checkpoint, save_checkpoint_states
from repro.fleet.orchestrator import (
    FleetConfig,
    FleetOrchestrator,
    FleetResult,
    write_fleet_telemetry,
)
from repro.fleet.pool import shared_pool
from repro.obs import live as obs_live
from repro.fleet.scenarios import DeviceMixScenario, Scenario, get_scenario
from repro.fleet.telemetry import TelemetryEvent, TelemetryWriter, read_events
from repro.net.topology import (
    NetworkTopology,
    get_topology,
    stable_fraction,
    stable_user_key,
)
from repro.sim.bandwidth import MixedTraceGenerator
from repro.sim.session import SessionConfig
from repro.sim.video import VideoLibrary
from repro.users.perception import (
    SensitivityArchetype,
    StallSensitivityProfile,
    sample_profile,
)
from repro.users.population import UserPopulation, UserProfile
from repro.users.retention import (
    EngagementSummary,
    RetentionModel,
    RuleBasedRetentionModel,
    summarize_sessions,
)

__all__ = [
    "DriftConfig",
    "LongitudinalConfig",
    "RetentionDecision",
    "DayResult",
    "CampaignResumeState",
    "load_resume_state",
    "LongitudinalResult",
    "LongitudinalCampaign",
    "run_longitudinal_campaign",
    "LongitudinalABResult",
    "assign_arms",
    "run_ab_campaign",
    "shifting_device_mix",
    "replay_retention_decisions",
    "replay_day_summaries",
]

#: Spawn-key namespaces for campaign-level decision streams.  Values are
#: arbitrary but frozen: changing them changes every longitudinal trace.
_DECISION_KEYS = {"retention": 101, "drift": 102, "influx": 103, "day-seed": 104}


def _decision_rng(
    seed: int, kind: str, day: int, user_id: str = ""
) -> np.random.Generator:
    """Philox stream for one campaign decision, keyed by identity.

    Keying by ``(seed, kind, day, md5(user_id))`` — never by roster position —
    makes every decision invariant to sharding, backend and roster
    composition (influx appends cannot shift anyone else's draws).
    """
    key: tuple[int, ...] = (_DECISION_KEYS[kind], day)
    if user_id:
        key = key + stable_user_key(user_id, salt=kind)
    return np.random.Generator(
        np.random.Philox(np.random.SeedSequence(seed, spawn_key=key))
    )


def _day_seed(seed: int, day: int) -> int:
    """Per-day fleet seed: users replay fresh randomness every day."""
    return int(
        np.random.SeedSequence(
            seed, spawn_key=(_DECISION_KEYS["day-seed"], day)
        ).generate_state(1)[0]
    )


@dataclass(frozen=True)
class DriftConfig:
    """How the population and its environment evolve across days."""

    #: Apply :meth:`~repro.users.population.UserProfile.next_day` per user
    #: (bandwidth wobble + stall-tolerance drift) between days.
    profile_drift: bool = True
    #: New users appended to the roster after each day (they arrive
    #: unconditionally on their first day, like the day-0 cohort).
    influx_per_day: int = 0
    #: User-id prefix for influx users (A/B arms override it so the same
    #: campaign seed cannot mint the same user into both arms).
    influx_id_prefix: str = "n"
    influx_bandwidth_median_kbps: float = 8000.0
    influx_sigma_log: float = 0.9
    influx_burst_fraction: float = 0.3
    #: Per-day multiplicative growth of every link's cross-traffic amplitude
    #: (day ``d`` scales by ``(1 + growth) ** d``); ``0`` keeps the topology
    #: static.  Only meaningful for networked campaigns.
    cross_traffic_growth: float = 0.0

    def __post_init__(self) -> None:
        if self.influx_per_day < 0:
            raise ValueError("influx_per_day must be non-negative")
        if self.cross_traffic_growth <= -1.0:
            raise ValueError("cross_traffic_growth must be > -1")
        if not self.influx_id_prefix:
            raise ValueError("influx_id_prefix must be non-empty")


@dataclass(frozen=True)
class LongitudinalConfig:
    """Knobs of one multi-day campaign."""

    days: int = 3
    seed: int = 0
    num_shards: int = 2
    #: ``0``/``1`` → run shards inline; ``None`` → pool sized to CPU count.
    num_workers: int | None = 0
    sessions_per_user: int | None = None
    trace_length: int = 120
    backend: str = "scalar"
    network: str | NetworkTopology | None = None
    session_config: SessionConfig = field(default_factory=SessionConfig)
    drift: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        # Validation of the fleet-level knobs is delegated to FleetConfig —
        # build one up front so bad values fail before day 0 starts.
        self._fleet_config(day=0, network=get_topology(self.network))

    def _fleet_config(self, day: int, network: NetworkTopology | None) -> FleetConfig:
        """The one-day fleet configuration for ``day``."""
        return FleetConfig(
            num_shards=self.num_shards,
            num_workers=self.num_workers,
            sessions_per_user=self.sessions_per_user,
            trace_length=self.trace_length,
            seed=_day_seed(self.seed, day),
            day=day,
            session_config=self.session_config,
            backend=self.backend,
            network=network,
            spec_batched=True,
        )


@dataclass(frozen=True)
class RetentionDecision:
    """One user's arrival decision for one day."""

    user_id: str
    day: int
    #: Arrival probability the retention model assigned (1.0 for new users).
    probability: float
    returned: bool
    #: True when the user had no engagement outcome the previous day.
    lapsed: bool
    #: True on the user's first roster day (unconditional arrival).
    new_user: bool

    def as_payload(self) -> dict:
        """Telemetry payload of the decision."""
        return {
            "day": int(self.day),
            "probability": float(self.probability),
            "returned": bool(self.returned),
            "lapsed": bool(self.lapsed),
            "new_user": bool(self.new_user),
        }

    @classmethod
    def from_payload(cls, user_id: str, payload: dict) -> "RetentionDecision":
        """Inverse of :meth:`as_payload`."""
        return cls(
            user_id=user_id,
            day=int(payload["day"]),
            probability=float(payload["probability"]),
            returned=bool(payload["returned"]),
            lapsed=bool(payload["lapsed"]),
            new_user=bool(payload["new_user"]),
        )


def _profile_payload(profile: UserProfile) -> dict:
    """JSON form of a roster profile (floats roundtrip exactly)."""
    return {
        "user_id": profile.user_id,
        "mean_bandwidth_kbps": profile.mean_bandwidth_kbps,
        "bursty": profile.bursty,
        "sessions_per_day": profile.sessions_per_day,
        "base_hazard": profile.base_hazard,
        "sensitivity": {
            "archetype": profile.sensitivity.archetype.value,
            "tolerance_s": profile.sensitivity.tolerance_s,
            "peak_exit_probability": profile.sensitivity.peak_exit_probability,
            "daily_drift_s": profile.sensitivity.daily_drift_s,
        },
    }


def _profile_from_payload(payload: dict) -> UserProfile:
    """Inverse of :func:`_profile_payload`."""
    sensitivity = payload["sensitivity"]
    return UserProfile(
        user_id=str(payload["user_id"]),
        mean_bandwidth_kbps=float(payload["mean_bandwidth_kbps"]),
        bursty=bool(payload["bursty"]),
        sensitivity=StallSensitivityProfile(
            archetype=SensitivityArchetype(sensitivity["archetype"]),
            tolerance_s=float(sensitivity["tolerance_s"]),
            peak_exit_probability=float(sensitivity["peak_exit_probability"]),
            daily_drift_s=float(sensitivity["daily_drift_s"]),
        ),
        sessions_per_day=int(payload["sessions_per_day"]),
        base_hazard=float(payload["base_hazard"]),
    )


@dataclass
class CampaignResumeState:
    """Everything beyond controller payloads a resumed campaign needs.

    Controller state alone is not enough to continue a campaign: the next
    day's retention coins depend on *yesterday's* engagement summaries,
    distinguishing a genuinely new user (unconditional arrival) from a
    resumed one needs the first-day map, and the roster itself has drifted
    (bandwidth/tolerance wobble, influx) since the original population was
    built.  With ``checkpoint_dir`` the campaign writes one
    ``resume_day_XXX.json`` per day next to the controller checkpoint;
    :func:`load_resume_state` restores everything from disk, and

    >>> resume = load_resume_state(dir / "resume_day_000.json", dir / "day_000.json")
    >>> campaign.run(resume.population(), library, resume_state=resume)

    is **bit-identical** to the uninterrupted campaign under any retention
    model — a crash between days loses nothing.
    """

    #: First day after the saved one (what ``start_day`` should be).
    next_day: int
    #: Engagement summaries of the users who played the saved day.
    summaries: dict[str, EngagementSummary]
    #: user id → the day the user first appeared on the roster.
    first_day: dict[str, int]
    #: Controller payloads as of the saved day (checkpoint-layer format).
    controller_states: dict[str, dict]
    #: The drifted roster as of the morning of ``next_day`` (influx included).
    roster: tuple[UserProfile, ...] = ()

    def population(self) -> UserPopulation:
        """The saved roster as a population (what a resumed run plays)."""
        if not self.roster:
            raise ValueError("resume state carries no roster")
        return UserPopulation(list(self.roster))

    def save(self, path: str | Path) -> Path:
        """Write the resume state as one JSON document."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "next_day": int(self.next_day),
            "summaries": {
                uid: summary.as_payload() for uid, summary in self.summaries.items()
            },
            "first_day": {uid: int(day) for uid, day in self.first_day.items()},
            "roster": [_profile_payload(profile) for profile in self.roster],
        }
        path.write_text(json.dumps(payload, indent=2))
        return path


def load_resume_state(
    resume_path: str | Path, checkpoint_path: str | Path
) -> CampaignResumeState:
    """Load a day's resume state plus its controller checkpoint.

    ``resume_path`` is the campaign's ``resume_day_XXX.json``;
    ``checkpoint_path`` the matching ``day_XXX.json`` controller checkpoint
    (versioned/migrated through the checkpoint layer as usual).  Floats in
    the summaries and roster profiles survive the JSON roundtrip exactly, so
    a resumed campaign sees bit-identical model inputs.
    """
    raw = json.loads(Path(resume_path).read_text())
    return CampaignResumeState(
        next_day=int(raw["next_day"]),
        summaries={
            uid: EngagementSummary.from_payload(payload)
            for uid, payload in raw["summaries"].items()
        },
        first_day={uid: int(day) for uid, day in raw["first_day"].items()},
        controller_states=load_fleet_checkpoint(checkpoint_path).states,
        roster=tuple(
            _profile_from_payload(payload) for payload in raw.get("roster", [])
        ),
    )


@dataclass
class DayResult:
    """Everything one simulated day produced."""

    day: int
    result: FleetResult
    #: Arrival decision of every roster user that morning.
    decisions: dict[str, RetentionDecision]
    #: Per-user engagement summaries of the users who played.
    summaries: dict[str, EngagementSummary]
    #: Users who arrived (and therefore played), in roster order.
    active_user_ids: tuple[str, ...]
    #: Fraction of the users who played *yesterday* that returned today
    #: (NaN on day 0 and whenever nobody played yesterday).
    retention_rate: float

    @property
    def dau(self) -> int:
        """Daily active users."""
        return len(self.active_user_ids)


@dataclass
class LongitudinalResult:
    """Merged output of one multi-day campaign."""

    config: LongitudinalConfig
    days: list[DayResult]
    #: Final per-user controller payloads (checkpoint-layer format).
    controller_states: dict[str, dict]
    #: Roster after the final day's drift/influx.
    final_roster: tuple[UserProfile, ...]
    telemetry_dir: Path | None = None
    checkpoint_dir: Path | None = None

    @property
    def dau_series(self) -> list[int]:
        """Daily active users, one entry per day."""
        return [day.dau for day in self.days]

    @property
    def retention_series(self) -> list[float]:
        """Day-over-day retention rate (NaN on day 0)."""
        return [day.retention_rate for day in self.days]

    def all_logs(self) -> LogCollection:
        """All sessions of the campaign, in day order."""
        sessions = [
            session for day in self.days for session in day.result.logs.sessions
        ]
        return LogCollection(sessions)

    def daily_metrics(self, group: str) -> list[GroupDailyMetrics]:
        """One metrics row per day — zero rows for zero-arrival days.

        Unlike :func:`~repro.analytics.metrics.aggregate_daily_metrics` over
        the merged logs, the result always covers every campaign day, so two
        arms' series stay aligned for :func:`compare_arm_series` even when
        churn empties out some days.  Sessions are aggregated in canonical
        ``(user, session)`` order — live log order is shard-major, and float
        sums must not depend on how the population was sharded.
        """
        rows: list[GroupDailyMetrics] = []
        for day in self.days:
            ordered = sorted(
                day.result.logs.sessions,
                key=lambda s: (s.user_id, s.session_index),
            )
            aggregated = aggregate_daily_metrics(ordered, group=group)
            if aggregated:
                rows.append(aggregated[0])
            else:
                rows.append(
                    GroupDailyMetrics(
                        day=day.day,
                        group=group,
                        total_watch_time=0.0,
                        mean_bitrate_kbps=0.0,
                        total_stall_time=0.0,
                        stall_count=0,
                        qoe_lin=0.0,
                        num_sessions=0,
                    )
                )
        return rows


class LongitudinalCampaign:
    """Run a population through K engagement-coupled simulated days."""

    def __init__(self, config: LongitudinalConfig | None = None) -> None:
        self.config = config or LongitudinalConfig()

    def run(
        self,
        population: UserPopulation,
        library: VideoLibrary,
        abr_factory: Callable[[UserProfile, int], ABRAlgorithm] | None = None,
        retention_model: RetentionModel | None = None,
        scenario: str | Scenario | None = None,
        scenario_schedule: Callable[[int], str | Scenario] | None = None,
        telemetry_dir: str | Path | None = None,
        checkpoint_dir: str | Path | None = None,
        controller_states: dict[str, dict] | None = None,
        start_day: int = 0,
        resume_state: CampaignResumeState | None = None,
    ) -> LongitudinalResult:
        """Simulate ``config.days`` engagement-coupled days.

        ``scenario_schedule`` (day → scenario) overrides ``scenario`` per day
        — how workloads drift (see :func:`shifting_device_mix`).  With
        ``checkpoint_dir`` the campaign writes, per day, a controller
        checkpoint (``day_XXX.json``, reloaded before the next day so
        cross-day state carry always exercises the persistence layer) and a
        :class:`CampaignResumeState` (``resume_day_XXX.json``).  Passing the
        loaded ``resume_state`` (see :func:`load_resume_state`) continues an
        interrupted campaign bit-identically: retention coins see
        yesterday's summaries, resumed users are not mistaken for new ones,
        and controller state flows from the checkpoint.  ``start_day`` and
        ``controller_states`` remain available for manual resumes (without a
        resume state, every roster user arrives unconditionally on the first
        resumed day).
        """
        with obs.span("campaign.run"):
            return self._run_campaign(
                population,
                library,
                abr_factory=abr_factory,
                retention_model=retention_model,
                scenario=scenario,
                scenario_schedule=scenario_schedule,
                telemetry_dir=telemetry_dir,
                checkpoint_dir=checkpoint_dir,
                controller_states=controller_states,
                start_day=start_day,
                resume_state=resume_state,
            )

    def _run_campaign(
        self,
        population: UserPopulation,
        library: VideoLibrary,
        abr_factory: Callable[[UserProfile, int], ABRAlgorithm] | None,
        retention_model: RetentionModel | None,
        scenario: str | Scenario | None,
        scenario_schedule: Callable[[int], str | Scenario] | None,
        telemetry_dir: str | Path | None,
        checkpoint_dir: str | Path | None,
        controller_states: dict[str, dict] | None,
        start_day: int,
        resume_state: CampaignResumeState | None,
    ) -> LongitudinalResult:
        config = self.config
        retention_model = retention_model or RuleBasedRetentionModel()
        telemetry_dir = Path(telemetry_dir) if telemetry_dir is not None else None
        checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        campaign_id = f"longitudinal-{config.seed:08d}"

        roster: list[UserProfile] = list(population)
        if len({p.user_id for p in roster}) != len(roster):
            raise ValueError("population contains duplicate user ids")
        if resume_state is not None:
            if controller_states is not None:
                raise ValueError(
                    "pass either resume_state or controller_states, not both"
                )
            start_day = resume_state.next_day
            first_day = {
                p.user_id: resume_state.first_day.get(p.user_id, start_day)
                for p in roster
            }
            states: dict[str, dict] = dict(resume_state.controller_states)
            prev_summaries = dict(resume_state.summaries)
        else:
            first_day = {p.user_id: start_day for p in roster}
            states = dict(controller_states or {})
            prev_summaries = {}
        base_topology = get_topology(config.network)
        drift = config.drift

        # One persistent pool for the whole campaign (the shared pool also
        # outlives it, so back-to-back campaigns — e.g. both arms of an A/B —
        # reuse the same workers and cached library/factory objects).  Day
        # populations and controller states still travel per day: they are
        # genuinely new data.
        workers = config.num_workers
        if workers is None:
            workers = min(config.num_shards, os.cpu_count() or 1)
        fleet_pool = shared_pool(workers) if workers > 1 and config.num_shards > 1 else None

        writer: TelemetryWriter | None = None
        if telemetry_dir is not None:
            # A resumed campaign appends: the pre-crash retention/day_summary
            # history in campaign.jsonl must survive (per-day files are
            # per-run and keep truncating).
            writer = TelemetryWriter(
                telemetry_dir / "campaign.jsonl", append=start_day > 0
            )
            writer.emit(
                TelemetryEvent(
                    run_id=campaign_id,
                    shard=-1,
                    user_id="",
                    event="campaign_start",
                    payload={
                        "days": config.days,
                        "start_day": start_day,
                        "seed": config.seed,
                        "backend": config.backend,
                        "num_users": len(roster),
                        "retention_model": type(retention_model).__name__,
                    },
                )
            )

        live = obs_live.active_run()
        if live is not None:
            live.begin_campaign(
                start_day=start_day, days=config.days, run_id=campaign_id
            )

        day_results: list[DayResult] = []
        try:
            for offset in range(config.days):
                with obs.span("campaign.day"):
                    day = start_day + offset
                    if live is not None:
                        live.note_day(day=day, roster=len(roster))
                    scen = get_scenario(
                        scenario_schedule(day) if scenario_schedule is not None else scenario
                    )
                    topology = base_topology
                    if topology is not None and drift.cross_traffic_growth != 0.0:
                        topology = topology.with_cross_traffic_scale(
                            (1.0 + drift.cross_traffic_growth) ** day
                        )

                    with obs.span("campaign.retention"):
                        decisions: dict[str, RetentionDecision] = {}
                        arrivals: list[UserProfile] = []
                        for profile in roster:
                            uid = profile.user_id
                            if first_day[uid] == day:
                                decision = RetentionDecision(
                                    uid, day, 1.0, returned=True, lapsed=False, new_user=True
                                )
                            else:
                                summary = prev_summaries.get(uid)
                                probability = float(
                                    retention_model.return_probability(summary)
                                )
                                if not 0.0 <= probability <= 1.0:
                                    raise ValueError(
                                        f"retention probability {probability} for {uid!r} "
                                        "outside [0, 1]"
                                    )
                                draw = float(
                                    _decision_rng(config.seed, "retention", day, uid).random()
                                )
                                decision = RetentionDecision(
                                    uid,
                                    day,
                                    probability,
                                    returned=draw < probability,
                                    lapsed=summary is None,
                                    new_user=False,
                                )
                            decisions[uid] = decision
                            if decision.returned:
                                arrivals.append(profile)

                    fleet_config = config._fleet_config(day=day, network=topology)
                    run_id = f"{campaign_id}-d{day:03d}"
                    telemetry_path = (
                        telemetry_dir / f"day_{day:03d}.jsonl"
                        if telemetry_dir is not None
                        else None
                    )
                    if arrivals:
                        result = FleetOrchestrator(fleet_config, pool=fleet_pool).run(
                            UserPopulation(arrivals),
                            library,
                            scenario=scen,
                            abr_factory=abr_factory,
                            telemetry_path=telemetry_path,
                            controller_states=states,
                            run_id=run_id,
                        )
                        states.update(result.controller_states)
                    else:
                        # Zero-arrival day: a first-class (empty) fleet result so
                        # telemetry, metrics and replay stay uniform.
                        result = FleetResult(
                            run_id=run_id,
                            config=fleet_config,
                            scenario_name=scen.name,
                            logs=LogCollection([]),
                            shard_outputs=[],
                            controller_states={},
                            wall_time_s=0.0,
                            telemetry_path=telemetry_path,
                        )
                        if telemetry_path is not None:
                            write_fleet_telemetry(result, telemetry_path)

                    with obs.span("campaign.checkpoint"):
                        if checkpoint_dir is not None:
                            path = save_checkpoint_states(
                                states,
                                checkpoint_dir / f"day_{day:03d}.json",
                                run_id=run_id,
                                day=day,
                            )
                            # Reload what was written: cross-day carry-over always
                            # rides the checkpoint layer, so a process boundary
                            # between days cannot change the campaign.
                            states = load_fleet_checkpoint(path).states

                    with obs.span("campaign.summarize"):
                        summaries = {
                            uid: summarize_sessions(
                                sorted(sessions, key=lambda s: s.session_index)
                            )
                            for uid, sessions in result.logs.group_by_user().items()
                        }
                        eligible = [
                            d for d in decisions.values() if not d.new_user and not d.lapsed
                        ]
                        retention_rate = (
                            float(np.mean([d.returned for d in eligible]))
                            if eligible
                            else float("nan")
                        )
                    day_result = DayResult(
                        day=day,
                        result=result,
                        decisions=decisions,
                        summaries=summaries,
                        active_user_ids=tuple(p.user_id for p in arrivals),
                        retention_rate=retention_rate,
                    )
                    if live is not None:
                        live.note_day(day=day, dau=day_result.dau, roster=len(roster))
                    day_results.append(day_result)

                    if writer is not None:
                        for uid in sorted(decisions):
                            writer.emit(
                                TelemetryEvent(
                                    run_id=campaign_id,
                                    shard=-1,
                                    user_id=uid,
                                    event="retention",
                                    payload=decisions[uid].as_payload(),
                                )
                            )
                        writer.emit(
                            TelemetryEvent(
                                run_id=campaign_id,
                                shard=-1,
                                user_id="",
                                event="day_summary",
                                payload={
                                    "day": day,
                                    "dau": day_result.dau,
                                    "retention_rate": (
                                        None
                                        if np.isnan(retention_rate)
                                        else retention_rate
                                    ),
                                    "roster_size": len(roster),
                                    "metrics": result.metrics.as_dict(),
                                },
                            )
                        )

                    prev_summaries = summaries
                    with obs.span("campaign.drift"):
                        if drift.profile_drift:
                            roster = [
                                p.next_day(_decision_rng(config.seed, "drift", day, p.user_id))
                                for p in roster
                            ]
                        if drift.influx_per_day > 0:
                            new_profiles = _influx_profiles(config.seed, day, drift)
                            for profile in new_profiles:
                                if profile.user_id in first_day:
                                    raise ValueError(
                                        f"influx id collision: {profile.user_id!r}"
                                    )
                                first_day[profile.user_id] = day + 1
                            roster.extend(new_profiles)
                    with obs.span("campaign.checkpoint"):
                        if checkpoint_dir is not None:
                            # Saved after drift/influx so the roster snapshot is the
                            # morning-of-next-day one; pair with day_XXX.json via
                            # load_resume_state to continue bit-identically.
                            CampaignResumeState(
                                next_day=day + 1,
                                summaries=summaries,
                                first_day=dict(first_day),
                                controller_states={},
                                roster=tuple(roster),
                            ).save(checkpoint_dir / f"resume_day_{day:03d}.json")

            if writer is not None:
                writer.emit(
                    TelemetryEvent(
                        run_id=campaign_id,
                        shard=-1,
                        user_id="",
                        event="campaign_end",
                        payload={
                            "dau_series": [d.dau for d in day_results],
                            "final_roster_size": len(roster),
                            "num_users_with_state": len(states),
                        },
                    )
                )
        finally:
            if writer is not None:
                writer.close()

        return LongitudinalResult(
            config=config,
            days=day_results,
            controller_states=states,
            final_roster=tuple(roster),
            telemetry_dir=telemetry_dir,
            checkpoint_dir=checkpoint_dir,
        )


def _influx_profiles(seed: int, day: int, drift: DriftConfig) -> list[UserProfile]:
    """Draw the day's new-user cohort (ids are prefix + day + index)."""
    rng = _decision_rng(seed, "influx", day)
    mixture = MixedTraceGenerator(
        median_kbps=drift.influx_bandwidth_median_kbps,
        sigma_log=drift.influx_sigma_log,
        burst_fraction=drift.influx_burst_fraction,
    )
    profiles = []
    for i in range(drift.influx_per_day):
        profiles.append(
            UserProfile(
                user_id=f"{drift.influx_id_prefix}{day:03d}x{i:04d}",
                mean_bandwidth_kbps=mixture.sample_user_mean(rng),
                bursty=bool(rng.random() < drift.influx_burst_fraction),
                sensitivity=sample_profile(rng),
                sessions_per_day=int(rng.integers(3, 15)),
                base_hazard=float(np.clip(rng.normal(0.02, 0.008), 0.004, 0.06)),
            )
        )
    return profiles


def run_longitudinal_campaign(
    population: UserPopulation,
    library: VideoLibrary,
    config: LongitudinalConfig | None = None,
    **kwargs,
) -> LongitudinalResult:
    """Convenience one-call wrapper around :class:`LongitudinalCampaign`."""
    return LongitudinalCampaign(config).run(population, library, **kwargs)


def shifting_device_mix(
    mobile_start: float = 0.3,
    mobile_shift_per_day: float = 0.05,
    tv_fraction: float = 0.2,
    **scenario_kwargs,
) -> Callable[[int], Scenario]:
    """Scenario schedule: the mobile share of the device mix drifts daily.

    Day ``d`` runs a :class:`~repro.fleet.scenarios.DeviceMixScenario` with
    ``mobile_fraction = mobile_start + d * mobile_shift_per_day`` (clamped so
    the fractions stay valid) — the "device-mix shift" axis of population
    drift.
    """

    def schedule(day: int) -> Scenario:
        mobile = min(max(mobile_start + day * mobile_shift_per_day, 0.0), 0.95)
        tv = min(tv_fraction, 1.0 - mobile)
        return DeviceMixScenario(
            mobile_fraction=mobile, tv_fraction=tv, **scenario_kwargs
        )

    return schedule


# --------------------------------------------------------------------------- #
# Cross-day A/B harness
# --------------------------------------------------------------------------- #

#: Metrics compared between arms by default.  ``dau`` and ``retention_rate``
#: come from the campaign's churn loop; the rest from the daily QoE rows.
DEFAULT_AB_METRICS: tuple[str, ...] = (
    "dau",
    "retention_rate",
    "total_watch_time",
    "mean_bitrate_kbps",
    "stall_seconds_per_hour",
    "qoe_lin",
)


@dataclass
class LongitudinalABResult:
    """Both arms' campaigns plus the per-metric paired comparisons."""

    arms: dict[str, LongitudinalResult]
    #: metric name → paired per-day comparison (first arm = treatment).
    comparisons: dict[str, ArmComparison]
    #: user id → arm name for the initial population.
    arm_assignment: dict[str, str]
    treatment_arm: str
    control_arm: str

    def summary_lines(self) -> list[str]:
        """Human-readable per-metric comparison summaries."""
        return [comparison.summary() for comparison in self.comparisons.values()]


def assign_arms(
    population: UserPopulation,
    arm_names: Sequence[str],
    salt: str = "ab-arm",
) -> dict[str, UserPopulation]:
    """Split a population into arms by stable user-id hash.

    The assignment is a pure function of user identity (like the cohorts in
    :mod:`repro.fleet.scenarios`): recomputation, sharding and roster growth
    cannot move a user between arms.
    """
    names = list(arm_names)
    if len(names) < 2 or len(set(names)) != len(names):
        raise ValueError("need at least two distinct arm names")
    boundaries = np.linspace(0.0, 1.0, len(names) + 1)[1:]
    groups: dict[str, list[UserProfile]] = {name: [] for name in names}
    for profile in population:
        draw = stable_fraction(profile.user_id, salt)
        arm = names[int(np.searchsorted(boundaries, draw, side="right"))]
        groups[arm].append(profile)
    empty = [name for name, members in groups.items() if not members]
    if empty:
        raise ValueError(
            f"arms {empty} received no users; population too small for the split"
        )
    return {name: UserPopulation(members) for name, members in groups.items()}


def run_ab_campaign(
    population: UserPopulation,
    library: VideoLibrary,
    arms: Mapping[str, Callable[[UserProfile, int], ABRAlgorithm]],
    config: LongitudinalConfig | None = None,
    retention_model: RetentionModel | None = None,
    scenario: str | Scenario | None = None,
    scenario_schedule: Callable[[int], str | Scenario] | None = None,
    telemetry_root: str | Path | None = None,
    checkpoint_root: str | Path | None = None,
    metrics: Sequence[str] = DEFAULT_AB_METRICS,
    split_salt: str = "ab-arm",
) -> LongitudinalABResult:
    """Run a cross-day A/B campaign: two arms, shared seeds, paired days.

    ``arms`` maps arm name → fleet ABR factory; the **first** entry is the
    treatment arm in every comparison.  Both arms run the same
    :class:`LongitudinalConfig` (same seed — the campaign keys all decision
    randomness by user identity, so shared seeds give paired days), and
    influx users are minted with arm-specific id prefixes and arm-share
    counts so new users also split across arms.
    """
    if len(arms) != 2:
        raise ValueError("run_ab_campaign compares exactly two arms")
    config = config or LongitudinalConfig()
    arm_names = list(arms)
    populations = assign_arms(population, arm_names, salt=split_salt)
    arm_assignment = {
        profile.user_id: name
        for name, arm_population in populations.items()
        for profile in arm_population
    }

    influx_counts = _apportion(
        config.drift.influx_per_day,
        [len(populations[name]) / len(population) for name in arm_names],
    )
    results: dict[str, LongitudinalResult] = {}
    for name, arm_influx in zip(arm_names, influx_counts):
        arm_population = populations[name]
        drift = replace(
            config.drift,
            influx_per_day=arm_influx,
            influx_id_prefix=f"{name}-{config.drift.influx_id_prefix}",
        )
        arm_config = replace(config, drift=drift)
        results[name] = LongitudinalCampaign(arm_config).run(
            arm_population,
            library,
            abr_factory=arms[name],
            retention_model=retention_model,
            scenario=scenario,
            scenario_schedule=scenario_schedule,
            telemetry_dir=(
                Path(telemetry_root) / name if telemetry_root is not None else None
            ),
            checkpoint_dir=(
                Path(checkpoint_root) / name if checkpoint_root is not None else None
            ),
        )

    treatment_name, control_name = arm_names
    daily_rows = {
        name: results[name].daily_metrics(name) for name in arm_names
    }
    comparisons: dict[str, ArmComparison] = {}
    for metric in metrics:
        treatment_series = _metric_series(
            results[treatment_name], daily_rows[treatment_name], metric
        )
        control_series = _metric_series(
            results[control_name], daily_rows[control_name], metric
        )
        # Drop non-finite *pairs* (day 0's retention rate has no previous
        # day; a fully-churned day has no sessions to average over) so the
        # paired statistics never silently degrade to NaN or count an empty
        # day's "0.0 kbps / 0 stall" as a real observation.  Pairing is
        # preserved: day i of one arm is only compared with day i of the
        # other.
        pairs = [
            (t, c)
            for t, c in zip(treatment_series, control_series)
            if np.isfinite(t) and np.isfinite(c)
        ]
        if len(pairs) >= 2:
            comparisons[metric] = compare_arm_series(
                metric, [t for t, _ in pairs], [c for _, c in pairs]
            )
    return LongitudinalABResult(
        arms=results,
        comparisons=comparisons,
        arm_assignment=arm_assignment,
        treatment_arm=treatment_name,
        control_arm=control_name,
    )


def _apportion(total: int, shares: Sequence[float]) -> list[int]:
    """Split ``total`` integer units by ``shares`` (largest remainder).

    Unlike per-share rounding, the counts always sum to ``total`` — a
    configured daily influx is never silently dropped (or doubled) by
    round-half-to-even across arms.
    """
    raw = [total * share for share in shares]
    counts = [int(np.floor(value)) for value in raw]
    remainder = total - sum(counts)
    by_fraction = sorted(
        range(len(shares)), key=lambda i: (-(raw[i] - counts[i]), i)
    )
    for index in by_fraction[:remainder]:
        counts[index] += 1
    return counts


#: Per-session/per-hour *ratios* — undefined on a zero-arrival day.  They
#: report NaN there (and get pair-dropped), because encoding "nobody played"
#: as 0.0 kbps / 0.0 stall would enter the t-test as a real observation.
#: Extensive totals (dau, watch time, qoe sum) are legitimately 0 on empty
#: days and stay in.
_INTENSIVE_METRICS = frozenset(
    {"mean_bitrate_kbps", "stall_seconds_per_hour", "session_exit_rate"}
)


def _metric_series(
    result: LongitudinalResult,
    rows: Sequence[GroupDailyMetrics],
    metric: str,
) -> list[float]:
    """Per-day series of one cohort metric (aligned across arms).

    ``rows`` are the arm's precomputed :meth:`LongitudinalResult.daily_metrics`
    rows (computed once per arm, not once per metric).
    """
    if metric == "dau":
        return [float(v) for v in result.dau_series]
    if metric == "retention_rate":
        return list(result.retention_series)
    if metric == "session_exit_rate":
        return [
            float("nan") if day.dau == 0 else day.result.metrics.session_exit_rate
            for day in result.days
        ]
    try:
        values = [float(getattr(row, metric)) for row in rows]
    except AttributeError:
        raise ValueError(f"unknown A/B metric {metric!r}") from None
    if metric in _INTENSIVE_METRICS:
        return [
            float("nan") if day.dau == 0 else value
            for day, value in zip(result.days, values)
        ]
    return values


# --------------------------------------------------------------------------- #
# Campaign telemetry replay
# --------------------------------------------------------------------------- #
def replay_retention_decisions(
    path: str | Path,
) -> dict[tuple[int, str], RetentionDecision]:
    """Reconstruct every retention decision from a ``campaign.jsonl`` file.

    Exact replay: probabilities survive the JSON roundtrip bit-for-bit, so
    the result compares equal to the live campaign's ``DayResult.decisions``.
    """
    decisions: dict[tuple[int, str], RetentionDecision] = {}
    for event in read_events(path):
        if event.event == "retention":
            decision = RetentionDecision.from_payload(event.user_id, event.payload)
            decisions[(decision.day, decision.user_id)] = decision
    if not decisions:
        raise ValueError(f"no retention events found in {path}")
    return decisions


def replay_day_summaries(path: str | Path) -> list[dict]:
    """The per-day summary payloads of a ``campaign.jsonl`` file, in order."""
    return [
        event.payload for event in read_events(path) if event.event == "day_summary"
    ]
