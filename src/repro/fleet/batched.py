"""Batched exit-rate inference for the Monte-Carlo hot path.

The sequential :class:`~repro.core.monte_carlo.MonteCarloEvaluator` walks its
``M`` virtual-playback samples one after another and calls the exit predictor
once per simulated segment — a single-row neural-network forward pass each
time, which is dominated by per-call numpy overhead rather than arithmetic.

This module replaces that hot path with two pieces:

* :class:`BatchedExitPredictor` — a thin wrapper around a trained
  :class:`~repro.core.exit_predictor.ExitRatePredictor` exposing
  :meth:`~BatchedExitPredictor.predict_many`: Equation 4 evaluated for ``n``
  decision points at once, with the OS baseline vectorised and a *single*
  NN forward pass over the stalled subset.  Outputs match the unbatched
  ``predict`` row-for-row (to float64 round-off).
* :class:`BatchedMonteCarloEvaluator` — a drop-in replacement for the
  sequential evaluator (same ``evaluate`` signature, so it can be swapped into
  a :class:`~repro.core.controller.LingXiController`) that advances all ``M``
  samples in lockstep and batches every per-step predictor call across the
  samples that are still alive.
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig, virtual_video
from repro.core.state import PlayerSnapshot, UserState
from repro.core.triggers import PruningPolicy
from repro.datasets.stall_dataset import NUM_FEATURES, WINDOW_LENGTH
from repro.sim.player import PlayerEnvironment
from repro.sim.session import ABRContext


class BatchedExitPredictor:
    """Vectorised view of a hybrid exit-rate predictor (Equation 4, batched)."""

    def __init__(self, predictor: ExitRatePredictor) -> None:
        self.predictor = predictor

    @property
    def statistics_model(self):
        """The wrapped predictor's OS model."""
        return self.predictor.statistics_model

    def baseline_many(
        self, levels: np.ndarray, switch_magnitudes: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``OS(Quality, Smoothness)`` for ``n`` decision points."""
        model = self.predictor.statistics_model
        levels = np.asarray(levels, dtype=int)
        switches = np.asarray(switch_magnitudes, dtype=int)
        if np.any(levels < 0):
            raise ValueError("levels must be non-negative")
        level_rates = model.level_rates[np.minimum(levels, model.level_rates.size - 1)]
        magnitudes = np.minimum(np.abs(switches), model.switch_offsets.size - 1)
        offsets = model.switch_offsets[magnitudes] + np.where(
            switches < 0, model.downward_extra, 0.0
        )
        return np.clip(level_rates + offsets, 0.0, 1.0)

    def predict_many(
        self,
        feature_matrices: np.ndarray,
        levels: np.ndarray,
        switch_magnitudes: np.ndarray,
        stalled: np.ndarray,
    ) -> np.ndarray:
        """Equation 4 for a batch: hybrid exit probability per decision point.

        Parameters
        ----------
        feature_matrices:
            ``(n, 5, 8)`` stack of per-sample feature matrices.  Rows whose
            ``stalled`` flag is false are never fed to the network, so their
            matrix content is irrelevant (zeros are fine).
        levels / switch_magnitudes / stalled:
            Length-``n`` vectors describing each decision point.
        """
        stalled = np.asarray(stalled, dtype=bool)
        probabilities = self.baseline_many(levels, switch_magnitudes)
        stalled_rows = np.flatnonzero(stalled)
        if stalled_rows.size:
            matrices = np.asarray(feature_matrices, dtype=float)
            if matrices.ndim != 3 or matrices.shape[1:] != (NUM_FEATURES, WINDOW_LENGTH):
                raise ValueError(
                    f"expected (n, {NUM_FEATURES}, {WINDOW_LENGTH}) matrices, "
                    f"got {matrices.shape}"
                )
            stall_probabilities = self.predictor.predict_batch(matrices[stalled_rows])[:, 1]
            probabilities = probabilities.copy()
            probabilities[stalled_rows] = np.clip(
                probabilities[stalled_rows] + stall_probabilities, 0.0, 1.0
            )
        return probabilities

    def predict(
        self,
        feature_matrix: np.ndarray,
        level: int,
        switch_magnitude: int,
        stalled: bool,
    ) -> float:
        """Single-row convenience passthrough to the wrapped predictor."""
        return self.predictor.predict(
            feature_matrix, level=level, switch_magnitude=switch_magnitude, stalled=stalled
        )


class BatchedMonteCarloEvaluator:
    """Algorithm 2 with all virtual-playback rollouts advanced in lockstep.

    Semantically this estimates the same quantity as the sequential evaluator
    (``R_exit = exited / watched`` over ``M`` samples of frozen-bandwidth
    virtual playback) but restructures the loop: at every virtual segment step
    the still-alive rollouts each pick a level and advance their private
    player environment, and then *one* batched predictor call scores all of
    them.  ABR state is kept per rollout via cheap deep copies, so stateful
    algorithms behave exactly as they do in per-sample rollouts.

    Two entry points share the rollout engine:

    * :meth:`evaluate` — one candidate, ``M`` samples, with the
      virtual-playback pruning rule; signature matches
      :class:`~repro.core.monte_carlo.MonteCarloEvaluator`, so instances drop
      straight into ``LingXiController.evaluator``.
    * :meth:`evaluate_many` — **all candidates of an activation at once**:
      ``C × M`` rollouts advance in lockstep and every step issues a single
      NN forward over every alive rollout of every candidate.  Each candidate
      draws from its own RNG, so passing ``C`` generators seeded identically
      reproduces per-candidate :meth:`evaluate` results bit-for-bit (common
      random numbers across candidates, exactly like the sequential sweep).
    """

    def __init__(
        self,
        predictor: BatchedExitPredictor | ExitRatePredictor,
        config: MonteCarloConfig | None = None,
        pruning: PruningPolicy | None = None,
    ) -> None:
        if not isinstance(predictor, BatchedExitPredictor):
            predictor = BatchedExitPredictor(predictor)
        self.predictor = predictor
        self.config = config or MonteCarloConfig()
        self.pruning = pruning or PruningPolicy()

    def evaluate(
        self,
        parameters: QoEParameters,
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rng: np.random.Generator | None = None,
        best_exit_rate: float = float("inf"),
    ) -> float:
        """Estimated exit rate ``R_exit`` for ``parameters`` (batched rollout)."""
        rng = rng or np.random.default_rng(self.config.seed)
        return self._rollout(
            [parameters],
            abr,
            snapshot,
            user_state,
            rngs=[rng],
            best_exit_rate=best_exit_rate,
        )[0]

    def evaluate_many(
        self,
        parameters_list: Sequence[QoEParameters],
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rngs: Sequence[np.random.Generator] | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[float]:
        """Estimated exit rates for *all* candidates as one lockstep batch.

        ``rngs`` supplies one generator per candidate (pass generators with
        the same seed for the paired common-random-numbers comparison of an
        activation); alternatively a single ``rng`` is spawned into
        independent per-candidate streams.  Inter-candidate pruning is not
        applied — every candidate runs its full budget, which is exactly what
        makes the single-forward-per-step batching possible.
        """
        if not parameters_list:
            return []
        if rngs is None:
            source = rng or np.random.default_rng(self.config.seed)
            rngs = source.spawn(len(parameters_list))
        if len(rngs) != len(parameters_list):
            raise ValueError("need exactly one RNG per candidate")
        return self._rollout(
            list(parameters_list),
            abr,
            snapshot,
            user_state,
            rngs=list(rngs),
            best_exit_rate=float("inf"),
        )

    def _rollout(
        self,
        candidates: list[QoEParameters],
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rngs: list[np.random.Generator],
        best_exit_rate: float,
    ) -> list[float]:
        """Advance ``len(candidates) * M`` virtual rollouts in lockstep.

        Every step draws each candidate's bandwidths and exit uniforms from
        that candidate's own generator (in the same order as a standalone
        :meth:`evaluate` call would), advances the per-rollout player
        environments, and scores **all** alive rollouts with one batched
        predictor call.  Pruning against ``best_exit_rate`` only applies to
        single-candidate rollouts (the :meth:`evaluate` path).
        """
        saved_parameters = abr.parameters
        video = virtual_video(snapshot, self.config)
        frozen_bandwidth = snapshot.bandwidth_model
        num_samples = self.config.num_samples
        num_candidates = len(candidates)
        prune = num_candidates == 1
        exited = [0] * num_candidates
        watched = [0] * num_candidates
        try:
            abrs: list[list[ABRAlgorithm]] = []
            environments: list[list[PlayerEnvironment]] = []
            states: list[list[UserState]] = []
            throughputs: list[list[list[float]]] = []
            last_levels: list[list[int | None]] = []
            for parameters in candidates:
                abr.set_parameters(parameters)
                clones = []
                for _ in range(num_samples):
                    clone = copy.deepcopy(abr)
                    clone.reset()
                    clones.append(clone)
                abrs.append(clones)
                environments.append(
                    [
                        PlayerEnvironment(
                            video=video,
                            rtt=snapshot.rtt,
                            initial_buffer=snapshot.buffer,
                            base_buffer_cap=snapshot.base_buffer_cap,
                            bandwidth_model=frozen_bandwidth.copy(),
                        )
                        for _ in range(num_samples)
                    ]
                )
                candidate_states = [user_state.copy() for _ in range(num_samples)]
                states.append(candidate_states)
                throughputs.append(
                    [list(state.throughputs_kbps) for state in candidate_states]
                )
                last_levels.append([snapshot.last_level] * num_samples)
            alive = np.ones((num_candidates, num_samples), dtype=bool)

            num_steps = int(
                np.ceil(self.config.max_sample_duration_s / snapshot.segment_duration)
            )
            for _step in range(num_steps):
                total_alive = int(np.count_nonzero(alive))
                if total_alive == 0:
                    break
                levels = np.empty(total_alive, dtype=int)
                switches = np.empty(total_alive, dtype=int)
                stalled = np.empty(total_alive, dtype=bool)
                features = np.zeros((total_alive, NUM_FEATURES, WINDOW_LENGTH))
                spans: list[tuple[int, np.ndarray, int]] = []
                offset = 0
                for c in range(num_candidates):
                    indices = np.flatnonzero(alive[c])
                    if indices.size == 0:
                        continue
                    spans.append((c, indices, offset))
                    bandwidths = np.atleast_1d(
                        frozen_bandwidth.sample(rngs[c], size=indices.size)
                    )
                    for j, i in enumerate(indices):
                        row = offset + j
                        environment = environments[c][i]
                        context = ABRContext(
                            segment_index=environment.segment_index,
                            buffer=environment.buffer,
                            buffer_cap=environment.buffer_cap,
                            last_level=last_levels[c][i],
                            throughput_history_kbps=tuple(throughputs[c][i][-8:]),
                            next_segment_sizes_kbit=video.sizes_tuple(
                                environment.segment_index
                            ),
                            ladder=snapshot.ladder,
                            segment_duration=snapshot.segment_duration,
                            bandwidth_mean_kbps=frozen_bandwidth.mean,
                            bandwidth_std_kbps=frozen_bandwidth.std,
                        )
                        level = int(abrs[c][i].select_level(context))
                        result = environment.step(level, float(bandwidths[j]))
                        states[c][i].observe_segment(
                            bitrate_kbps=result.bitrate_kbps,
                            throughput_kbps=result.throughput_kbps,
                            stall_time=result.stall_time,
                            segment_duration=snapshot.segment_duration,
                        )
                        throughputs[c][i].append(result.throughput_kbps)
                        levels[row] = level
                        switches[row] = (
                            0
                            if last_levels[c][i] is None
                            else level - last_levels[c][i]
                        )
                        stalled[row] = result.stall_time > 1e-12
                        if stalled[row]:
                            features[row] = states[c][i].feature_matrix()
                        last_levels[c][i] = level
                    offset += indices.size

                probabilities = self.predictor.predict_many(
                    features, levels, switches, stalled
                )
                for c, indices, start in spans:
                    exits = (
                        rngs[c].random(indices.size)
                        < probabilities[start : start + indices.size]
                    )
                    watched[c] += int(indices.size)
                    exited[c] += int(np.count_nonzero(exits))
                    alive[c][indices[exits]] = False
                    if prune and self.pruning.abort_candidate(
                        exited[c], watched[c], best_exit_rate
                    ):
                        return [exited[c] / watched[c]]
        finally:
            abr.set_parameters(saved_parameters)
        return [
            exited[c] / watched[c] if watched[c] else 1.0
            for c in range(num_candidates)
        ]
