"""Batched exit-rate inference for the Monte-Carlo hot path.

The sequential :class:`~repro.core.monte_carlo.MonteCarloEvaluator` walks its
``M`` virtual-playback samples one after another and calls the exit predictor
once per simulated segment — a single-row neural-network forward pass each
time, which is dominated by per-call numpy overhead rather than arithmetic.

This module replaces that hot path with two pieces:

* :class:`BatchedExitPredictor` — a thin wrapper around a trained
  :class:`~repro.core.exit_predictor.ExitRatePredictor` exposing
  :meth:`~BatchedExitPredictor.predict_many`: Equation 4 evaluated for ``n``
  decision points at once, with the OS baseline vectorised and a *single*
  NN forward pass over the stalled subset.  Outputs match the unbatched
  ``predict`` row-for-row (to float64 round-off).
* :class:`BatchedMonteCarloEvaluator` — a drop-in replacement for the
  sequential evaluator (same ``evaluate`` signature, so it can be swapped into
  a :class:`~repro.core.controller.LingXiController`) that advances all ``M``
  samples in lockstep and batches every per-step predictor call across the
  samples that are still alive.
"""

from __future__ import annotations

import copy

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig
from repro.core.state import PlayerSnapshot, UserState
from repro.core.triggers import PruningPolicy
from repro.datasets.stall_dataset import NUM_FEATURES, WINDOW_LENGTH
from repro.sim.player import PlayerEnvironment
from repro.sim.session import ABRContext
from repro.sim.video import Video


class BatchedExitPredictor:
    """Vectorised view of a hybrid exit-rate predictor (Equation 4, batched)."""

    def __init__(self, predictor: ExitRatePredictor) -> None:
        self.predictor = predictor

    @property
    def statistics_model(self):
        """The wrapped predictor's OS model."""
        return self.predictor.statistics_model

    def baseline_many(
        self, levels: np.ndarray, switch_magnitudes: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``OS(Quality, Smoothness)`` for ``n`` decision points."""
        model = self.predictor.statistics_model
        levels = np.asarray(levels, dtype=int)
        switches = np.asarray(switch_magnitudes, dtype=int)
        if np.any(levels < 0):
            raise ValueError("levels must be non-negative")
        level_rates = model.level_rates[np.minimum(levels, model.level_rates.size - 1)]
        magnitudes = np.minimum(np.abs(switches), model.switch_offsets.size - 1)
        offsets = model.switch_offsets[magnitudes] + np.where(
            switches < 0, model.downward_extra, 0.0
        )
        return np.clip(level_rates + offsets, 0.0, 1.0)

    def predict_many(
        self,
        feature_matrices: np.ndarray,
        levels: np.ndarray,
        switch_magnitudes: np.ndarray,
        stalled: np.ndarray,
    ) -> np.ndarray:
        """Equation 4 for a batch: hybrid exit probability per decision point.

        Parameters
        ----------
        feature_matrices:
            ``(n, 5, 8)`` stack of per-sample feature matrices.  Rows whose
            ``stalled`` flag is false are never fed to the network, so their
            matrix content is irrelevant (zeros are fine).
        levels / switch_magnitudes / stalled:
            Length-``n`` vectors describing each decision point.
        """
        stalled = np.asarray(stalled, dtype=bool)
        probabilities = self.baseline_many(levels, switch_magnitudes)
        stalled_rows = np.flatnonzero(stalled)
        if stalled_rows.size:
            matrices = np.asarray(feature_matrices, dtype=float)
            if matrices.ndim != 3 or matrices.shape[1:] != (NUM_FEATURES, WINDOW_LENGTH):
                raise ValueError(
                    f"expected (n, {NUM_FEATURES}, {WINDOW_LENGTH}) matrices, "
                    f"got {matrices.shape}"
                )
            stall_probabilities = self.predictor.predict_batch(matrices[stalled_rows])[:, 1]
            probabilities = probabilities.copy()
            probabilities[stalled_rows] = np.clip(
                probabilities[stalled_rows] + stall_probabilities, 0.0, 1.0
            )
        return probabilities

    def predict(
        self,
        feature_matrix: np.ndarray,
        level: int,
        switch_magnitude: int,
        stalled: bool,
    ) -> float:
        """Single-row convenience passthrough to the wrapped predictor."""
        return self.predictor.predict(
            feature_matrix, level=level, switch_magnitude=switch_magnitude, stalled=stalled
        )


class BatchedMonteCarloEvaluator:
    """Algorithm 2 with all virtual-playback samples advanced in lockstep.

    Semantically this estimates the same quantity as the sequential evaluator
    (``R_exit = exited / watched`` over ``M`` samples of frozen-bandwidth
    virtual playback) but restructures the loop: at every virtual segment step
    the still-alive samples each pick a level and advance their private player
    environment, and then *one* batched predictor call scores all of them.
    ABR state is kept per sample via cheap deep copies, so stateful algorithms
    behave exactly as they do in per-sample rollouts.

    The ``evaluate`` signature matches
    :class:`~repro.core.monte_carlo.MonteCarloEvaluator`, so instances drop
    straight into ``LingXiController.evaluator``.
    """

    def __init__(
        self,
        predictor: BatchedExitPredictor | ExitRatePredictor,
        config: MonteCarloConfig | None = None,
        pruning: PruningPolicy | None = None,
    ) -> None:
        if not isinstance(predictor, BatchedExitPredictor):
            predictor = BatchedExitPredictor(predictor)
        self.predictor = predictor
        self.config = config or MonteCarloConfig()
        self.pruning = pruning or PruningPolicy()

    def _virtual_video(self, snapshot: PlayerSnapshot) -> Video:
        num_segments = max(
            2, int(np.ceil(self.config.max_sample_duration_s / snapshot.segment_duration))
        )
        return Video(
            ladder=snapshot.ladder,
            num_segments=num_segments,
            segment_duration=snapshot.segment_duration,
            vbr_std=self.config.vbr_std,
            seed=self.config.seed,
        )

    def evaluate(
        self,
        parameters: QoEParameters,
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rng: np.random.Generator | None = None,
        best_exit_rate: float = float("inf"),
    ) -> float:
        """Estimated exit rate ``R_exit`` for ``parameters`` (batched rollout)."""
        rng = rng or np.random.default_rng(self.config.seed)
        saved_parameters = abr.parameters
        abr.set_parameters(parameters)
        video = self._virtual_video(snapshot)
        frozen_bandwidth = snapshot.bandwidth_model
        num_samples = self.config.num_samples
        exited_count = 0
        watched_count = 0
        try:
            abrs: list[ABRAlgorithm] = []
            for _ in range(num_samples):
                clone = copy.deepcopy(abr)
                clone.reset()
                abrs.append(clone)
            environments = [
                PlayerEnvironment(
                    video=video,
                    rtt=snapshot.rtt,
                    initial_buffer=snapshot.buffer,
                    base_buffer_cap=snapshot.base_buffer_cap,
                    bandwidth_model=frozen_bandwidth.copy(),
                )
                for _ in range(num_samples)
            ]
            states = [user_state.copy() for _ in range(num_samples)]
            throughputs = [list(state.throughputs_kbps) for state in states]
            last_levels: list[int | None] = [snapshot.last_level] * num_samples
            alive = np.ones(num_samples, dtype=bool)

            num_steps = int(
                np.ceil(self.config.max_sample_duration_s / snapshot.segment_duration)
            )
            for _step in range(num_steps):
                indices = np.flatnonzero(alive)
                if indices.size == 0:
                    break
                bandwidths = np.atleast_1d(
                    frozen_bandwidth.sample(rng, size=indices.size)
                )
                levels = np.empty(indices.size, dtype=int)
                switches = np.empty(indices.size, dtype=int)
                stalled = np.empty(indices.size, dtype=bool)
                features = np.zeros((indices.size, NUM_FEATURES, WINDOW_LENGTH))
                for j, i in enumerate(indices):
                    environment = environments[i]
                    context = ABRContext(
                        segment_index=environment.segment_index,
                        buffer=environment.buffer,
                        buffer_cap=environment.buffer_cap,
                        last_level=last_levels[i],
                        throughput_history_kbps=tuple(throughputs[i][-8:]),
                        next_segment_sizes_kbit=tuple(
                            video.sizes_for_segment(environment.segment_index)
                        ),
                        ladder=snapshot.ladder,
                        segment_duration=snapshot.segment_duration,
                        bandwidth_mean_kbps=frozen_bandwidth.mean,
                        bandwidth_std_kbps=frozen_bandwidth.std,
                    )
                    level = int(abrs[i].select_level(context))
                    result = environment.step(level, float(bandwidths[j]))
                    states[i].observe_segment(
                        bitrate_kbps=result.bitrate_kbps,
                        throughput_kbps=result.throughput_kbps,
                        stall_time=result.stall_time,
                        segment_duration=snapshot.segment_duration,
                    )
                    throughputs[i].append(result.throughput_kbps)
                    levels[j] = level
                    switches[j] = 0 if last_levels[i] is None else level - last_levels[i]
                    stalled[j] = result.stall_time > 1e-12
                    if stalled[j]:
                        features[j] = states[i].feature_matrix()
                    last_levels[i] = level

                probabilities = self.predictor.predict_many(
                    features, levels, switches, stalled
                )
                exits = rng.random(indices.size) < probabilities
                watched_count += int(indices.size)
                exited_count += int(np.count_nonzero(exits))
                alive[indices[exits]] = False
                if self.pruning.abort_candidate(exited_count, watched_count, best_exit_rate):
                    return exited_count / watched_count
        finally:
            abr.set_parameters(saved_parameters)
        if watched_count == 0:
            return 1.0
        return exited_count / watched_count
