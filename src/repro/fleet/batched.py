"""Batched exit-rate inference for the Monte-Carlo hot path.

The sequential :class:`~repro.core.monte_carlo.MonteCarloEvaluator` walks its
``M`` virtual-playback samples one after another and calls the exit predictor
once per simulated segment — a single-row neural-network forward pass each
time, which is dominated by per-call numpy overhead rather than arithmetic.

This module replaces that hot path with two pieces:

* :class:`BatchedExitPredictor` — a thin wrapper around a trained
  :class:`~repro.core.exit_predictor.ExitRatePredictor` exposing
  :meth:`~BatchedExitPredictor.predict_many`: Equation 4 evaluated for ``n``
  decision points at once, with the OS baseline vectorised and a *single*
  NN forward pass over the stalled subset.  Outputs match the unbatched
  ``predict`` row-for-row (to float64 round-off).
* :class:`BatchedMonteCarloEvaluator` — a drop-in replacement for the
  sequential evaluator (same ``evaluate`` signature, so it can be swapped into
  a :class:`~repro.core.controller.LingXiController`) that advances all ``M``
  samples in lockstep and batches every per-step predictor call across the
  samples that are still alive.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro import obs
from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig, virtual_video
from repro.core.state import PlayerSnapshot, UserState
from repro.core.triggers import PruningPolicy
from repro.datasets.stall_dataset import NUM_FEATURES, WINDOW_LENGTH
from repro.sim.player import PlayerEnvironment
from repro.sim.session import ABRContext


@dataclass
class RolloutRequest:
    """One session's share of a cross-session Monte-Carlo evaluation.

    A request bundles everything :meth:`BatchedMonteCarloEvaluator.evaluate`
    (one candidate) or :meth:`~BatchedMonteCarloEvaluator.evaluate_many`
    (a sweep) needs for a *single* session — its candidates, ABR template,
    player snapshot, user state and per-candidate RNGs — so that several
    sessions' evaluations can advance as one flattened lockstep rollout with
    a single NN forward per virtual step across all of them
    (:meth:`BatchedMonteCarloEvaluator.evaluate_requests`).

    ``config`` / ``pruning`` default to the evaluator's own; single-candidate
    requests apply the virtual-playback pruning rule against
    ``best_exit_rate`` exactly like a standalone ``evaluate`` call.
    """

    candidates: Sequence[QoEParameters]
    abr: ABRAlgorithm
    snapshot: PlayerSnapshot
    user_state: UserState
    rngs: Sequence[np.random.Generator]
    best_exit_rate: float = float("inf")
    config: MonteCarloConfig | None = None
    pruning: PruningPolicy | None = None


@dataclass
class _RolloutBlock:
    """Mutable lockstep state of one (request, candidate) pair."""

    request_index: int
    candidate_index: int
    rng: np.random.Generator
    video: object
    frozen_bandwidth: object
    snapshot: PlayerSnapshot
    pruning: PruningPolicy
    prune: bool
    best_exit_rate: float
    num_steps: int
    abrs: list[ABRAlgorithm]
    environments: list[PlayerEnvironment]
    states: list[UserState]
    throughputs: list[list[float]]
    last_levels: list[int | None]
    alive: np.ndarray = field(init=False)
    exited: int = 0
    watched: int = 0
    done: bool = False

    def __post_init__(self) -> None:
        self.alive = np.ones(len(self.abrs), dtype=bool)


class BatchedExitPredictor:
    """Vectorised view of a hybrid exit-rate predictor (Equation 4, batched)."""

    def __init__(self, predictor: ExitRatePredictor) -> None:
        self.predictor = predictor

    @property
    def statistics_model(self):
        """The wrapped predictor's OS model."""
        return self.predictor.statistics_model

    def baseline_many(
        self, levels: np.ndarray, switch_magnitudes: np.ndarray
    ) -> np.ndarray:
        """Vectorised ``OS(Quality, Smoothness)`` for ``n`` decision points."""
        model = self.predictor.statistics_model
        levels = np.asarray(levels, dtype=int)
        switches = np.asarray(switch_magnitudes, dtype=int)
        if np.any(levels < 0):
            raise ValueError("levels must be non-negative")
        level_rates = model.level_rates[np.minimum(levels, model.level_rates.size - 1)]
        magnitudes = np.minimum(np.abs(switches), model.switch_offsets.size - 1)
        offsets = model.switch_offsets[magnitudes] + np.where(
            switches < 0, model.downward_extra, 0.0
        )
        return np.clip(level_rates + offsets, 0.0, 1.0)

    def predict_many(
        self,
        feature_matrices: np.ndarray,
        levels: np.ndarray,
        switch_magnitudes: np.ndarray,
        stalled: np.ndarray,
    ) -> np.ndarray:
        """Equation 4 for a batch: hybrid exit probability per decision point.

        Parameters
        ----------
        feature_matrices:
            ``(n, 5, 8)`` stack of per-sample feature matrices.  Rows whose
            ``stalled`` flag is false are never fed to the network, so their
            matrix content is irrelevant (zeros are fine).
        levels / switch_magnitudes / stalled:
            Length-``n`` vectors describing each decision point.
        """
        stalled = np.asarray(stalled, dtype=bool)
        probabilities = self.baseline_many(levels, switch_magnitudes)
        stalled_rows = np.flatnonzero(stalled)
        if stalled_rows.size:
            matrices = np.asarray(feature_matrices, dtype=float)
            if matrices.ndim != 3 or matrices.shape[1:] != (NUM_FEATURES, WINDOW_LENGTH):
                raise ValueError(
                    f"expected (n, {NUM_FEATURES}, {WINDOW_LENGTH}) matrices, "
                    f"got {matrices.shape}"
                )
            obs.counter_add("nn.forwards")
            obs.counter_add("nn.rows", int(stalled_rows.size))
            obs.observe("nn.batch_size", int(stalled_rows.size))
            with obs.span("nn.forward"):
                stall_probabilities = self.predictor.predict_batch(
                    matrices[stalled_rows]
                )[:, 1]
            probabilities = probabilities.copy()
            probabilities[stalled_rows] = np.clip(
                probabilities[stalled_rows] + stall_probabilities, 0.0, 1.0
            )
        return probabilities

    def predict(
        self,
        feature_matrix: np.ndarray,
        level: int,
        switch_magnitude: int,
        stalled: bool,
    ) -> float:
        """Single-row convenience passthrough to the wrapped predictor."""
        return self.predictor.predict(
            feature_matrix, level=level, switch_magnitude=switch_magnitude, stalled=stalled
        )


class BatchedMonteCarloEvaluator:
    """Algorithm 2 with all virtual-playback rollouts advanced in lockstep.

    Semantically this estimates the same quantity as the sequential evaluator
    (``R_exit = exited / watched`` over ``M`` samples of frozen-bandwidth
    virtual playback) but restructures the loop: at every virtual segment step
    the still-alive rollouts each pick a level and advance their private
    player environment, and then *one* batched predictor call scores all of
    them.  ABR state is kept per rollout via cheap deep copies, so stateful
    algorithms behave exactly as they do in per-sample rollouts.

    Two entry points share the rollout engine:

    * :meth:`evaluate` — one candidate, ``M`` samples, with the
      virtual-playback pruning rule; signature matches
      :class:`~repro.core.monte_carlo.MonteCarloEvaluator`, so instances drop
      straight into ``LingXiController.evaluator``.
    * :meth:`evaluate_many` — **all candidates of an activation at once**:
      ``C × M`` rollouts advance in lockstep and every step issues a single
      NN forward over every alive rollout of every candidate.  Each candidate
      draws from its own RNG, so passing ``C`` generators seeded identically
      reproduces per-candidate :meth:`evaluate` results bit-for-bit (common
      random numbers across candidates, exactly like the sequential sweep).
    """

    def __init__(
        self,
        predictor: BatchedExitPredictor | ExitRatePredictor,
        config: MonteCarloConfig | None = None,
        pruning: PruningPolicy | None = None,
    ) -> None:
        if not isinstance(predictor, BatchedExitPredictor):
            predictor = BatchedExitPredictor(predictor)
        self.predictor = predictor
        self.config = config or MonteCarloConfig()
        self.pruning = pruning or PruningPolicy()

    def evaluate(
        self,
        parameters: QoEParameters,
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rng: np.random.Generator | None = None,
        best_exit_rate: float = float("inf"),
    ) -> float:
        """Estimated exit rate ``R_exit`` for ``parameters`` (batched rollout)."""
        rng = rng or np.random.default_rng(self.config.seed)
        return self.evaluate_requests(
            [
                RolloutRequest(
                    candidates=[parameters],
                    abr=abr,
                    snapshot=snapshot,
                    user_state=user_state,
                    rngs=[rng],
                    best_exit_rate=best_exit_rate,
                )
            ]
        )[0][0]

    def evaluate_many(
        self,
        parameters_list: Sequence[QoEParameters],
        abr: ABRAlgorithm,
        snapshot: PlayerSnapshot,
        user_state: UserState,
        rngs: Sequence[np.random.Generator] | None = None,
        rng: np.random.Generator | None = None,
    ) -> list[float]:
        """Estimated exit rates for *all* candidates as one lockstep batch.

        ``rngs`` supplies one generator per candidate (pass generators with
        the same seed for the paired common-random-numbers comparison of an
        activation); alternatively a single ``rng`` is spawned into
        independent per-candidate streams.  Inter-candidate pruning is not
        applied — every candidate runs its full budget, which is exactly what
        makes the single-forward-per-step batching possible.
        """
        if not parameters_list:
            return []
        if rngs is None:
            source = rng or np.random.default_rng(self.config.seed)
            rngs = source.spawn(len(parameters_list))
        if len(rngs) != len(parameters_list):
            raise ValueError("need exactly one RNG per candidate")
        return self.evaluate_requests(
            [
                RolloutRequest(
                    candidates=list(parameters_list),
                    abr=abr,
                    snapshot=snapshot,
                    user_state=user_state,
                    rngs=list(rngs),
                )
            ]
        )[0]

    def evaluate_requests(
        self, requests: Sequence[RolloutRequest]
    ) -> list[list[float]]:
        """Advance *all* requests' rollouts in one flattened lockstep batch.

        This is the cross-session generalisation of the single-session
        rollout: each :class:`RolloutRequest` contributes ``C_r × M_r``
        virtual playbacks, every step draws each (request, candidate) block's
        bandwidths and exit uniforms from that block's own generator (in the
        same order a standalone :meth:`evaluate` / :meth:`evaluate_many` call
        would), and **one** batched predictor call scores every alive rollout
        of every request.  Results come back per request, per candidate.

        Blocks never share randomness, so the flattening is exact: each
        request's values equal what its own single-request call would return
        (this is what lets the lockstep controller host batch all
        concurrently-optimizing sessions into one NN forward per step).
        Single-candidate requests apply the virtual-playback pruning rule
        against their ``best_exit_rate`` and drop out of the batch the moment
        they abort, exactly like a standalone ``evaluate``.
        """
        obs.counter_add("mc.rollout_requests", len(requests))
        with obs.span("mc.evaluate_requests"):
            return self._evaluate_requests_impl(requests)

    def _evaluate_requests_impl(
        self, requests: Sequence[RolloutRequest]
    ) -> list[list[float]]:
        saved: dict[int, tuple[ABRAlgorithm, QoEParameters]] = {}
        results: list[list[float | None]] = [
            [None] * len(request.candidates) for request in requests
        ]
        blocks: list[_RolloutBlock] = []
        try:
            for r, request in enumerate(requests):
                config = request.config or self.config
                pruning = request.pruning or self.pruning
                if len(request.rngs) != len(request.candidates):
                    raise ValueError("need exactly one RNG per candidate")
                video = virtual_video(request.snapshot, config)
                frozen_bandwidth = request.snapshot.bandwidth_model
                num_steps = int(
                    np.ceil(
                        config.max_sample_duration_s
                        / request.snapshot.segment_duration
                    )
                )
                if id(request.abr) not in saved:
                    saved[id(request.abr)] = (request.abr, request.abr.parameters)
                # Stateless ABRs (no ``reset`` override — the same convention
                # the vector backend's cohort routing uses) are never mutated
                # during a rollout, so all M samples of a candidate can share
                # one parameter-pinned clone instead of M deep copies.
                reset = getattr(type(request.abr), "reset", None)
                stateless = (
                    getattr(reset, "__qualname__", "") == "ABRAlgorithm.reset"
                )
                for c, parameters in enumerate(request.candidates):
                    request.abr.set_parameters(parameters)
                    if stateless:
                        clone = copy.deepcopy(request.abr)
                        clone.reset()
                        clones = [clone] * config.num_samples
                    else:
                        clones = []
                        for _ in range(config.num_samples):
                            clone = copy.deepcopy(request.abr)
                            clone.reset()
                            clones.append(clone)
                    states = [
                        request.user_state.copy() for _ in range(config.num_samples)
                    ]
                    blocks.append(
                        _RolloutBlock(
                            request_index=r,
                            candidate_index=c,
                            rng=request.rngs[c],
                            video=video,
                            frozen_bandwidth=frozen_bandwidth,
                            snapshot=request.snapshot,
                            pruning=pruning,
                            prune=len(request.candidates) == 1,
                            best_exit_rate=request.best_exit_rate,
                            num_steps=num_steps,
                            abrs=clones,
                            environments=[
                                PlayerEnvironment(
                                    video=video,
                                    rtt=request.snapshot.rtt,
                                    initial_buffer=request.snapshot.buffer,
                                    base_buffer_cap=request.snapshot.base_buffer_cap,
                                    bandwidth_model=frozen_bandwidth.copy(),
                                )
                                for _ in range(config.num_samples)
                            ],
                            states=states,
                            throughputs=[
                                list(state.throughputs_kbps) for state in states
                            ],
                            last_levels=[request.snapshot.last_level]
                            * config.num_samples,
                        )
                    )

            max_steps = max((block.num_steps for block in blocks), default=0)
            for step in range(max_steps):
                stepping: list[tuple[_RolloutBlock, np.ndarray, int]] = []
                total_alive = 0
                for block in blocks:
                    if block.done or step >= block.num_steps:
                        continue
                    indices = np.flatnonzero(block.alive)
                    if indices.size == 0:
                        continue
                    stepping.append((block, indices, total_alive))
                    total_alive += int(indices.size)
                if total_alive == 0:
                    break
                levels = np.empty(total_alive, dtype=int)
                switches = np.empty(total_alive, dtype=int)
                stalled = np.empty(total_alive, dtype=bool)
                features = np.zeros((total_alive, NUM_FEATURES, WINDOW_LENGTH))
                for block, indices, offset in stepping:
                    snapshot = block.snapshot
                    frozen_bandwidth = block.frozen_bandwidth
                    video = block.video
                    bandwidths = np.atleast_1d(
                        frozen_bandwidth.sample(block.rng, size=indices.size)
                    )
                    for j, i in enumerate(indices):
                        row = offset + j
                        environment = block.environments[i]
                        buffer_cap = environment.buffer_cap
                        context = ABRContext(
                            segment_index=environment.segment_index,
                            buffer=environment.buffer,
                            buffer_cap=buffer_cap,
                            last_level=block.last_levels[i],
                            throughput_history_kbps=tuple(
                                block.throughputs[i][-8:]
                            ),
                            next_segment_sizes_kbit=video.sizes_tuple(
                                environment.segment_index
                            ),
                            ladder=snapshot.ladder,
                            segment_duration=snapshot.segment_duration,
                            bandwidth_mean_kbps=frozen_bandwidth.mean,
                            bandwidth_std_kbps=frozen_bandwidth.std,
                        )
                        level = int(block.abrs[i].select_level(context))
                        result = environment.step(
                            level, float(bandwidths[j]), buffer_cap=buffer_cap
                        )
                        block.states[i].observe_segment(
                            bitrate_kbps=result.bitrate_kbps,
                            throughput_kbps=result.throughput_kbps,
                            stall_time=result.stall_time,
                            segment_duration=snapshot.segment_duration,
                        )
                        block.throughputs[i].append(result.throughput_kbps)
                        levels[row] = level
                        switches[row] = (
                            0
                            if block.last_levels[i] is None
                            else level - block.last_levels[i]
                        )
                        stalled[row] = result.stall_time > 1e-12
                        if stalled[row]:
                            features[row] = block.states[i].feature_matrix()
                        block.last_levels[i] = level

                probabilities = self.predictor.predict_many(
                    features, levels, switches, stalled
                )
                for block, indices, start in stepping:
                    exits = (
                        block.rng.random(indices.size)
                        < probabilities[start : start + indices.size]
                    )
                    block.watched += int(indices.size)
                    block.exited += int(np.count_nonzero(exits))
                    block.alive[indices[exits]] = False
                    if block.prune and block.pruning.abort_candidate(
                        block.exited, block.watched, block.best_exit_rate
                    ):
                        block.done = True
                        results[block.request_index][block.candidate_index] = (
                            block.exited / block.watched
                        )
        finally:
            for abr, parameters in saved.values():
                abr.set_parameters(parameters)
        for block in blocks:
            if results[block.request_index][block.candidate_index] is None:
                results[block.request_index][block.candidate_index] = (
                    block.exited / block.watched if block.watched else 1.0
                )
        return [list(values) for values in results]
