"""repro.fleet — sharded multi-user session orchestration.

The fleet layer scales the single-session engine of :mod:`repro.sim` into a
platform simulator:

* :mod:`repro.fleet.orchestrator` — :class:`FleetOrchestrator` shards a
  :class:`~repro.users.population.UserPopulation` across a process pool with
  deterministic per-shard seeding and merges the results into the standard
  :class:`~repro.analytics.logs.LogCollection` analytics format.
* :mod:`repro.fleet.batched` — :class:`BatchedExitPredictor` and the lockstep
  :class:`BatchedMonteCarloEvaluator` that batch exit-rate NN inference in the
  Monte-Carlo hot path.
* :mod:`repro.fleet.scenarios` — the workload registry (steady state, flash
  crowd, regional degradation, device mix, plus user-registered ones).
* :mod:`repro.fleet.pool` — persistent shared-memory worker pool:
  long-lived forked workers, descriptor dispatch through a worker-side
  object cache, zero-copy columnar results in shared-memory arenas.
* :mod:`repro.fleet.telemetry` — JSONL event pipeline with a lossless
  replay/loader API.
* :mod:`repro.fleet.checkpoint` — per-user controller-state checkpointing for
  multi-day campaigns across process boundaries.
* :mod:`repro.fleet.longitudinal` — engagement-coupled multi-day campaigns:
  retention-driven churn, population drift, new-user influx, and the
  cross-day A/B harness (the compounding analogue of Figure 12).
"""

from repro.fleet.batched import BatchedExitPredictor, BatchedMonteCarloEvaluator
from repro.fleet.checkpoint import (
    FleetCheckpoint,
    checkpoint_controllers,
    load_fleet_checkpoint,
    register_checkpoint_migration,
    restore_controllers,
    save_checkpoint_states,
    save_fleet_checkpoint,
)
from repro.fleet.longitudinal import (
    CampaignResumeState,
    DayResult,
    DriftConfig,
    load_resume_state,
    LongitudinalABResult,
    LongitudinalCampaign,
    LongitudinalConfig,
    LongitudinalResult,
    RetentionDecision,
    assign_arms,
    replay_day_summaries,
    replay_retention_decisions,
    run_ab_campaign,
    run_longitudinal_campaign,
    shifting_device_mix,
)
from repro.fleet.pool import (
    CacheRef,
    PoolError,
    ShardDescriptor,
    ShardTaskError,
    WorkerCrashError,
    WorkerPool,
    shared_pool,
    shutdown_shared_pools,
)
from repro.fleet.orchestrator import (
    FleetConfig,
    FleetMetrics,
    FleetOrchestrator,
    FleetResult,
    HybFleetFactory,
    LingXiFleetFactory,
    ShardOutput,
    ShardTask,
    fleet_metrics,
    run_fleet_day,
    write_fleet_telemetry,
)
from repro.fleet.scenarios import (
    DeviceMixScenario,
    EveningPeakScenario,
    FlashCrowdScenario,
    FlashCrowdSharedScenario,
    LinkOutageScenario,
    RegionalDegradationScenario,
    Scenario,
    SteadyStateScenario,
    available_scenarios,
    get_scenario,
    register_scenario,
)
from repro.fleet.telemetry import (
    TelemetryEvent,
    TelemetryWriter,
    encode_events,
    encode_shard_events,
    iter_shard_events,
    link_utilization_event,
    read_events,
    replay_link_usage,
    replay_link_utilization,
    replay_log_collection,
    replay_run_report,
    replay_run_summary,
    replay_sessions,
    session_event,
    session_from_payload,
    session_payload,
    shard_summary_event,
)

__all__ = [
    "BatchedExitPredictor",
    "BatchedMonteCarloEvaluator",
    "FleetCheckpoint",
    "checkpoint_controllers",
    "load_fleet_checkpoint",
    "register_checkpoint_migration",
    "restore_controllers",
    "save_checkpoint_states",
    "save_fleet_checkpoint",
    "CampaignResumeState",
    "DayResult",
    "DriftConfig",
    "load_resume_state",
    "LongitudinalABResult",
    "LongitudinalCampaign",
    "LongitudinalConfig",
    "LongitudinalResult",
    "RetentionDecision",
    "assign_arms",
    "replay_day_summaries",
    "replay_retention_decisions",
    "run_ab_campaign",
    "run_longitudinal_campaign",
    "shifting_device_mix",
    "CacheRef",
    "PoolError",
    "ShardDescriptor",
    "ShardTaskError",
    "WorkerCrashError",
    "WorkerPool",
    "shared_pool",
    "shutdown_shared_pools",
    "encode_events",
    "encode_shard_events",
    "iter_shard_events",
    "shard_summary_event",
    "FleetConfig",
    "FleetMetrics",
    "FleetOrchestrator",
    "FleetResult",
    "HybFleetFactory",
    "LingXiFleetFactory",
    "ShardOutput",
    "ShardTask",
    "fleet_metrics",
    "run_fleet_day",
    "write_fleet_telemetry",
    "DeviceMixScenario",
    "EveningPeakScenario",
    "FlashCrowdScenario",
    "FlashCrowdSharedScenario",
    "LinkOutageScenario",
    "RegionalDegradationScenario",
    "Scenario",
    "SteadyStateScenario",
    "available_scenarios",
    "get_scenario",
    "register_scenario",
    "TelemetryEvent",
    "TelemetryWriter",
    "link_utilization_event",
    "read_events",
    "replay_link_usage",
    "replay_link_utilization",
    "replay_log_collection",
    "replay_run_report",
    "replay_run_summary",
    "replay_sessions",
    "session_event",
    "session_from_payload",
    "session_payload",
]
