"""Persistent shared-memory worker pool for fleet shards.

The classic ``multiprocessing.Pool`` route pays three taxes on every fleet
run: pool spawn, per-task pickling of the full :class:`ShardTask` (profiles,
video library, ABR factory, NN weights), and a full pickle of every
:class:`ShardOutput` on the way back.  At fleet scale the work per shard is
milliseconds of vector math, so the dispatch overhead dominates and adding
workers makes the run *slower* — the anti-scaling recorded in
``benchmarks/baselines``.

:class:`WorkerPool` removes all three taxes:

* **Long-lived workers.**  Processes are forked once (per pool) and reused
  across fleet runs and campaign days.  :func:`shared_pool` hands out one
  process-global pool per worker count, shut down at interpreter exit.
* **Descriptor dispatch.**  A run ships a :class:`ShardDescriptor` — seeds,
  scenario/library/factory *cache tokens*, shard index — a few hundred bytes.
  Heavy objects go through the worker-side object cache exactly once
  (:meth:`WorkerPool.cache`), and each worker rebuilds its shard's profile
  slice and `SeedSequence` locally from ``(seed, num_shards, shard_index)``,
  which is deterministic by construction.
* **Shared-memory results.**  A worker writes its shard's result — session
  metadata, the columnar trace export of :func:`repro.sim.vector.
  export_trace_columns`, link-usage columns, pickled controller states and
  the pre-encoded telemetry JSONL blob — into one of its two shared-memory
  arenas.  The parent maps the arena with zero-copy numpy views, materialises
  the :class:`ShardOutput`, and acks the arena slot so the worker may reuse
  it.  Only the tiny layout dict (and the obs snapshot, when profiling)
  travels over the pipe.

Determinism: the pool executes the exact same ``_run_shard`` function on the
exact same :class:`ShardTask` values the inline path builds, so pooled fleet
and longitudinal results are bit-identical to inline runs — the property
pinned by ``tests/test_pool.py``.

Resource-tracker hygiene: ``resource_tracker.ensure_running()`` is called
before the first fork, so parent and workers share one tracker process and
one registry entry per segment (the set in the tracker dedups the attach-side
re-register).  Arenas are unlinked exactly once, by their creating worker on
graceful shutdown (or by the parent when it reaps a crashed worker), so a
clean shutdown leaves no segments and no tracker warnings behind.
"""

from __future__ import annotations

import atexit
import json
import pickle
import time
import traceback
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from multiprocessing import connection, get_context, resource_tracker, shared_memory
from typing import Sequence

import numpy as np

from repro import obs
from repro.obs import live as obs_live
from repro.sim.vector import (
    _align8,
    export_trace_columns,
    import_trace_columns,
    trace_columns_nbytes,
)

#: Arena slots per worker: double buffering lets a worker start its next
#: shard while the parent is still draining the previous one.
ARENAS_PER_WORKER = 2

#: Smallest arena allocation; arenas grow geometrically and never shrink.
MIN_ARENA_BYTES = 1 << 20

#: Descriptors in flight per worker.  Two keeps every worker busy while the
#: parent drains, and bounds both pipe directions so dispatch can never
#: deadlock against a worker blocked on sending a result.
MAX_INFLIGHT = 2

#: Worker-side object-cache capacity (heavy objects: libraries, factories,
#: populations, topologies).  LRU eviction, driven by the parent.
CACHE_CAPACITY = 32

_RESULT_FORMAT_VERSION = 1

#: Fixed order of the numeric result columns in an arena.
_RESULT_ARRAYS = (
    "session.user",
    "session.trace",
    "session.day",
    "session.index",
    "session.mean_bw",
    "usage.step",
    "usage.link",
    "usage.active",
    "usage.capacity",
    "usage.demand",
    "usage.allocated",
)


class PoolError(RuntimeError):
    """Base class for worker-pool failures."""


class WorkerCrashError(PoolError):
    """A worker process died without reporting a result."""


class ShardTaskError(PoolError):
    """A shard raised inside a worker; carries the worker traceback."""


@dataclass(frozen=True)
class CacheRef:
    """Handle to an object registered in every worker's cache."""

    token: int


@dataclass(frozen=True)
class ShardDescriptor:
    """Everything a pooled worker needs to run one shard — a few hundred
    bytes on the wire.

    Heavy objects travel as :class:`CacheRef` tokens; the worker resolves
    them against its local cache and *recomputes* the shard's profile slice,
    link slice and `SeedSequence` from ``(seed, num_shards, shard_index)``
    with the same deterministic functions the inline path uses
    (``UserPopulation.shards`` / ``NetworkTopology.shard_profiles`` /
    ``SeedSequence.spawn``), so no per-shard state needs shipping at all.
    ``controller_states`` is the one per-shard payload carried inline: it is
    genuinely new data every day of a campaign.
    """

    run_id: str
    shard_index: int
    num_shards: int
    seed: int
    day: int
    sessions_per_user: int | None
    trace_length: int
    backend: str
    spec_batched: bool
    population: CacheRef
    scenario: CacheRef
    library: CacheRef
    abr_factory: CacheRef
    session_config: CacheRef
    network: CacheRef | None = None
    controller_states: dict = field(default_factory=dict)
    profile: bool = False
    #: Pre-encode the shard's telemetry events into the arena so the parent
    #: can stream them to disk without re-serialising.
    telemetry: bool = False
    #: Live-monitoring token ``(shm_name, interval_s)`` of the parent's
    #: :class:`repro.obs.live.LiveRun` progress table, or ``None``.  Workers
    #: attach lazily by name (they were forked before the run existed) and
    #: publish wall-clock heartbeats for the shard they are running — never
    #: touching simulation state, so pooled results stay bit-identical.
    heartbeat: tuple | None = None


# --------------------------------------------------------------------------- #
# Result packing (worker side) / unpacking (parent side)
# --------------------------------------------------------------------------- #
def _encode_result_arrays(output) -> tuple[dict, bytes, bytes]:
    """Columnar arrays + string table + controller pickle for one output."""
    users: dict[str, int] = {}
    trace_names: dict[str, int] = {}
    links: dict[str, int] = {}
    user_idx = [
        users.setdefault(log.user_id, len(users)) for log in output.sessions
    ]
    trace_idx = [
        trace_names.setdefault(log.trace.trace_name, len(trace_names))
        for log in output.sessions
    ]
    link_idx = [
        links.setdefault(sample.link_id, len(links))
        for sample in output.link_usage
    ]
    # Tier travels in the string table, parallel to ``links`` (a link's tier
    # is constant within a run, so one entry per link id suffices).
    link_tiers: dict[str, str] = {}
    for sample in output.link_usage:
        link_tiers.setdefault(sample.link_id, sample.tier)
    arrays = {
        "session.user": np.asarray(user_idx, dtype=np.int32),
        "session.trace": np.asarray(trace_idx, dtype=np.int32),
        "session.day": np.asarray(
            [log.day for log in output.sessions], dtype=np.int64
        ),
        "session.index": np.asarray(
            [log.session_index for log in output.sessions], dtype=np.int64
        ),
        "session.mean_bw": np.asarray(
            [log.mean_bandwidth_kbps for log in output.sessions], dtype=np.float64
        ),
        "usage.step": np.asarray(
            [sample.step for sample in output.link_usage], dtype=np.int64
        ),
        "usage.link": np.asarray(link_idx, dtype=np.int32),
        "usage.active": np.asarray(
            [sample.active_sessions for sample in output.link_usage], dtype=np.int64
        ),
        "usage.capacity": np.asarray(
            [sample.capacity_kbps for sample in output.link_usage], dtype=np.float64
        ),
        "usage.demand": np.asarray(
            [sample.demand_kbps for sample in output.link_usage], dtype=np.float64
        ),
        "usage.allocated": np.asarray(
            [sample.allocated_kbps for sample in output.link_usage], dtype=np.float64
        ),
    }
    strings = json.dumps(
        {
            "users": list(users),
            "traces": list(trace_names),
            "links": list(links),
            "link_tiers": [link_tiers[link_id] for link_id in links],
        }
    ).encode("utf-8")
    controller = pickle.dumps(
        output.controller_states, protocol=pickle.HIGHEST_PROTOCOL
    )
    return arrays, strings, controller


def _layout_result(
    buf, *, arrays: dict, strings: bytes, traces, controller: bytes,
    telemetry: bytes | None,
) -> tuple[dict, int]:
    """Write (``buf`` given) or measure (``buf=None``) one packed result.

    Single walk used for both sizing and writing, so the two can never
    disagree about offsets.
    """
    layout: dict = {"version": _RESULT_FORMAT_VERSION, "regions": {}}
    position = 0

    def put_bytes(name: str, data: bytes) -> None:
        nonlocal position
        position = _align8(position)
        if buf is not None:
            buf[position : position + len(data)] = data
        layout["regions"][name] = [position, len(data)]
        position += len(data)

    def put_array(name: str, array: np.ndarray) -> None:
        nonlocal position
        position = _align8(position)
        if buf is not None:
            view = np.frombuffer(
                buf, dtype=array.dtype, count=array.size, offset=position
            )
            view[:] = array
        layout["regions"][name] = [position, int(array.size), array.dtype.str]
        position += array.size * array.itemsize

    put_bytes("strings", strings)
    for name in _RESULT_ARRAYS:
        put_array(name, arrays[name])
    num_traces = len(traces)
    num_records = sum(len(trace.records) for trace in traces)
    position = _align8(position)
    if buf is None:
        position += trace_columns_nbytes(num_traces, num_records, offset=position)
        layout["trace_columns"] = None
    else:
        trace_layout, position = export_trace_columns(traces, buf, offset=position)
        layout["trace_columns"] = trace_layout
    put_bytes("controller", controller)
    if telemetry is not None:
        put_bytes("telemetry", telemetry)
    return layout, position


def _decode_shard_output(buf, layout: dict, shard_index: int, extra: dict):
    """Materialise a :class:`ShardOutput` from a packed arena region.

    Everything returned is plain Python data — transient numpy views only —
    so the arena slot may be acked (and overwritten) the moment this returns.
    """
    from repro.analytics.logs import SessionLog
    from repro.fleet.orchestrator import ShardOutput
    from repro.net.allocator import LinkUsageSample

    if layout.get("version") != _RESULT_FORMAT_VERSION:
        raise PoolError(f"unsupported result layout: {layout.get('version')!r}")
    regions = layout["regions"]

    def get_bytes(name: str) -> bytes:
        offset, length = regions[name]
        return bytes(buf[offset : offset + length])

    def get_list(name: str) -> list:
        offset, count, dtype = regions[name]
        return np.frombuffer(
            buf, dtype=np.dtype(dtype), count=count, offset=offset
        ).tolist()

    strings = json.loads(get_bytes("strings").decode("utf-8"))
    user_idx = get_list("session.user")
    trace_idx = get_list("session.trace")
    user_ids = [strings["users"][i] for i in user_idx]
    traces = import_trace_columns(
        buf,
        layout["trace_columns"],
        user_ids=user_ids,
        trace_names=[strings["traces"][i] for i in trace_idx],
    )
    sessions = [
        SessionLog(
            user_id=user_ids[i],
            day=day,
            session_index=session_index,
            trace=traces[i],
            mean_bandwidth_kbps=mean_bw,
        )
        for i, (day, session_index, mean_bw) in enumerate(
            zip(
                get_list("session.day"),
                get_list("session.index"),
                get_list("session.mean_bw"),
            )
        )
    ]
    link_tiers = strings.get("link_tiers") or ["edge"] * len(strings["links"])
    link_usage = [
        LinkUsageSample(
            step=step,
            link_id=strings["links"][link],
            capacity_kbps=capacity,
            active_sessions=active,
            demand_kbps=demand,
            allocated_kbps=allocated,
            tier=link_tiers[link],
        )
        for step, link, active, capacity, demand, allocated in zip(
            get_list("usage.step"),
            get_list("usage.link"),
            get_list("usage.active"),
            get_list("usage.capacity"),
            get_list("usage.demand"),
            get_list("usage.allocated"),
        )
    ]
    return ShardOutput(
        shard_index=shard_index,
        sessions=sessions,
        controller_states=pickle.loads(get_bytes("controller")),
        num_segments=int(extra["num_segments"]),
        wall_time_s=float(extra["wall_time_s"]),
        link_usage=link_usage,
        fallback_sessions=int(extra["fallback_sessions"]),
        batch_sessions=int(extra["batch_sessions"]),
        obs=extra["obs"],
        telemetry_blob=(
            get_bytes("telemetry") if "telemetry" in regions else None
        ),
    )


# --------------------------------------------------------------------------- #
# Worker process
# --------------------------------------------------------------------------- #
def _descriptor_task(descriptor: ShardDescriptor, cache: dict):
    """Rebuild the full :class:`ShardTask` a descriptor stands for.

    Mirrors the orchestrator's ``fleet.prepare`` exactly: same sharding
    functions, same `SeedSequence` spawn — so the task (and therefore the
    result) is bit-identical to the inline path's.
    """
    from repro.fleet.orchestrator import ShardTask

    population = cache[descriptor.population.token]
    network = (
        cache[descriptor.network.token] if descriptor.network is not None else None
    )
    if network is not None:
        profiles = network.shard_profiles(
            population.profiles, descriptor.num_shards
        )[descriptor.shard_index]
        shard_link_ids = tuple(
            network.shard_links(descriptor.num_shards)[descriptor.shard_index]
        )
    else:
        profiles = population.shards(descriptor.num_shards)[descriptor.shard_index]
        shard_link_ids = ()
    seed_seq = np.random.SeedSequence(descriptor.seed).spawn(
        descriptor.num_shards
    )[descriptor.shard_index]
    return ShardTask(
        run_id=descriptor.run_id,
        shard_index=descriptor.shard_index,
        seed_seq=seed_seq,
        profiles=tuple(profiles),
        scenario=cache[descriptor.scenario.token],
        library=cache[descriptor.library.token],
        abr_factory=cache[descriptor.abr_factory.token],
        sessions_per_user=descriptor.sessions_per_user,
        trace_length=descriptor.trace_length,
        day=descriptor.day,
        session_config=cache[descriptor.session_config.token],
        controller_states=descriptor.controller_states,
        backend=descriptor.backend,
        spec_batched=descriptor.spec_batched,
        seed=descriptor.seed,
        network=network,
        shard_link_ids=shard_link_ids,
        profile=descriptor.profile,
    )


def _worker_main(parent_conn, conn, worker_index: int) -> None:
    """Worker loop: resolve descriptors, run shards, pack results into
    shared-memory arenas, alternate slots under the parent's ack protocol."""
    parent_conn.close()
    obs.disable()  # a fork may inherit an enabled parent collector
    obs_live.reset_after_fork()  # ...and an inherited LiveRun/publisher
    from repro.fleet.orchestrator import _run_shard
    from repro.fleet.telemetry import encode_shard_events

    cache: dict[int, object] = {}
    arenas: list[shared_memory.SharedMemory | None] = [None] * ARENAS_PER_WORKER
    acked = [True] * ARENAS_PER_WORKER
    backlog: deque = deque()
    task_count = 0

    def next_message():
        return backlog.popleft() if backlog else conn.recv()

    def wait_for_ack(slot: int) -> bool:
        """Block until the parent has drained ``slot``; False on stop/EOF."""
        while not acked[slot]:
            try:
                message = conn.recv()
            except EOFError:
                return False
            if message[0] == "ack":
                acked[message[1]] = True
            elif message[0] == "stop":
                return False
            else:
                backlog.append(message)
        return True

    try:
        while True:
            try:
                message = next_message()
            except EOFError:
                break
            kind = message[0]
            if kind == "stop":
                break
            elif kind == "cache":
                cache[message[1]] = message[2]
            elif kind == "uncache":
                cache.pop(message[1], None)
            elif kind == "ack":
                acked[message[1]] = True
            elif kind == "run":
                descriptor: ShardDescriptor = message[1]
                try:
                    start = time.perf_counter()  # contract: DET-CLOCK-002 exempt(pack-time telemetry only; excluded from bit-exact comparison)
                    if descriptor.heartbeat is not None:
                        # Lazy re-attach: the run's progress table was created
                        # after this worker forked, so it arrives by name.
                        obs_live.attach_worker(*descriptor.heartbeat)
                    output = _run_shard(_descriptor_task(descriptor, cache))
                    telemetry = (
                        encode_shard_events(descriptor.run_id, output)
                        if descriptor.telemetry
                        else None
                    )
                    arrays, strings, controller = _encode_result_arrays(output)
                    traces = [log.trace for log in output.sessions]
                    _, nbytes = _layout_result(
                        None, arrays=arrays, strings=strings, traces=traces,
                        controller=controller, telemetry=telemetry,
                    )
                    slot = task_count % ARENAS_PER_WORKER
                    task_count += 1
                    if not wait_for_ack(slot):
                        break
                    arena = arenas[slot]
                    if arena is None or arena.size < nbytes:
                        if arena is not None:
                            arena.close()
                            arena.unlink()
                        capacity = max(
                            MIN_ARENA_BYTES,
                            arena.size * 2 if arena is not None else 0,
                            nbytes,
                        )
                        # contract: SHM-005 exempt(creating worker unlinks on growth and in its finally; parent reaps via _reap_crash and terminated-worker shutdown)
                        arena = shared_memory.SharedMemory(
                            create=True, size=capacity
                        )
                        arenas[slot] = arena
                    layout, _ = _layout_result(
                        arena.buf, arrays=arrays, strings=strings, traces=traces,
                        controller=controller, telemetry=telemetry,
                    )
                    acked[slot] = False
                    conn.send(
                        (
                            "result",
                            descriptor.shard_index,
                            slot,
                            arena.name,
                            layout,
                            {
                                "num_segments": output.num_segments,
                                "wall_time_s": output.wall_time_s,
                                "fallback_sessions": output.fallback_sessions,
                                "batch_sessions": output.batch_sessions,
                                "obs": output.obs,
                                "pack_time_s": time.perf_counter() - start,  # contract: DET-CLOCK-002 exempt(pack-time telemetry only; excluded from bit-exact comparison)
                                "result_bytes": nbytes,
                            },
                        )
                    )
                except Exception:
                    conn.send(
                        ("error", descriptor.shard_index, traceback.format_exc())
                    )
            else:  # pragma: no cover - protocol guard
                conn.send(("error", -1, f"unknown message kind {kind!r}"))
    finally:
        for arena in arenas:
            if arena is not None:
                arena.close()
                arena.unlink()
        conn.close()


# --------------------------------------------------------------------------- #
# Parent-side pool
# --------------------------------------------------------------------------- #
class WorkerPool:
    """Persistent pool of forked shard workers with shared-memory results.

    Create once, call :meth:`run` many times (fleet runs, campaign days),
    :meth:`shutdown` when done — or use :func:`shared_pool`, which owns one
    process-global pool per worker count and shuts them down at exit.
    """

    def __init__(self, num_workers: int) -> None:
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        # One resource tracker for the whole process tree: start it before
        # forking so worker-side segment registration lands in the same
        # registry the parent's (sole) unlink balances.
        resource_tracker.ensure_running()
        self.num_workers = num_workers
        self.closed = False
        self._context = get_context("fork")
        self._cache: OrderedDict[int, tuple[object, int]] = OrderedDict()
        self._next_token = 0
        #: (worker, slot) -> (arena name, parent-side attachment)
        self._attachments: dict[tuple[int, int], tuple[str, shared_memory.SharedMemory]] = {}
        self._processes = []
        self._conns = []
        for index in range(num_workers):
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=_worker_main,
                args=(parent_conn, child_conn, index),
                name=f"fleet-pool-{index}",
                daemon=True,
            )
            process.start()
            child_conn.close()
            self._processes.append(process)
            self._conns.append(parent_conn)

    # -- object cache -------------------------------------------------------
    def cache(self, obj) -> CacheRef:
        """Register ``obj`` in every worker's cache (idempotent per object).

        Identity-keyed with a strong reference, so a library or factory used
        across many runs/days is pickled to each worker exactly once.  LRU
        beyond :data:`CACHE_CAPACITY` entries.
        """
        self._ensure_open()
        key = id(obj)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is obj:
            self._cache.move_to_end(key)
            return CacheRef(entry[1])
        token = self._next_token
        self._next_token += 1
        self._broadcast(("cache", token, obj))
        self._cache[key] = (obj, token)
        while len(self._cache) > CACHE_CAPACITY:
            _, (_, old_token) = self._cache.popitem(last=False)
            self._broadcast(("uncache", old_token))
        return CacheRef(token)

    # -- execution ----------------------------------------------------------
    def run(self, descriptors: Sequence[ShardDescriptor]) -> list:
        """Execute descriptors across the workers; outputs in shard order.

        Emits the ``pool.dispatch``/``pool.drain`` spans and the
        ``pool.shm_*`` byte counters.  Raises :class:`ShardTaskError` when a
        shard raised in a worker (remaining in-flight shards are drained
        first, so the pool stays reusable) and :class:`WorkerCrashError` when
        a worker died (the pool is shut down: a fresh :func:`shared_pool`
        call replaces it).
        """
        self._ensure_open()
        queues: list[deque] = [deque() for _ in range(self.num_workers)]
        inflight = [0] * self.num_workers
        for index, descriptor in enumerate(descriptors):
            queues[index % self.num_workers].append(descriptor)

        with obs.span("pool.dispatch"):
            obs.gauge_max("pool.workers", self.num_workers)
            if obs.enabled():
                obs.counter_add(
                    "pool.dispatch_bytes",
                    sum(len(pickle.dumps(d)) for d in descriptors),
                )
            for worker in range(self.num_workers):
                while inflight[worker] < MAX_INFLIGHT and queues[worker]:
                    self._send(worker, ("run", queues[worker].popleft()))
                    inflight[worker] += 1

        outputs = []
        failures: list[tuple[int, str]] = []
        conn_worker = {id(conn): w for w, conn in enumerate(self._conns)}
        with obs.span("pool.drain"):
            while sum(inflight) > 0:
                ready = connection.wait(
                    [
                        self._conns[w]
                        for w in range(self.num_workers)
                        if inflight[w] > 0
                    ],
                    timeout=0.2,
                )
                if not ready:
                    self._check_alive()
                    continue
                for conn in ready:
                    worker = conn_worker[id(conn)]
                    try:
                        message = conn.recv()
                    except (EOFError, OSError):
                        self._reap_crash(worker)
                    if message[0] == "result":
                        _, shard_index, slot, name, layout, extra = message
                        outputs.append(
                            self._drain_result(
                                worker, slot, name, layout, shard_index, extra
                            )
                        )
                        conn.send(("ack", slot))
                    elif message[0] == "error":
                        failures.append((message[1], message[2]))
                    inflight[worker] -= 1
                    if not failures and queues[worker]:
                        conn.send(("run", queues[worker].popleft()))
                        inflight[worker] += 1
        if failures:
            shard_index, worker_traceback = failures[0]
            raise ShardTaskError(
                f"shard {shard_index} failed in pool worker "
                f"({len(failures)} failure(s) total):\n{worker_traceback}"
            )
        outputs.sort(key=lambda output: output.shard_index)
        return outputs

    def _drain_result(self, worker, slot, name, layout, shard_index, extra):
        arena = self._attach(worker, slot, name)
        output = _decode_shard_output(arena.buf, layout, shard_index, extra)
        obs.counter_add("pool.shm_result_bytes", int(extra["result_bytes"]))
        if output.telemetry_blob is not None:
            obs.counter_add("pool.shm_telemetry_bytes", len(output.telemetry_blob))
        obs.gauge_max("pool.shm_arena_bytes", arena.size)
        obs.observe("pool.shard_pack_seconds", float(extra["pack_time_s"]))
        return output

    def _attach(self, worker: int, slot: int, name: str) -> shared_memory.SharedMemory:
        """Parent-side arena attachment, cached per (worker, slot).

        The attachment is only ever ``close()``d, never unlinked: the worker
        owns the segment's lifetime (it unlinks on growth and on shutdown).
        """
        key = (worker, slot)
        cached = self._attachments.get(key)
        if cached is not None:
            cached_name, cached_shm = cached
            if cached_name == name:
                return cached_shm
            cached_shm.close()  # worker grew the arena; stale mapping
        shm = shared_memory.SharedMemory(name=name)
        self._attachments[key] = (name, shm)
        return shm

    # -- failure handling ---------------------------------------------------
    def _check_alive(self) -> None:
        for worker, process in enumerate(self._processes):
            if not process.is_alive():
                self._reap_crash(worker)

    def _reap_crash(self, worker: int) -> None:
        """A worker died mid-run: unlink its orphaned arenas, kill the pool."""
        exitcode = self._processes[worker].exitcode
        for (owner, slot), (name, shm) in list(self._attachments.items()):
            if owner == worker:
                shm.close()
                try:
                    shm.unlink()  # the dead creator cannot; reap its segments
                except FileNotFoundError:
                    pass
                del self._attachments[(owner, slot)]
        self.shutdown()
        raise WorkerCrashError(
            f"pool worker {worker} died (exitcode {exitcode}); "
            "pool shut down — acquire a fresh one"
        )

    # -- lifecycle ----------------------------------------------------------
    def _ensure_open(self) -> None:
        if self.closed:
            raise PoolError("worker pool is closed")

    def _broadcast(self, message) -> None:
        for worker in range(self.num_workers):
            self._send(worker, message)

    def _send(self, worker: int, message) -> None:
        try:
            self._conns[worker].send(message)
        except (BrokenPipeError, OSError):
            self._reap_crash(worker)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop all workers and release every shared-memory segment.

        Graceful first (workers unlink their own arenas), terminate as a
        fallback.  Idempotent.
        """
        if self.closed:
            return
        self.closed = True
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        deadline = time.monotonic() + timeout  # contract: DET-CLOCK-002 exempt(shutdown deadline only; never reaches simulation state)
        terminated: set[int] = set()
        for worker, process in enumerate(self._processes):
            process.join(timeout=max(0.0, deadline - time.monotonic()))  # contract: DET-CLOCK-002 exempt(shutdown deadline only; never reaches simulation state)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
                terminated.add(worker)
        for (owner, _slot), (_name, shm) in self._attachments.items():
            shm.close()
            if owner in terminated:
                # A terminated worker never ran its unlink-all finally;
                # reap its known arenas here or they leak in /dev/shm
                # until interpreter exit.  # contract: SHM-005
                try:
                    shm.unlink()
                except FileNotFoundError:
                    pass
        self._attachments.clear()
        for conn in self._conns:
            conn.close()
        self._cache.clear()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


# --------------------------------------------------------------------------- #
# Process-global shared pools
# --------------------------------------------------------------------------- #
_SHARED_POOLS: dict[int, WorkerPool] = {}


def shared_pool(num_workers: int) -> WorkerPool:
    """The process-global persistent pool for ``num_workers`` workers.

    Created on first use, reused by every subsequent fleet run and campaign
    day with the same worker count, replaced transparently if its workers
    died, shut down at interpreter exit.
    """
    pool = _SHARED_POOLS.get(num_workers)
    if pool is not None and not pool.closed:
        return pool
    pool = WorkerPool(num_workers)
    _SHARED_POOLS[num_workers] = pool
    return pool


def shutdown_shared_pools() -> None:
    """Shut down every process-global pool (also runs at interpreter exit)."""
    for pool in list(_SHARED_POOLS.values()):
        pool.shutdown()
    _SHARED_POOLS.clear()


atexit.register(shutdown_shared_pools)
