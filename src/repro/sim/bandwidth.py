"""Bandwidth substrate: observation model and synthetic trace families.

Two roles are covered here:

* :class:`BandwidthModel` is the client-side model the paper uses in
  Equation 3 and Algorithm 2 — the bandwidth perceived while downloading the
  last few segments is summarised as a normal distribution
  ``N(mu_Cpast, sigma_Cpast^2)`` and *future* bandwidth is sampled from it
  during Monte-Carlo virtual playback.  It also feeds the pre-playback pruning
  rule of §4 (``mu - 3*sigma > Q_max``).

* The trace generators produce the synthetic "production" bandwidth traces the
  simulated experiments run on.  The paper slices results by bandwidth regime
  (the long tail below 2000 kbps up to >10 Mbps, Figures 2, 8, 13), so the
  generators cover stationary, Markov-modulated (bursty cellular-like) and
  explicitly low-bandwidth families, plus a mixture that follows a log-normal
  population distribution similar to Figure 2(a).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

_MIN_BANDWIDTH_KBPS = 10.0


@dataclass
class BandwidthModel:
    """Running normal model of recently observed throughput (``C_past``).

    The model keeps a sliding window of throughput observations (kbps) and
    exposes the mean / standard deviation that Equation 3 samples future
    bandwidth from.
    """

    window: int = 8
    prior_mean_kbps: float = 3000.0
    prior_std_kbps: float = 1000.0
    _samples: list[float] = field(default_factory=list, repr=False)
    #: Memoised mean/std — ``mean``/``std`` are read several times per
    #: simulated segment (buffer-cap rule, ABR context, Equation 3 sampling)
    #: between updates, so the window statistics are computed once per update
    #: instead of once per access.
    _cached_mean: float | None = field(default=None, repr=False, compare=False)
    _cached_std: float | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise ValueError("window must be positive")
        if self.prior_mean_kbps <= 0 or self.prior_std_kbps < 0:
            raise ValueError("prior must be positive")

    def update(self, throughput_kbps: float) -> None:
        """Record one throughput observation (kbps)."""
        if throughput_kbps <= 0:
            raise ValueError("throughput must be positive")
        self._samples.append(float(throughput_kbps))
        if len(self._samples) > self.window:
            del self._samples[: len(self._samples) - self.window]
        self._cached_mean = None
        self._cached_std = None

    def extend(self, throughputs_kbps: Iterable[float]) -> None:
        """Record several observations at once."""
        for value in throughputs_kbps:
            self.update(value)

    @property
    def num_observations(self) -> int:
        """Observations currently in the window."""
        return len(self._samples)

    @property
    def mean(self) -> float:
        """``mu_Cpast`` (kbps)."""
        if not self._samples:
            return self.prior_mean_kbps
        if self._cached_mean is None:
            self._cached_mean = float(np.mean(self._samples))
        return self._cached_mean

    @property
    def std(self) -> float:
        """``sigma_Cpast`` (kbps)."""
        if len(self._samples) < 2:
            return self.prior_std_kbps
        if self._cached_std is None:
            self._cached_std = float(max(np.std(self._samples, ddof=1), 1e-6))
        return self._cached_std

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Sample future bandwidth ``C_k ~ N(mu, sigma^2)`` (kbps, clipped > 0)."""
        draw = rng.normal(self.mean, self.std, size=size)
        return np.maximum(draw, _MIN_BANDWIDTH_KBPS) if size is not None else max(
            float(draw), _MIN_BANDWIDTH_KBPS
        )

    def stall_risk_negligible(self, max_bitrate_kbps: float) -> bool:
        """Pre-playback pruning rule of §4: ``mu - 3*sigma > Q_max``."""
        return self.mean - 3.0 * self.std > max_bitrate_kbps

    def copy(self) -> "BandwidthModel":
        """Independent copy (used when forking state into virtual playback)."""
        clone = BandwidthModel(
            window=self.window,
            prior_mean_kbps=self.prior_mean_kbps,
            prior_std_kbps=self.prior_std_kbps,
        )
        clone._samples = list(self._samples)
        return clone


@dataclass(frozen=True)
class BandwidthTrace:
    """A time series of available bandwidth.

    ``values_kbps[i]`` is the bandwidth available during the ``i``-th
    download; traces are indexed per segment download and wrap around when a
    session outlives the trace.
    """

    values_kbps: tuple[float, ...]
    name: str = "trace"

    def __post_init__(self) -> None:
        if not self.values_kbps:
            raise ValueError("a trace needs at least one sample")
        if any(v <= 0 for v in self.values_kbps):
            raise ValueError("bandwidth samples must be positive")

    def __len__(self) -> int:
        return len(self.values_kbps)

    def bandwidth_at(self, index: int) -> float:
        """Bandwidth (kbps) for download ``index`` (wraps around)."""
        return self.values_kbps[index % len(self.values_kbps)]

    @property
    def mean(self) -> float:
        """Mean bandwidth of the trace (kbps)."""
        return float(np.mean(self.values_kbps))

    @property
    def std(self) -> float:
        """Standard deviation of the trace (kbps)."""
        return float(np.std(self.values_kbps))

    def scaled(self, factor: float, name: str | None = None) -> "BandwidthTrace":
        """Return a copy of the trace scaled by ``factor``."""
        if factor <= 0:
            raise ValueError("factor must be positive")
        return BandwidthTrace(
            values_kbps=tuple(max(v * factor, _MIN_BANDWIDTH_KBPS) for v in self.values_kbps),
            name=name or f"{self.name}_x{factor:g}",
        )


class StationaryTraceGenerator:
    """Gaussian bandwidth around a fixed mean — the regime of Equation 3."""

    def __init__(self, mean_kbps: float, std_kbps: float | None = None) -> None:
        if mean_kbps <= 0:
            raise ValueError("mean bandwidth must be positive")
        self.mean_kbps = float(mean_kbps)
        self.std_kbps = float(std_kbps if std_kbps is not None else 0.25 * mean_kbps)

    def generate(self, length: int, rng: np.random.Generator, name: str | None = None) -> BandwidthTrace:
        """Generate a trace of ``length`` samples."""
        values = rng.normal(self.mean_kbps, self.std_kbps, size=length)
        values = np.maximum(values, _MIN_BANDWIDTH_KBPS)
        return BandwidthTrace(tuple(float(v) for v in values), name=name or f"stationary_{self.mean_kbps:.0f}")


class MarkovTraceGenerator:
    """Two-state (good/bad) Markov-modulated bandwidth, cellular-like bursts."""

    def __init__(
        self,
        good_mean_kbps: float = 6000.0,
        bad_mean_kbps: float = 1200.0,
        good_std_kbps: float = 1200.0,
        bad_std_kbps: float = 400.0,
        p_good_to_bad: float = 0.1,
        p_bad_to_good: float = 0.3,
    ) -> None:
        for p in (p_good_to_bad, p_bad_to_good):
            if not 0 <= p <= 1:
                raise ValueError("transition probabilities must be in [0, 1]")
        if good_mean_kbps <= 0 or bad_mean_kbps <= 0:
            raise ValueError("means must be positive")
        self.good_mean_kbps = good_mean_kbps
        self.bad_mean_kbps = bad_mean_kbps
        self.good_std_kbps = good_std_kbps
        self.bad_std_kbps = bad_std_kbps
        self.p_good_to_bad = p_good_to_bad
        self.p_bad_to_good = p_bad_to_good

    def generate(self, length: int, rng: np.random.Generator, name: str | None = None) -> BandwidthTrace:
        """Generate a trace of ``length`` samples."""
        values = np.empty(length)
        good = True
        for i in range(length):
            if good:
                values[i] = rng.normal(self.good_mean_kbps, self.good_std_kbps)
                good = rng.random() >= self.p_good_to_bad
            else:
                values[i] = rng.normal(self.bad_mean_kbps, self.bad_std_kbps)
                good = rng.random() < self.p_bad_to_good
        values = np.maximum(values, _MIN_BANDWIDTH_KBPS)
        return BandwidthTrace(tuple(float(v) for v in values), name=name or "markov")


class LowBandwidthTraceGenerator:
    """Long-tail low-bandwidth regime (< 2000 kbps) of Figures 8 and 13."""

    def __init__(self, mean_kbps: float = 1200.0, std_kbps: float = 500.0, dropout_prob: float = 0.05) -> None:
        if mean_kbps <= 0:
            raise ValueError("mean bandwidth must be positive")
        if not 0 <= dropout_prob < 1:
            raise ValueError("dropout_prob must be in [0, 1)")
        self.mean_kbps = mean_kbps
        self.std_kbps = std_kbps
        self.dropout_prob = dropout_prob

    def generate(self, length: int, rng: np.random.Generator, name: str | None = None) -> BandwidthTrace:
        """Generate a trace of ``length`` samples with occasional deep fades."""
        values = rng.normal(self.mean_kbps, self.std_kbps, size=length)
        fades = rng.random(length) < self.dropout_prob
        values[fades] *= 0.2
        values = np.maximum(values, _MIN_BANDWIDTH_KBPS)
        return BandwidthTrace(tuple(float(v) for v in values), name=name or "low_bandwidth")


class MixedTraceGenerator:
    """Population-level mixture following a log-normal bandwidth distribution.

    Figure 2(a) shows the platform-wide bandwidth CDF: roughly 10% of users sit
    below the top encoding bitrate and the median is several Mbps.  Sampling
    per-user mean bandwidth from a log-normal with those properties and then
    generating a stationary (or Markov, for bursty users) trace reproduces the
    same CDF shape.
    """

    def __init__(
        self,
        median_kbps: float = 8000.0,
        sigma_log: float = 0.9,
        burst_fraction: float = 0.3,
        relative_std: float = 0.25,
    ) -> None:
        if median_kbps <= 0:
            raise ValueError("median bandwidth must be positive")
        if not 0 <= burst_fraction <= 1:
            raise ValueError("burst_fraction must be in [0, 1]")
        self.median_kbps = median_kbps
        self.sigma_log = sigma_log
        self.burst_fraction = burst_fraction
        self.relative_std = relative_std

    def sample_user_mean(self, rng: np.random.Generator) -> float:
        """Draw one user's long-run mean bandwidth (kbps)."""
        return float(
            max(rng.lognormal(mean=np.log(self.median_kbps), sigma=self.sigma_log), _MIN_BANDWIDTH_KBPS)
        )

    def generate(self, length: int, rng: np.random.Generator, name: str | None = None) -> BandwidthTrace:
        """Generate one user's trace: draw their mean, then a per-user trace."""
        mean = self.sample_user_mean(rng)
        if rng.random() < self.burst_fraction:
            generator = MarkovTraceGenerator(
                good_mean_kbps=mean * 1.2,
                bad_mean_kbps=max(mean * 0.35, _MIN_BANDWIDTH_KBPS),
                good_std_kbps=mean * self.relative_std,
                bad_std_kbps=mean * self.relative_std * 0.5,
            )
        else:
            generator = StationaryTraceGenerator(mean, mean * self.relative_std)
        return generator.generate(length, rng, name=name or f"mixed_{mean:.0f}")

    def generate_population(
        self, num_users: int, length: int, rng: np.random.Generator
    ) -> list[BandwidthTrace]:
        """Generate one trace per user for a population of ``num_users``."""
        return [self.generate(length, rng, name=f"user_{i}") for i in range(num_users)]


def harmonic_mean(values: Sequence[float]) -> float:
    """Harmonic mean of positive throughput samples (RobustMPC's estimator)."""
    arr = np.asarray([v for v in values if v > 0], dtype=float)
    if arr.size == 0:
        raise ValueError("harmonic mean needs at least one positive sample")
    return float(arr.size / np.sum(1.0 / arr))
