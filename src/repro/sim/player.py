"""Player environment: the buffer / stall / waiting dynamics of Equation 3.

The environment models a client video player downloading one segment at a
time.  For the ``k``-th segment downloaded at bandwidth ``C_k`` and quality
``Q_k`` with size ``d_k(Q_k)``:

* download time is ``d_k(Q_k) / C_k``;
* if the buffer runs dry during the download the playback stalls for
  ``max(download_time - B_k, 0)`` seconds;
* the buffer is then credited with the segment duration ``L`` and clipped to
  the dynamic maximum ``B_max``; any excess plus the request RTT becomes
  waiting time ``delta_t_k`` before the next download starts;
* ``B_max`` is adjusted online as a function of the recent bandwidth
  distribution (larger buffers are kept when bandwidth is low and volatile).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sim.bandwidth import BandwidthModel
from repro.sim.video import Video


@dataclass(frozen=True)
class SegmentResult:
    """Outcome of downloading and buffering a single segment."""

    segment_index: int
    level: int
    bitrate_kbps: float
    size_kbit: float
    bandwidth_kbps: float
    download_time: float
    stall_time: float
    wait_time: float
    buffer_before: float
    buffer_after: float

    @property
    def throughput_kbps(self) -> float:
        """Observed throughput for the download (equals the link bandwidth here)."""
        return self.bandwidth_kbps


def dynamic_buffer_cap(
    mean_bandwidth_kbps,
    std_bandwidth_kbps,
    base_cap: float = 12.0,
    min_cap: float = 8.0,
    max_cap: float = 30.0,
):
    """Online adjustment of ``B_max`` as a function of the bandwidth model.

    The paper states that ``B_max`` is a function of
    ``N(mu_Cpast, sigma_Cpast)`` without giving the exact form; production
    players keep a larger buffer when the connection is slow or volatile (to
    ride out fades) and a smaller one when it is fast and stable (to limit
    wasted downloads when the user exits).  We use a smooth rule with those
    properties: the cap grows with the coefficient of variation and shrinks
    with the mean bandwidth, clipped to ``[min_cap, max_cap]`` seconds.

    Accepts scalars (returning ``float``) or same-shape arrays (returning an
    array); the elementwise operation order is identical in both modes, so
    the vector backend's caps match the scalar player's bit-for-bit.
    """
    if np.ndim(mean_bandwidth_kbps) == 0:
        if mean_bandwidth_kbps <= 0:
            raise ValueError("mean bandwidth must be positive")
        coefficient_of_variation = max(std_bandwidth_kbps, 0.0) / mean_bandwidth_kbps
        scarcity = 4000.0 / (mean_bandwidth_kbps + 1000.0)
        cap = base_cap * (0.6 + 0.8 * coefficient_of_variation + 0.6 * scarcity)
        return float(min(max(cap, min_cap), max_cap))
    if np.any(mean_bandwidth_kbps <= 0):
        raise ValueError("mean bandwidth must be positive")
    coefficient_of_variation = np.maximum(std_bandwidth_kbps, 0.0) / mean_bandwidth_kbps
    scarcity = 4000.0 / (mean_bandwidth_kbps + 1000.0)
    cap = base_cap * (0.6 + 0.8 * coefficient_of_variation + 0.6 * scarcity)
    return np.minimum(np.maximum(cap, min_cap), max_cap)


class PlayerEnvironment:
    """Mutable player state evolving according to Equation 3."""

    def __init__(
        self,
        video: Video,
        rtt: float = 0.08,
        initial_buffer: float = 0.0,
        base_buffer_cap: float = 12.0,
        bandwidth_model: BandwidthModel | None = None,
    ) -> None:
        if rtt < 0:
            raise ValueError("rtt must be non-negative")
        if initial_buffer < 0:
            raise ValueError("initial buffer must be non-negative")
        self.video = video
        self.rtt = rtt
        self.base_buffer_cap = base_buffer_cap
        self.bandwidth_model = bandwidth_model or BandwidthModel()
        self.buffer = float(initial_buffer)
        self.segment_index = 0
        self.last_level: int | None = None
        self.total_stall_time = 0.0
        self.total_wait_time = 0.0
        self.total_play_time = 0.0
        self.stall_count = 0
        self.startup_delay = 0.0

    @property
    def buffer_cap(self) -> float:
        """Current dynamic ``B_max`` (seconds)."""
        return dynamic_buffer_cap(
            self.bandwidth_model.mean,
            self.bandwidth_model.std,
            base_cap=self.base_buffer_cap,
        )

    def step(
        self, level: int, bandwidth_kbps: float, buffer_cap: float | None = None
    ) -> SegmentResult:
        """Download the next segment at ``level`` over ``bandwidth_kbps``.

        Returns the :class:`SegmentResult` and advances the player state.
        ``buffer_cap`` lets a caller that already read :attr:`buffer_cap`
        this step (to build an ABR context) pass it back in instead of
        recomputing the bandwidth statistics — the value is identical
        because the model only changes at the end of this method.
        """
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        index = self.segment_index
        size_kbit = self.video.segment_size(index, level)
        download_time = size_kbit / bandwidth_kbps

        buffer_before = self.buffer
        if index == 0 and buffer_before == 0.0:
            # The very first download is startup delay, not a rebuffering
            # stall: playback has not begun yet, so nothing can stall.
            stall_time = 0.0
            self.startup_delay = download_time
        else:
            stall_time = max(download_time - self.buffer, 0.0)
        if stall_time > 1e-12:
            self.stall_count += 1

        drained = max(self.buffer - download_time, 0.0)
        if buffer_cap is None:
            buffer_cap = self.buffer_cap
        unclipped = drained + self.video.segment_duration
        wait_time = max(unclipped - buffer_cap, 0.0) + self.rtt
        buffer_after = max(unclipped - max(unclipped - buffer_cap, 0.0), 0.0)
        buffer_after = min(buffer_after, buffer_cap)

        self.buffer = buffer_after
        self.segment_index += 1
        self.last_level = level
        self.total_stall_time += stall_time
        self.total_wait_time += wait_time
        self.total_play_time += self.video.segment_duration
        self.bandwidth_model.update(bandwidth_kbps)

        return SegmentResult(
            segment_index=index,
            level=level,
            bitrate_kbps=self.video.ladder.bitrate(level),
            size_kbit=size_kbit,
            bandwidth_kbps=float(bandwidth_kbps),
            download_time=download_time,
            stall_time=stall_time,
            wait_time=wait_time,
            buffer_before=buffer_before,
            buffer_after=buffer_after,
        )

    def fork(self) -> "PlayerEnvironment":
        """Deep-enough copy used to seed a virtual (Monte-Carlo) playback.

        The fork shares the immutable :class:`~repro.sim.video.Video` but gets
        independent buffer, counters and bandwidth model so virtual playback
        never perturbs the live player.
        """
        clone = PlayerEnvironment(
            video=self.video,
            rtt=self.rtt,
            initial_buffer=self.buffer,
            base_buffer_cap=self.base_buffer_cap,
            bandwidth_model=self.bandwidth_model.copy(),
        )
        clone.segment_index = self.segment_index
        clone.last_level = self.last_level
        clone.total_stall_time = self.total_stall_time
        clone.total_wait_time = self.total_wait_time
        clone.total_play_time = self.total_play_time
        clone.stall_count = self.stall_count
        clone.startup_delay = self.startup_delay
        return clone
