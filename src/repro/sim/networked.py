"""Event-ordered scalar reference engine for networked session batches.

This is the ground truth for what a *networked* batch means.  Time is
slotted: during slot ``k`` every started, unfinished session downloads one
segment, and the sessions sharing an edge link split its capacity through
the weighted max-min allocator (:func:`repro.net.allocator.allocate_step`).
A session's **demand** is its pre-drawn trace value — the most its access
link could carry — so an uncongested topology reproduces the un-networked
traces exactly, and congestion emerges only when concurrent demand exceeds a
link's capacity.

Execution is event-ordered: the engine walks a queue of
``(slot, batch-index)`` download events in order, advancing each session
with per-session *scalar* math — its own
:class:`~repro.sim.player.PlayerEnvironment`, its own ABR calls, its own
`Philox` exit stream — exactly like :class:`~repro.sim.session.PlaybackSession`
would.  The only cross-session computation is the per-slot allocation, and
that subroutine is shared verbatim with the vector engine, which is what
lets ``tests/test_network.py`` pin the two networked backends to
segment-for-segment identical traces.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro import obs
from repro.net.allocator import LinkUsageSample, allocate_step
from repro.obs import live as obs_live
from repro.net.topology import NetworkTopology
from repro.sim.backend import SessionSpec, resolve_session_seeds, session_rng
from repro.sim.player import PlayerEnvironment
from repro.sim.session import (
    ABRContext,
    ExitObservation,
    PlaybackTrace,
    SegmentRecord,
    SessionConfig,
)


def resolve_link_indices(
    network: NetworkTopology, specs: Sequence[SessionSpec]
) -> np.ndarray:
    """Per-spec link index: explicit ``spec.link`` wins, else attach by user id."""
    return np.asarray(
        [
            network.index_of(spec.link)
            if spec.link is not None
            else network.link_index_for(spec.user_id)
            for spec in specs
        ],
        dtype=int,
    )


class _LiveSession:
    """One session's mutable state while its slots interleave with others."""

    def __init__(
        self, spec: SessionSpec, seed, config: SessionConfig
    ) -> None:
        self.spec = spec
        self.rng = session_rng(seed)
        self.player = PlayerEnvironment(
            video=spec.video,
            rtt=config.rtt,
            initial_buffer=config.initial_buffer,
            base_buffer_cap=config.base_buffer_cap,
        )
        self.limit = spec.video.num_segments
        if config.max_segments is not None:
            self.limit = min(self.limit, config.max_segments)
        self.start = spec.start_step
        self.playback = PlaybackTrace(
            user_id=spec.user_id,
            video_duration=spec.video.duration,
            segment_duration=spec.video.segment_duration,
            trace_name=spec.trace.name,
        )
        self.throughput_history: list[float] = []
        self.last_level: int | None = None
        self.cumulative_stall = 0.0
        self.stall_count = 0
        self.segments_since_stall = 0

    def demand_at(self, slot: int) -> float:
        """Access-link bandwidth for this slot's segment download."""
        return self.spec.trace.bandwidth_at(slot - self.start)

    def step(self, slot: int, allocated_kbps: float) -> bool:
        """Download one segment at the allocated rate; False once exited.

        The body mirrors :meth:`repro.sim.session.PlaybackSession.run` one
        iteration at a time, with the allocator's answer in place of the
        trace value.
        """
        spec = self.spec
        video = spec.video
        k = slot - self.start
        player = self.player
        bandwidth_model = player.bandwidth_model
        context = ABRContext(
            segment_index=k,
            buffer=player.buffer,
            buffer_cap=player.buffer_cap,
            last_level=self.last_level,
            throughput_history_kbps=tuple(self.throughput_history[-8:]),
            next_segment_sizes_kbit=video.sizes_tuple(k),
            ladder=video.ladder,
            segment_duration=video.segment_duration,
            bandwidth_mean_kbps=bandwidth_model.mean,
            bandwidth_std_kbps=bandwidth_model.std,
        )
        level = int(spec.abr.select_level(context))
        if not 0 <= level < video.ladder.num_levels:
            raise ValueError(
                f"ABR returned invalid level {level} for a "
                f"{video.ladder.num_levels}-level ladder"
            )
        result = player.step(level, allocated_kbps)

        self.cumulative_stall += result.stall_time
        if result.stall_time > 1e-12:
            self.stall_count += 1
            self.segments_since_stall = 0
        else:
            self.segments_since_stall += 1
        self.throughput_history.append(result.throughput_kbps)

        watch_time = (k + 1) * video.segment_duration
        exit_probability = 0.0
        exited = False
        if spec.exit_model is not None:
            observation = ExitObservation(
                segment_index=k,
                level=level,
                previous_level=self.last_level,
                bitrate_kbps=result.bitrate_kbps,
                stall_time=result.stall_time,
                cumulative_stall_time=self.cumulative_stall,
                stall_count=self.stall_count,
                watch_time=watch_time,
                buffer=result.buffer_after,
                segments_since_last_stall=self.segments_since_stall,
                throughput_kbps=result.throughput_kbps,
            )
            exit_probability = float(spec.exit_model.exit_probability(observation))
            if not 0.0 <= exit_probability <= 1.0:
                raise ValueError("exit probability must be in [0, 1]")
            exited = bool(self.rng.random() < exit_probability)

        self.playback.records.append(
            SegmentRecord(
                segment_index=k,
                level=level,
                bitrate_kbps=result.bitrate_kbps,
                size_kbit=result.size_kbit,
                bandwidth_kbps=result.bandwidth_kbps,
                download_time=result.download_time,
                stall_time=result.stall_time,
                wait_time=result.wait_time,
                buffer_before=result.buffer_before,
                buffer_after=result.buffer_after,
                watch_time=watch_time,
                cumulative_stall_time=self.cumulative_stall,
                stall_count=self.stall_count,
                exit_probability=exit_probability,
                exited=exited,
            )
        )
        observe = getattr(spec.abr, "observe", None)
        if observe is not None:
            observe(self.playback.records[-1])
        self.last_level = level
        if exited:
            self.playback.exited_early = True
            return False
        return True


def run_networked_scalar(
    specs: Sequence[SessionSpec],
    network: NetworkTopology,
    config: SessionConfig | None = None,
    link_usage: list[LinkUsageSample] | None = None,
) -> list[PlaybackTrace]:
    """Run a coupled batch through the event-ordered scalar reference engine."""
    config = config or SessionConfig()
    if not specs:
        return []
    seeds = resolve_session_seeds(specs)
    sessions = [_LiveSession(spec, seed, config) for spec, seed in zip(specs, seeds)]
    # Reset every distinct ABR / exit-model instance once, before any session
    # runs (the vector engine does the same per cohort).  Sessions of a batch
    # interleave, so a per-session reset at its first slot would wipe the
    # in-flight state of another session sharing the instance; with the
    # up-front reset, specs sharing a *stateful* ABR deterministically share
    # its state across their concurrent sessions (one user, one ABR brain) —
    # give each spec its own instance when that is not what you want.
    for policy in {id(spec.abr): spec.abr for spec in specs}.values():
        policy.reset()
    for model in {
        id(spec.exit_model): spec.exit_model
        for spec in specs
        if spec.exit_model is not None
    }.values():
        model.reset()
    link_index = resolve_link_indices(network, specs)
    weights = np.asarray([spec.weight for spec in specs], dtype=float)
    starts = np.asarray([session.start for session in sessions], dtype=int)
    limits = np.asarray([session.limit for session in sessions], dtype=int)
    ends = starts + limits

    num_sessions = len(specs)
    alive = np.ones(num_sessions, dtype=bool)
    demand = np.zeros(num_sessions)
    horizon = int(ends.max())

    # Multi-tier topologies: precompute each session's deterministic
    # per-segment cache-miss profile (identity-keyed, so both engines and
    # every shard agree).  No cache model on a tiered topology means every
    # download traverses the full path.
    tiered = network.has_tiers
    full_path: np.ndarray | None = None
    miss_profiles: list[np.ndarray] = []
    if tiered:
        full_path = np.zeros(num_sessions, dtype=bool)
        if network.cache is not None:
            miss_profiles = [
                network.cache.miss_profile(spec.user_id, session.limit)
                for spec, session in zip(specs, sessions)
            ]
        else:
            miss_profiles = [
                np.ones(session.limit, dtype=bool) for session in sessions
            ]

    with obs.span("networked.run_scalar"):
        for slot in range(horizon):
            obs_live.pulse()  # wall-clock heartbeat; no-op without a live run
            runnable = alive & (slot < ends)
            if not runnable.any():
                break
            active = runnable & (starts <= slot)
            obs.counter_add("networked.slots")
            demand[:] = 0.0
            if tiered:
                full_path[:] = False
            for index in np.flatnonzero(active):
                demand[index] = sessions[index].demand_at(slot)
                if tiered:
                    full_path[index] = miss_profiles[index][slot - starts[index]]
            allocations = allocate_step(
                network,
                slot,
                link_index,
                demand,
                active,
                weights,
                usage_out=link_usage,
                full_path=full_path,
            )
            # Event order: (slot, batch index) ascending.
            with obs.span("networked.session_step"):
                for index in np.flatnonzero(active):
                    if not sessions[index].step(slot, float(allocations[index])):
                        alive[index] = False

    return [session.playback for session in sessions]
