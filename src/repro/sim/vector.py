"""Struct-of-arrays vectorized simulation backend.

:class:`VectorBackend` advances N playback sessions in lockstep, one segment
per step, with all per-session state held in NumPy arrays: buffers, selected
levels, throughput windows, stall counters, and per-session `Philox` RNG
substreams (pre-generated uniform draws).  Equation 3 — download time, stall,
dynamic ``B_max``, waiting time — becomes pure array math over the whole
batch, ABR decisions come from the policies' ``vector_kernel`` classmethods
(throughput rule, HYB, BBA), and exit decisions from the engagement models'
``vector_exit_kernel`` classmethods.

Equivalence gate
----------------
For the same :class:`~repro.sim.backend.SessionSpec` batch, this backend
reproduces :class:`~repro.sim.backend.ScalarBackend` traces **segment for
segment** (exact `SegmentRecord` equality, enforced by
``tests/test_vector_backend.py``).  Three design rules make that possible:

* every session draws exit uniforms from its own `Philox` substream
  (:func:`~repro.sim.backend.session_rng`), so lockstep reordering cannot
  shift anyone's randomness — a pre-generated ``rng.random(n)`` row equals
  ``n`` sequential ``rng.random()`` calls on the same stream;
* all array expressions mirror the scalar code's floating-point operation
  order (including the bandwidth-window mean/std reductions, which NumPy
  evaluates with the same pairwise summation row-wise as it does for the
  scalar model's 1-D window);
* the rare, profile-specific stall response of
  :class:`~repro.users.engagement.QoSAwareExitModel` is evaluated by calling
  the *scalar* profile method on the masked stalled rows, not by a parallel
  reimplementation.

ABR decisions come from the policies' ``vector_kernel`` classmethods
(throughput rule, HYB, BBA, BOLA, and RobustMPC with per-row prediction-error
state), and LingXi-wrapped sessions run their whole per-user control loop
through a :class:`~repro.core.vector_host.VectorControllerHost` — trigger
checks over struct-of-arrays controller state, Monte-Carlo optimization
batched across every concurrently-optimizing session.  Sessions whose ABR or
exit model still has no vector kernel (Pensieve, custom classes) fall back
to the scalar engine behind the same ``run_batch`` interface, in spec order;
the backend counts them (``last_fallback_sessions`` /
``total_fallback_sessions``) so fleets can assert they stayed on the fast
path.  In networked mode the same split is cohort-level: lockstep cohorts
and event-ordered reference sessions share one ``allocate_step`` per slot.
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field, replace
from typing import Sequence

import numpy as np

from repro import obs
from repro.net.allocator import allocate_step
from repro.obs import live as obs_live
from repro.sim.backend import (
    ScalarBackend,
    SessionSpec,
    SimBackend,
    register_backend,
    resolve_session_seeds,
    session_rng,
)
from repro.sim.bandwidth import BandwidthModel
from repro.sim.networked import _LiveSession, resolve_link_indices, run_networked_scalar
from repro.sim.player import dynamic_buffer_cap
from repro.sim.session import PlaybackTrace, SegmentRecord, SessionConfig

#: Sliding-window length of the player's bandwidth model (and of the
#: throughput history handed to ABR contexts) — both are 8 in the scalar
#: engine, which is what lets one window array serve both consumers.
_WINDOW = BandwidthModel().window
_PRIOR_MEAN = BandwidthModel().prior_mean_kbps
_PRIOR_STD = BandwidthModel().prior_std_kbps


@dataclass
class VectorStepContext:
    """Struct-of-arrays ABR context for one lockstep step (one row per session).

    The vector twin of :class:`~repro.sim.session.ABRContext`: same
    quantities, arrays instead of scalars.  ``last_level`` uses ``-1`` where
    the scalar context would carry ``None`` (before the first segment).
    """

    k: int
    buffer: np.ndarray
    buffer_cap: np.ndarray
    last_level: np.ndarray
    segment_sizes: np.ndarray  # (N, num_levels) sizes of this step's segment
    throughput_window: np.ndarray  # (N, min(k, 8)) recent throughputs, oldest first
    bandwidth_mean: np.ndarray
    bandwidth_std: np.ndarray
    bitrates: np.ndarray  # (num_levels,) shared ladder
    segment_duration: float

    def harmonic_throughput(self, windows: np.ndarray) -> np.ndarray:
        """Per-session harmonic-mean throughput over the last ``windows[i]`` samples.

        Mirrors :meth:`repro.abr.base.ABRAlgorithm.estimate_throughput`
        (falling back to the bandwidth-model mean when no history exists yet).
        Sessions are grouped by window length so each group reduces over the
        same slice shape the scalar estimator sees.
        """
        available = self.throughput_window.shape[1]
        unique = np.unique(windows)
        if unique.size == 1:
            effective = min(int(unique[0]), available)
            if effective == 0:
                return self.bandwidth_mean.copy()
            values = self.throughput_window[:, available - effective :]
            return effective / np.sum(1.0 / values, axis=1)
        out = np.empty(windows.shape[0])
        for window in unique:
            rows = windows == window
            effective = min(int(window), available)
            if effective == 0:
                out[rows] = self.bandwidth_mean[rows]
            else:
                values = self.throughput_window[rows][:, available - effective :]
                out[rows] = effective / np.sum(1.0 / values, axis=1)
        return out


@dataclass
class ExitStepView:
    """Struct-of-arrays exit-model view for one lockstep step.

    The vector twin of :class:`~repro.sim.session.ExitObservation` (plus the
    ``active``/``stalled`` masks kernels need for masked scalar fallbacks).
    ``watch_time`` is a scalar: in lockstep every session is at the same
    segment index.  ``previous_level`` uses ``-1`` for ``None``.
    """

    k: int
    level: np.ndarray
    previous_level: np.ndarray
    stall_time: np.ndarray
    cumulative_stall_time: np.ndarray
    stall_count: np.ndarray
    watch_time: float
    buffer: np.ndarray
    throughput: np.ndarray
    active: np.ndarray
    stalled: np.ndarray


@dataclass
class _NetGroup:
    """One internally-lockstep cohort of a networked batch.

    Sessions are grouped by (ABR type, exit type, ladder, segment duration,
    ``start_step``): within a group every session sits at the same *local*
    segment index at every slot, so the existing vector kernels and window
    reductions apply unchanged.  Coupling across groups flows exclusively
    through the shared per-slot allocator.
    """

    indices: np.ndarray  # batch positions of the group's sessions
    specs: list
    start: int
    max_seg: np.ndarray
    max_steps: int
    segment_duration: float
    bitrates: np.ndarray
    bandwidth: np.ndarray  # (n, max_steps) access-link demand rows
    sizes: np.ndarray  # (n, max_steps, L)
    abr_kernel: object
    exit_kernel: object | None
    uniforms: np.ndarray | None
    host: object | None = None
    miss: np.ndarray | None = None  # (n, max_steps) cache-miss mask (tiered)
    # mutable lockstep state
    buffer: np.ndarray = field(init=False)
    last_level: np.ndarray = field(init=False)
    cumulative_stall: np.ndarray = field(init=False)
    stall_count: np.ndarray = field(init=False)
    alive: np.ndarray = field(init=False)
    exited_early: np.ndarray = field(init=False)
    steps_taken: np.ndarray = field(init=False)
    observed: np.ndarray = field(init=False)  # allocated throughput per local step

    def __post_init__(self) -> None:
        n = len(self.specs)
        self.buffer = np.empty(n)  # filled by the engine (initial_buffer)
        self.last_level = np.full(n, -1, dtype=int)
        self.cumulative_stall = np.zeros(n)
        self.stall_count = np.zeros(n, dtype=int)
        self.alive = np.ones(n, dtype=bool)
        self.exited_early = np.zeros(n, dtype=bool)
        self.steps_taken = np.zeros(n, dtype=int)
        self.observed = np.zeros((n, self.max_steps))
        self.level_rec = np.zeros((n, self.max_steps), dtype=int)
        self.size_rec = np.empty((n, self.max_steps))
        self.download_rec = np.empty((n, self.max_steps))
        self.stall_rec = np.empty((n, self.max_steps))
        self.wait_rec = np.empty((n, self.max_steps))
        self.buffer_before_rec = np.empty((n, self.max_steps))
        self.buffer_after_rec = np.empty((n, self.max_steps))
        self.cumulative_rec = np.empty((n, self.max_steps))
        self.stall_count_rec = np.zeros((n, self.max_steps), dtype=int)
        self.probability_rec = np.zeros((n, self.max_steps))


class VectorBackend(SimBackend):
    """Lockstep struct-of-arrays execution of a batch of session specs.

    Fallback accounting
    -------------------
    Every ``run_batch`` call reports how many of its sessions were routed to
    the scalar engine instead of the lockstep fast path:
    ``last_fallback_sessions`` / ``last_batch_sessions`` describe the most
    recent call, ``total_fallback_sessions`` accumulates across the
    backend's lifetime.  The test sweeps assert these stay at zero for every
    ABR family that ships a vector kernel.
    """

    name = "vector"

    def __init__(self) -> None:
        self.last_fallback_sessions = 0
        self.last_batch_sessions = 0
        self.total_fallback_sessions = 0

    def _record_fallback(self, fallback_sessions: int, batch_sessions: int) -> None:
        self.last_fallback_sessions = fallback_sessions
        self.last_batch_sessions = batch_sessions
        self.total_fallback_sessions += fallback_sessions
        obs.counter_add("vector.fallback_sessions", fallback_sessions)
        obs.counter_add("vector.batch_sessions", batch_sessions)

    def run_batch(
        self,
        specs,
        config: SessionConfig | None = None,
        *,
        network=None,
        link_usage=None,
    ) -> list[PlaybackTrace]:
        config = config or SessionConfig()
        # Pin every spec's seed against the *original* batch order before
        # regrouping, so unseeded specs get the same position-derived
        # substream the scalar backend would assign them.
        specs = [
            spec if isinstance(spec.seed, np.random.SeedSequence) else replace(spec, seed=seed)
            for spec, seed in zip(specs, resolve_session_seeds(specs))
        ]
        if network is not None:
            # Allocation couples every session at every slot, so a networked
            # batch cannot split into per-session fallbacks the way an
            # independent batch can — but it *can* split into cohorts:
            # vectorizable cohorts stay lockstep, truly scalar cohorts run as
            # event-ordered reference sessions, and both sides meet at the
            # same shared per-slot ``allocate_step`` call.
            shared_stateful = self._shared_stateful_abr_ids(specs)
            scalar_indices = [
                index
                for index, spec in enumerate(specs)
                if not self._vectorizable(spec) or id(spec.abr) in shared_stateful
            ]
            self._record_fallback(len(scalar_indices), len(specs))
            if len(scalar_indices) == len(specs):
                return run_networked_scalar(
                    specs, network, config, link_usage=link_usage
                )
            return self._run_networked(
                specs, config, network, link_usage, scalar_indices
            )
        results: list[PlaybackTrace | None] = [None] * len(specs)

        groups: dict[tuple, list[int]] = {}
        fallback: list[int] = []
        # Controller-wrapped specs sharing one ABR instance (one user, several
        # sessions) carry controller state *across* sessions, which the scalar
        # loop plays out sequentially.  Splitting them into waves by
        # occurrence index — every instance's first session in wave 0, its
        # second in wave 1, ... — and running the waves in order preserves
        # that sequencing exactly: un-networked sessions are independent
        # across users, so a user's n-th session only needs their first n-1
        # sessions (earlier waves) to have completed.
        occurrence: dict[int, int] = {}
        for index, spec in enumerate(specs):
            if self._vectorizable(spec):
                if self._controller_wrapped(spec.abr):
                    wave = occurrence.get(id(spec.abr), 0)
                    occurrence[id(spec.abr)] = wave + 1
                    abr_key: tuple = (type(spec.abr), type(spec.abr.inner))
                else:
                    wave = 0
                    abr_key = (type(spec.abr), None)
                key = (
                    wave,
                    abr_key,
                    None if spec.exit_model is None else type(spec.exit_model),
                    spec.video.ladder.bitrates_kbps,
                    spec.video.segment_duration,
                )
                groups.setdefault(key, []).append(index)
            else:
                fallback.append(index)
        self._record_fallback(len(fallback), len(specs))

        for key, indices in sorted(groups.items(), key=lambda item: item[0][0]):  # contract: DET-ITER-003
            traces = self._run_group([specs[i] for i in indices], config)
            for index, trace in zip(indices, traces):
                results[index] = trace
            obs_live.add_sessions(len(indices))

        if fallback:
            fallback_traces = ScalarBackend().run_batch(
                [specs[index] for index in fallback], config
            )
            for index, trace in zip(fallback, fallback_traces):
                results[index] = trace
        return results

    @staticmethod
    def _shared_stateful_abr_ids(specs) -> set[int]:
        """Ids of stateful ABR instances shared by several specs of a batch.

        In the event-ordered reference engine concurrent sessions sharing one
        *stateful* ABR instance deterministically share its internal state
        ("one user, one ABR brain"); lockstep cohorts keep per-row state and
        cannot reproduce that interleaving, so those specs must route to the
        scalar side of a networked batch.  A class is stateful when it
        overrides :meth:`~repro.abr.base.ABRAlgorithm.reset` (detected by the
        resolved method's qualname to avoid importing :mod:`repro.abr` from
        this lower layer; duck-typed policies outside the base hierarchy are
        conservatively treated as stateful).
        """
        counts: dict[int, int] = {}
        for spec in specs:
            reset = getattr(type(spec.abr), "reset", None)
            qualname = getattr(reset, "__qualname__", "")
            if qualname != "ABRAlgorithm.reset":
                counts[id(spec.abr)] = counts.get(id(spec.abr), 0) + 1
        return {abr_id for abr_id, count in counts.items() if count > 1}

    @staticmethod
    def _controller_wrapped(abr) -> bool:
        """True for LingXi-style wrappers (``.inner`` + ``.controller``)."""
        return (
            getattr(abr, "controller", None) is not None
            and getattr(abr, "inner", None) is not None
        )

    @staticmethod
    def _vectorizable(spec: SessionSpec) -> bool:
        """True when both the ABR and the exit model ship vector kernels.

        The kernel must be defined by the spec's *exact* class (``__dict__``
        lookup, not inheritance): a subclass that overrides ``select_level``
        without providing its own kernel must fall back to the scalar engine
        rather than silently run the parent's vectorized decision rule.

        LingXi-style wrappers (``.inner`` + ``.controller`` + ``observe``
        hook) are vectorizable when their *inner* algorithm ships a kernel:
        the per-segment feedback loop then runs through a
        :class:`~repro.core.vector_host.VectorControllerHost` instead of the
        scalar engine.  Other ABRs with an ``observe`` hook stay on the
        scalar path.
        """
        abr = spec.abr
        if VectorBackend._controller_wrapped(abr):
            inner = abr.inner
            if "vector_kernel" not in type(inner).__dict__:
                return False
            if getattr(inner, "observe", None) is not None:
                return False
        else:
            if "vector_kernel" not in type(abr).__dict__:
                return False
            if getattr(abr, "observe", None) is not None:
                return False
        if spec.exit_model is not None:
            if "vector_exit_kernel" not in type(spec.exit_model).__dict__:
                return False
        return True

    @classmethod
    def _build_abr_kernel(cls, specs, ladder):
        """ABR kernel + optional controller host for one homogeneous group.

        Plain policies supply their own ``vector_kernel``; controller-wrapped
        policies (LingXi) build the kernel over their *inner* algorithms and
        attach a :class:`~repro.core.vector_host.VectorControllerHost` that
        replays the per-segment feedback loop after every lockstep step.
        Either way every spec's ABR is reset exactly like the scalar engine
        would at session start.
        """
        first = specs[0].abr
        if cls._controller_wrapped(first):
            from repro.core.vector_host import VectorControllerHost

            policies = [spec.abr.inner for spec in specs]
            host = VectorControllerHost(
                [spec.abr for spec in specs],
                ladder=ladder,
                segment_duration=float(specs[0].video.segment_duration),
            )
        else:
            policies = [spec.abr for spec in specs]
            host = None
        kernel = type(policies[0]).vector_kernel(policies)
        for spec in specs:
            spec.abr.reset()
        return kernel, host

    def _run_group(
        self, specs: list[SessionSpec], config: SessionConfig
    ) -> list[PlaybackTrace]:
        """Advance one homogeneous group (same ABR/exit types, same ladder)."""
        obs.counter_add("vector.cohorts")
        obs.observe("vector.cohort_sessions", len(specs))
        with obs.span("vector.run_group"):
            return self._run_group_impl(specs, config)

    def _run_group_impl(
        self, specs: list[SessionSpec], config: SessionConfig
    ) -> list[PlaybackTrace]:
        num_sessions = len(specs)
        first_video = specs[0].video
        segment_duration = float(first_video.segment_duration)
        bitrates = np.asarray(first_video.ladder.bitrates_kbps, dtype=float)
        num_levels = bitrates.size

        max_seg = np.empty(num_sessions, dtype=int)
        for i, spec in enumerate(specs):
            limit = spec.video.num_segments
            if config.max_segments is not None:
                limit = min(limit, config.max_segments)
            max_seg[i] = limit
        max_steps = int(max_seg.max())

        # Preallocated per-session inputs: cyclic bandwidth rows and the
        # (N, max_steps, L) segment-size tensor (videos and traces repeat
        # across sessions of the same user, so both are cached by identity).
        bandwidth = np.empty((num_sessions, max_steps))
        trace_rows: dict[int, np.ndarray] = {}
        for i, spec in enumerate(specs):
            row = trace_rows.get(id(spec.trace))
            if row is None:
                row = np.resize(
                    np.asarray(spec.trace.values_kbps, dtype=float), max_steps
                )
                trace_rows[id(spec.trace)] = row
            bandwidth[i] = row
        sizes = np.empty((num_sessions, max_steps, num_levels))
        video_rows: dict[int, np.ndarray] = {}
        step_index = np.arange(max_steps)
        for i, spec in enumerate(specs):
            block = video_rows.get(id(spec.video))
            if block is None:
                block = spec.video.segment_sizes_kbit[
                    step_index % spec.video.num_segments
                ]
                video_rows[id(spec.video)] = block
            sizes[i] = block

        abr_kernel, host = self._build_abr_kernel(specs, first_video.ladder)

        has_exit = specs[0].exit_model is not None
        exit_models = [spec.exit_model for spec in specs]
        if has_exit:
            exit_kernel = type(exit_models[0]).vector_exit_kernel(exit_models)
            for model in exit_models:
                model.reset()
            # One Philox substream per session, pre-drawn: row i's uniforms
            # equal the sequence the scalar engine would draw step by step.
            uniforms = np.empty((num_sessions, max_steps))
            for i, spec in enumerate(specs):
                uniforms[i] = session_rng(spec.seed).random(max_steps)

        buffer = np.full(num_sessions, float(config.initial_buffer))
        last_level = np.full(num_sessions, -1, dtype=int)
        cumulative_stall = np.zeros(num_sessions)
        stall_count = np.zeros(num_sessions, dtype=int)
        alive = np.ones(num_sessions, dtype=bool)
        exited_early = np.zeros(num_sessions, dtype=bool)
        steps_taken = np.zeros(num_sessions, dtype=int)

        level_rec = np.zeros((num_sessions, max_steps), dtype=int)
        size_rec = np.empty((num_sessions, max_steps))
        download_rec = np.empty((num_sessions, max_steps))
        stall_rec = np.empty((num_sessions, max_steps))
        wait_rec = np.empty((num_sessions, max_steps))
        buffer_before_rec = np.empty((num_sessions, max_steps))
        buffer_after_rec = np.empty((num_sessions, max_steps))
        cumulative_rec = np.empty((num_sessions, max_steps))
        stall_count_rec = np.zeros((num_sessions, max_steps), dtype=int)
        probability_rec = np.zeros((num_sessions, max_steps))

        row_index = np.arange(num_sessions)
        for k in range(max_steps):
            active = alive & (k < max_seg)
            if not active.any():
                break

            obs_live.pulse()  # wall-clock heartbeat; no-op without a live run
            with obs.span("vector.step"):
                # Bandwidth-window statistics *before* observing this step's
                # throughput — columns [k-8, k), exactly the scalar model's window.
                if k == 0:
                    window = bandwidth[:, 0:0]
                    mean = np.full(num_sessions, _PRIOR_MEAN)
                else:
                    window = bandwidth[:, max(0, k - _WINDOW) : k]
                    mean = window.mean(axis=1)
                if k < 2:
                    std = np.full(num_sessions, _PRIOR_STD)
                else:
                    std = np.maximum(np.std(window, axis=1, ddof=1), 1e-6)
                buffer_cap = dynamic_buffer_cap(
                    mean, std, base_cap=config.base_buffer_cap
                )

                context = VectorStepContext(
                    k=k,
                    buffer=buffer,
                    buffer_cap=buffer_cap,
                    last_level=last_level,
                    segment_sizes=sizes[:, k, :],
                    throughput_window=window,
                    bandwidth_mean=mean,
                    bandwidth_std=std,
                    bitrates=bitrates,
                    segment_duration=segment_duration,
                )
                levels = np.asarray(abr_kernel(context), dtype=int)
                if levels.min() < 0 or levels.max() >= num_levels:
                    raise ValueError(
                        f"vector ABR kernel returned levels outside "
                        f"[0, {num_levels}) at step {k}"
                    )

                # Equation 3, batched (same operation order as PlayerEnvironment.step).
                bandwidth_k = bandwidth[:, k]
                size = sizes[:, k, :][row_index, levels]
                download = size / bandwidth_k
                if k == 0:
                    stall = np.where(
                        buffer == 0.0, 0.0, np.maximum(download - buffer, 0.0)
                    )
                else:
                    stall = np.maximum(download - buffer, 0.0)
                drained = np.maximum(buffer - download, 0.0)
                unclipped = drained + segment_duration
                overflow = np.maximum(unclipped - buffer_cap, 0.0)
                wait = overflow + config.rtt
                buffer_after = np.maximum(unclipped - overflow, 0.0)
                buffer_after = np.minimum(buffer_after, buffer_cap)

                stalled = stall > 1e-12
                cumulative_stall = np.where(
                    active, cumulative_stall + stall, cumulative_stall
                )
                stall_count = stall_count + (active & stalled)

                if has_exit:
                    view = ExitStepView(
                        k=k,
                        level=levels,
                        previous_level=last_level,
                        stall_time=stall,
                        cumulative_stall_time=cumulative_stall,
                        stall_count=stall_count,
                        watch_time=(k + 1) * segment_duration,
                        buffer=buffer_after,
                        throughput=bandwidth_k,
                        active=active,
                        stalled=stalled,
                    )
                    probabilities = np.asarray(exit_kernel(view), dtype=float)
                    # NaN must fail this check too (the scalar engine's
                    # `not 0.0 <= p <= 1.0` rejects it), hence the negated form.
                    if np.any(active & ~((probabilities >= 0.0) & (probabilities <= 1.0))):
                        raise ValueError("exit probability must be in [0, 1]")
                    exits = active & (uniforms[:, k] < probabilities)
                    probability_rec[:, k] = probabilities
                else:
                    exits = np.zeros(num_sessions, dtype=bool)

                level_rec[:, k] = levels
                size_rec[:, k] = size
                download_rec[:, k] = download
                stall_rec[:, k] = stall
                wait_rec[:, k] = wait
                buffer_before_rec[:, k] = buffer
                buffer_after_rec[:, k] = buffer_after
                cumulative_rec[:, k] = cumulative_stall
                stall_count_rec[:, k] = stall_count

                if host is not None:
                    # Same point in the segment lifecycle as the scalar engine's
                    # ``observe`` hook: after the exit draw, before the next
                    # segment's decision — parameter adjustments land on k+1.
                    host.observe_step(
                        active=active,
                        levels=levels,
                        stall=stall,
                        throughput=bandwidth_k,
                        buffer_after=buffer_after,
                        exits=exits,
                        bitrates=bitrates,
                    )

                steps_taken[active] = k + 1
                exited_early |= exits
                alive &= ~exits
                buffer = np.where(active, buffer_after, buffer)
                last_level = np.where(active, levels, last_level)

        if host is not None:
            host.finalize()
        return [
            self._assemble_trace(
                spec,
                int(steps_taken[i]),
                bool(exited_early[i]),
                segment_duration,
                bitrates,
                levels_row=level_rec[i],
                size_row=size_rec[i],
                bandwidth_row=bandwidth[i],
                download_row=download_rec[i],
                stall_row=stall_rec[i],
                wait_row=wait_rec[i],
                buffer_before_row=buffer_before_rec[i],
                buffer_after_row=buffer_after_rec[i],
                cumulative_row=cumulative_rec[i],
                stall_count_row=stall_count_rec[i],
                probability_row=probability_rec[i],
            )
            for i, spec in enumerate(specs)
        ]

    def _run_networked(
        self, specs, config: SessionConfig, network, link_usage, scalar_indices=()
    ) -> list[PlaybackTrace]:
        """Coupled lockstep execution: cohorts advance, links fair-share.

        The batch is partitioned into :class:`_NetGroup` cohorts (same ABR /
        exit types, ladder, segment duration and ``start_step``) that each
        stay internally lockstep; every slot gathers all cohorts' access-link
        demands into one batch-order vector, fair-shares each link through
        the same :func:`~repro.net.allocator.allocate_step` the scalar
        reference engine calls, and feeds the allocations back as the step's
        observed throughput — Equation 3, the ABR kernels' windows and the
        exit kernels all see congestion, which is what closes the feedback
        loop between load and quality.

        ``scalar_indices`` names the batch positions whose specs cannot run
        lockstep (no vector kernels, or a stateful ABR instance shared across
        concurrent sessions).  Those run as event-ordered
        :class:`~repro.sim.networked._LiveSession` reference sessions *inside
        the same slot loop*: their demands join the cohort demands in the one
        ``allocate_step`` call per slot, so coupling between the fast and
        slow cohorts still flows solely through the shared allocator and the
        combined result is identical to the all-scalar reference engine.
        """
        num_sessions = len(specs)
        link_index = resolve_link_indices(network, specs)
        weights = np.asarray([spec.weight for spec in specs], dtype=float)
        scalar_set = set(scalar_indices)
        vector_indices = [i for i in range(num_sessions) if i not in scalar_set]
        groups = self._build_net_groups(specs, config, vector_indices)

        # Scalar cohort: reference sessions, reset up front exactly like
        # run_networked_scalar (shared instances keep "one brain" semantics).
        scalar_order = sorted(scalar_set)  # contract: DET-ITER-003
        live: dict[int, _LiveSession] = {
            index: _LiveSession(specs[index], specs[index].seed, config)
            for index in scalar_order
        }
        for policy in {id(specs[i].abr): specs[i].abr for i in scalar_order}.values():
            policy.reset()
        for model in {
            id(specs[i].exit_model): specs[i].exit_model
            for i in scalar_order
            if specs[i].exit_model is not None
        }.values():
            model.reset()
        live_alive = {index: True for index in scalar_order}
        live_ends = {
            index: live[index].start + live[index].limit for index in scalar_order
        }

        horizon = max(
            [group.start + group.max_steps for group in groups]
            + [live_ends[index] for index in scalar_order],
        )
        demand = np.zeros(num_sessions)
        active_global = np.zeros(num_sessions, dtype=bool)

        # Multi-tier topologies: identity-keyed per-segment cache-miss masks,
        # computed exactly like the scalar reference (same ``CacheModel``
        # draws, keyed by (user_id, local segment index)).
        tiered = network.has_tiers
        full_path: np.ndarray | None = None
        live_miss: dict[int, np.ndarray] = {}
        if tiered:
            full_path = np.zeros(num_sessions, dtype=bool)
            profile_rows: dict[tuple[str, int], np.ndarray] = {}

            def _miss_row(user_id: str, length: int) -> np.ndarray:
                if network.cache is None:
                    return np.ones(length, dtype=bool)
                row = profile_rows.get((user_id, length))
                if row is None:
                    row = network.cache.miss_profile(user_id, length)
                    profile_rows[(user_id, length)] = row
                return row

            for group in groups:
                group.miss = np.stack(
                    [
                        _miss_row(spec.user_id, group.max_steps)
                        for spec in group.specs
                    ]
                )
            live_miss = {
                index: _miss_row(specs[index].user_id, live[index].limit)
                for index in scalar_order
            }

        for k in range(horizon):
            obs_live.pulse()  # wall-clock heartbeat; no-op without a live run
            demand[:] = 0.0
            active_global[:] = False
            if tiered:
                full_path[:] = False
            stepping: list[tuple[_NetGroup, int, np.ndarray]] = []
            runnable_any = False
            for group in groups:
                j = k - group.start
                if j < 0:
                    # Not started: the cohort still counts as runnable (the
                    # scalar engine keeps emitting idle-slot usage samples
                    # while any future session exists), but takes no capacity.
                    runnable_any = runnable_any or bool(group.alive.any())
                    continue
                if j >= group.max_steps:
                    continue
                active = group.alive & (j < group.max_seg)
                if active.any():
                    runnable_any = True
                    stepping.append((group, j, active))
                    demand[group.indices] = np.where(
                        active, group.bandwidth[:, j], 0.0
                    )
                    active_global[group.indices] = active
                    if tiered:
                        full_path[group.indices] = active & group.miss[:, j]
            live_stepping: list[int] = []
            for index in scalar_order:
                if not live_alive[index] or k >= live_ends[index]:
                    continue
                runnable_any = True
                if live[index].start <= k:
                    live_stepping.append(index)
                    demand[index] = live[index].demand_at(k)
                    active_global[index] = True
                    if tiered:
                        full_path[index] = live_miss[index][k - live[index].start]
            if not runnable_any:
                break
            obs.counter_add("vector.net_slots")
            allocations = allocate_step(
                network,
                k,
                link_index,
                demand,
                active_global,
                weights,
                usage_out=link_usage,
                full_path=full_path,
            )
            if stepping:
                with obs.span("vector.step"):
                    for group, j, active in stepping:
                        self._step_net_group(
                            group, j, active, allocations[group.indices], config
                        )
            if live_stepping:
                with obs.span("networked.session_step"):
                    for index in live_stepping:
                        if not live[index].step(k, float(allocations[index])):
                            live_alive[index] = False

        results: list[PlaybackTrace | None] = [None] * num_sessions
        for index in scalar_order:
            results[index] = live[index].playback
        for group in groups:
            if group.host is not None:
                group.host.finalize()
        for group in groups:
            for i, spec in enumerate(group.specs):
                results[int(group.indices[i])] = self._assemble_trace(
                    spec,
                    int(group.steps_taken[i]),
                    bool(group.exited_early[i]),
                    group.segment_duration,
                    group.bitrates,
                    levels_row=group.level_rec[i],
                    size_row=group.size_rec[i],
                    bandwidth_row=group.observed[i],
                    download_row=group.download_rec[i],
                    stall_row=group.stall_rec[i],
                    wait_row=group.wait_rec[i],
                    buffer_before_row=group.buffer_before_rec[i],
                    buffer_after_row=group.buffer_after_rec[i],
                    cumulative_row=group.cumulative_rec[i],
                    stall_count_row=group.stall_count_rec[i],
                    probability_row=group.probability_rec[i],
                )
        return results

    def _build_net_groups(
        self, specs, config: SessionConfig, vector_indices=None
    ) -> list[_NetGroup]:
        """Partition a networked batch into internally-lockstep cohorts."""
        if vector_indices is None:
            vector_indices = range(len(specs))
        grouped: dict[tuple, list[int]] = {}
        for index in vector_indices:
            spec = specs[index]
            key = (
                type(spec.abr),
                type(spec.abr.inner) if self._controller_wrapped(spec.abr) else None,
                None if spec.exit_model is None else type(spec.exit_model),
                spec.video.ladder.bitrates_kbps,
                spec.video.segment_duration,
                spec.start_step,
            )
            grouped.setdefault(key, []).append(index)

        groups: list[_NetGroup] = []
        for indices in grouped.values():
            members = [specs[i] for i in indices]
            first_video = members[0].video
            segment_duration = float(first_video.segment_duration)
            bitrates = np.asarray(first_video.ladder.bitrates_kbps, dtype=float)
            n = len(members)

            max_seg = np.empty(n, dtype=int)
            for i, spec in enumerate(members):
                limit = spec.video.num_segments
                if config.max_segments is not None:
                    limit = min(limit, config.max_segments)
                max_seg[i] = limit
            max_steps = int(max_seg.max())

            bandwidth = np.empty((n, max_steps))
            trace_rows: dict[int, np.ndarray] = {}
            for i, spec in enumerate(members):
                row = trace_rows.get(id(spec.trace))
                if row is None:
                    row = np.resize(
                        np.asarray(spec.trace.values_kbps, dtype=float), max_steps
                    )
                    trace_rows[id(spec.trace)] = row
                bandwidth[i] = row
            sizes = np.empty((n, max_steps, bitrates.size))
            video_rows: dict[int, np.ndarray] = {}
            step_index = np.arange(max_steps)
            for i, spec in enumerate(members):
                block = video_rows.get(id(spec.video))
                if block is None:
                    block = spec.video.segment_sizes_kbit[
                        step_index % spec.video.num_segments
                    ]
                    video_rows[id(spec.video)] = block
                sizes[i] = block

            abr_kernel, host = self._build_abr_kernel(members, first_video.ladder)
            if members[0].exit_model is not None:
                models = [spec.exit_model for spec in members]
                exit_kernel = type(models[0]).vector_exit_kernel(models)
                for model in models:
                    model.reset()
                uniforms = np.empty((n, max_steps))
                for i, spec in enumerate(members):
                    uniforms[i] = session_rng(spec.seed).random(max_steps)
            else:
                exit_kernel = None
                uniforms = None

            group = _NetGroup(
                indices=np.asarray(indices, dtype=int),
                specs=members,
                start=members[0].start_step,
                max_seg=max_seg,
                max_steps=max_steps,
                segment_duration=segment_duration,
                bitrates=bitrates,
                bandwidth=bandwidth,
                sizes=sizes,
                abr_kernel=abr_kernel,
                exit_kernel=exit_kernel,
                uniforms=uniforms,
                host=host,
            )
            group.buffer[:] = float(config.initial_buffer)
            groups.append(group)
        return groups

    @staticmethod
    def _step_net_group(
        group: _NetGroup,
        j: int,
        active: np.ndarray,
        allocated: np.ndarray,
        config: SessionConfig,
    ) -> None:
        """Advance one cohort one local step at the allocator's throughputs.

        Identical array math to the un-networked lockstep loop, with two
        substitutions: the step's bandwidth is the allocation (not the trace
        value), and the bandwidth-window statistics read from the cohort's
        *observed* throughput history (the previous allocations) — exactly
        what the scalar player's :class:`~repro.sim.bandwidth.BandwidthModel`
        accumulates.
        """
        n = len(group.specs)
        row_index = np.arange(n)
        # Rows that are done or exited must stay finite through the shared
        # array expressions; their values are never recorded.
        alloc = np.where(active, allocated, 1.0)

        if j == 0:
            window = group.observed[:, 0:0]
            mean = np.full(n, _PRIOR_MEAN)
        else:
            window = group.observed[:, max(0, j - _WINDOW) : j]
            mean = window.mean(axis=1)
        if j < 2:
            std = np.full(n, _PRIOR_STD)
        else:
            std = np.maximum(np.std(window, axis=1, ddof=1), 1e-6)
        buffer_cap = dynamic_buffer_cap(mean, std, base_cap=config.base_buffer_cap)

        context = VectorStepContext(
            k=j,
            buffer=group.buffer,
            buffer_cap=buffer_cap,
            last_level=group.last_level,
            segment_sizes=group.sizes[:, j, :],
            throughput_window=window,
            bandwidth_mean=mean,
            bandwidth_std=std,
            bitrates=group.bitrates,
            segment_duration=group.segment_duration,
        )
        levels = np.asarray(group.abr_kernel(context), dtype=int)
        num_levels = group.bitrates.size
        if np.any(active & ((levels < 0) | (levels >= num_levels))):
            raise ValueError(
                f"vector ABR kernel returned levels outside "
                f"[0, {num_levels}) at step {j}"
            )
        levels = np.where(active, levels, 0)

        size = group.sizes[:, j, :][row_index, levels]
        download = size / alloc
        if j == 0:
            stall = np.where(
                group.buffer == 0.0, 0.0, np.maximum(download - group.buffer, 0.0)
            )
        else:
            stall = np.maximum(download - group.buffer, 0.0)
        drained = np.maximum(group.buffer - download, 0.0)
        unclipped = drained + group.segment_duration
        overflow = np.maximum(unclipped - buffer_cap, 0.0)
        wait = overflow + config.rtt
        buffer_after = np.maximum(unclipped - overflow, 0.0)
        buffer_after = np.minimum(buffer_after, buffer_cap)

        stalled = stall > 1e-12
        group.cumulative_stall = np.where(
            active, group.cumulative_stall + stall, group.cumulative_stall
        )
        group.stall_count = group.stall_count + (active & stalled)

        if group.exit_kernel is not None:
            view = ExitStepView(
                k=j,
                level=levels,
                previous_level=group.last_level,
                stall_time=stall,
                cumulative_stall_time=group.cumulative_stall,
                stall_count=group.stall_count,
                watch_time=(j + 1) * group.segment_duration,
                buffer=buffer_after,
                throughput=alloc,
                active=active,
                stalled=stalled,
            )
            probabilities = np.asarray(group.exit_kernel(view), dtype=float)
            if np.any(
                active & ~((probabilities >= 0.0) & (probabilities <= 1.0))
            ):
                raise ValueError("exit probability must be in [0, 1]")
            exits = active & (group.uniforms[:, j] < probabilities)
            group.probability_rec[:, j] = probabilities
        else:
            exits = np.zeros(n, dtype=bool)

        group.level_rec[:, j] = levels
        group.size_rec[:, j] = size
        group.download_rec[:, j] = download
        group.stall_rec[:, j] = stall
        group.wait_rec[:, j] = wait
        group.buffer_before_rec[:, j] = group.buffer
        group.buffer_after_rec[:, j] = buffer_after
        group.cumulative_rec[:, j] = group.cumulative_stall
        group.stall_count_rec[:, j] = group.stall_count
        group.observed[:, j] = alloc

        if group.host is not None:
            group.host.observe_step(
                active=active,
                levels=levels,
                stall=stall,
                throughput=alloc,
                buffer_after=buffer_after,
                exits=exits,
                bitrates=group.bitrates,
            )

        group.steps_taken[active] = j + 1
        group.exited_early |= exits
        group.alive &= ~exits
        group.buffer = np.where(active, buffer_after, group.buffer)
        group.last_level = np.where(active, levels, group.last_level)

    @staticmethod
    def _assemble_trace(
        spec: SessionSpec,
        num_segments: int,
        exited_early: bool,
        segment_duration: float,
        bitrates: np.ndarray,
        *,
        levels_row,
        size_row,
        bandwidth_row,
        download_row,
        stall_row,
        wait_row,
        buffer_before_row,
        buffer_after_row,
        cumulative_row,
        stall_count_row,
        probability_row,
    ) -> PlaybackTrace:
        """Materialise one session's column slices into a PlaybackTrace."""
        n = num_segments
        levels = levels_row[:n]
        exited_flags = [False] * n
        if n and exited_early:
            exited_flags[-1] = True
        watch_times = ((np.arange(n) + 1) * segment_duration).tolist()
        records = [
            SegmentRecord(*row)
            for row in zip(
                range(n),
                levels.tolist(),
                bitrates[levels].tolist(),
                size_row[:n].tolist(),
                bandwidth_row[:n].tolist(),
                download_row[:n].tolist(),
                stall_row[:n].tolist(),
                wait_row[:n].tolist(),
                buffer_before_row[:n].tolist(),
                buffer_after_row[:n].tolist(),
                watch_times,
                cumulative_row[:n].tolist(),
                stall_count_row[:n].tolist(),
                probability_row[:n].tolist(),
                exited_flags,
            )
        ]
        return PlaybackTrace(
            user_id=spec.user_id,
            video_duration=spec.video.duration,
            segment_duration=spec.video.segment_duration,
            trace_name=spec.trace.name,
            records=records,
            exited_early=exited_early,
        )


register_backend("vector", VectorBackend)


# --------------------------------------------------------------------------- #
# Columnar trace export/import into caller-provided buffers
# --------------------------------------------------------------------------- #
# The struct-of-arrays layout of the lockstep engine does not have to die at
# the process boundary: a batch of PlaybackTraces flattens into a fixed set of
# per-field columns (one array per SegmentRecord field, plus four per-trace
# header arrays) that a shard worker writes straight into a caller-provided
# buffer — in practice a ``multiprocessing.shared_memory`` arena owned by
# ``repro.fleet.pool`` — and the parent reads back through zero-copy numpy
# views.  Strings (user ids, trace names) are deliberately *not* part of the
# columnar format; the caller carries them out of band and hands them back to
# :func:`import_trace_columns`.
#
# Round-trip contract: ``import_trace_columns(export_trace_columns(traces))``
# is *value-identical* to ``traces`` — every int/float/bool survives exactly
# (int64/float64/bool columns, ``.tolist()`` back to Python scalars), which is
# what lets the pooled fleet path stay bit-identical to the inline one.

_TRACE_FIELD_DTYPES = {"int": np.int64, "float": np.float64, "bool": np.bool_}


def _trace_field_dtype(field_type) -> np.dtype:
    name = field_type if isinstance(field_type, str) else field_type.__name__
    return np.dtype(_TRACE_FIELD_DTYPES[name])


#: ``(field_name, dtype)`` per :class:`SegmentRecord` field, in declaration
#: order (which is also the record's positional-constructor order).
TRACE_RECORD_COLUMNS: tuple[tuple[str, np.dtype], ...] = tuple(
    (f.name, _trace_field_dtype(f.type)) for f in dataclasses.fields(SegmentRecord)
)

#: Per-trace header columns: record count, video geometry, early-exit flag.
TRACE_HEADER_COLUMNS: tuple[tuple[str, np.dtype], ...] = (
    ("num_records", np.dtype(np.int64)),
    ("video_duration", np.dtype(np.float64)),
    ("segment_duration", np.dtype(np.float64)),
    ("exited_early", np.dtype(np.bool_)),
)

TRACE_COLUMNS_VERSION = 1


def _align8(offset: int) -> int:
    return (offset + 7) & ~7


def _trace_regions(
    num_traces: int, num_records: int
) -> list[tuple[str, np.dtype, int]]:
    """Ordered ``(name, dtype, count)`` region walk of the columnar format."""
    regions = [
        (f"header.{name}", dtype, num_traces)
        for name, dtype in TRACE_HEADER_COLUMNS
    ]
    regions += [
        (f"records.{name}", dtype, num_records)
        for name, dtype in TRACE_RECORD_COLUMNS
    ]
    return regions


def trace_columns_nbytes(num_traces: int, num_records: int, offset: int = 0) -> int:
    """Bytes :func:`export_trace_columns` needs from ``offset`` (incl. padding)."""
    end = offset
    for _, dtype, count in _trace_regions(num_traces, num_records):
        end = _align8(end) + dtype.itemsize * count
    return end - offset


def export_trace_columns(
    traces: Sequence[PlaybackTrace], buffer, offset: int = 0
) -> tuple[dict, int]:
    """Write ``traces`` as columns into ``buffer`` starting at ``offset``.

    ``buffer`` is anything :func:`numpy.frombuffer` accepts (a
    ``SharedMemory.buf`` memoryview, a ``bytearray``, …).  Returns
    ``(layout, end_offset)``; the layout dict is JSON-safe and is all a reader
    needs besides the buffer itself and the out-of-band string columns.
    """
    num_traces = len(traces)
    num_records = sum(len(trace.records) for trace in traces)
    values: dict[str, list] = {
        "header.num_records": [len(trace.records) for trace in traces],
        "header.video_duration": [trace.video_duration for trace in traces],
        "header.segment_duration": [trace.segment_duration for trace in traces],
        "header.exited_early": [trace.exited_early for trace in traces],
    }
    for name, _ in TRACE_RECORD_COLUMNS:
        values[f"records.{name}"] = [
            getattr(record, name) for trace in traces for record in trace.records
        ]
    layout = {
        "version": TRACE_COLUMNS_VERSION,
        "traces": num_traces,
        "records": num_records,
        "regions": {},
    }
    position = offset
    for name, dtype, count in _trace_regions(num_traces, num_records):
        position = _align8(position)
        view = np.frombuffer(buffer, dtype=dtype, count=count, offset=position)
        view[:] = np.asarray(values[name], dtype=dtype)
        layout["regions"][name] = position
        position += view.nbytes
    return layout, position


def import_trace_columns(
    buffer, layout: dict, *, user_ids: Sequence[str], trace_names: Sequence[str]
) -> list[PlaybackTrace]:
    """Inverse of :func:`export_trace_columns` (strings supplied out of band).

    Reads through transient numpy views over ``buffer`` and materialises
    plain-Python :class:`PlaybackTrace` objects, so nothing returned keeps a
    reference into the buffer — the caller may recycle it immediately.
    """
    if layout.get("version") != TRACE_COLUMNS_VERSION:
        raise ValueError(f"unsupported trace-columns layout: {layout.get('version')!r}")
    num_traces = int(layout["traces"])
    num_records = int(layout["records"])
    if len(user_ids) != num_traces or len(trace_names) != num_traces:
        raise ValueError("user_ids/trace_names must have one entry per trace")
    columns: dict[str, list] = {}
    for name, dtype, count in _trace_regions(num_traces, num_records):
        view = np.frombuffer(
            buffer, dtype=dtype, count=count, offset=int(layout["regions"][name])
        )
        columns[name] = view.tolist()
    record_rows = zip(
        *(columns[f"records.{name}"] for name, _ in TRACE_RECORD_COLUMNS)
    )
    traces: list[PlaybackTrace] = []
    for index in range(num_traces):
        records = [
            SegmentRecord(*row)
            for row in itertools.islice(
                record_rows, columns["header.num_records"][index]
            )
        ]
        traces.append(
            PlaybackTrace(
                user_id=user_ids[index],
                video_duration=columns["header.video_duration"][index],
                segment_duration=columns["header.segment_duration"][index],
                trace_name=trace_names[index],
                records=records,
                exited_early=columns["header.exited_early"][index],
            )
        )
    return traces
