"""Video model: bitrate ladders, quality tiers and VBR segment sizes.

The paper analyses four quality tiers (LD / SD / HD / Full HD, §2.2) and uses
the standard chunked-video abstraction of the `QoE_lin` literature: a video is
a sequence of ``K`` segments of fixed play-out duration ``L``; each segment is
encoded at every rung of a bitrate ladder and the ABR algorithm picks one rung
per segment.  Segment sizes are variable-bitrate (VBR): the actual size of
segment ``k`` at rung ``q`` fluctuates around ``bitrate[q] * L``.

Units used throughout the library:

* bitrate — kilobits per second (kbps)
* segment size — kilobits (kbit)
* duration — seconds
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

#: Human-readable names for the four quality tiers analysed in §2.2.
QUALITY_TIERS: tuple[str, ...] = ("LD", "SD", "HD", "FullHD")

#: Default production-style ladder (kbps).  The top rung (~4.3 Mbps) matches
#: the "max video bitrate" the paper compares user bandwidth against (Fig. 2a).
DEFAULT_LADDER_KBPS: tuple[float, ...] = (350.0, 750.0, 1850.0, 4300.0)

#: Default segment play-out duration ``L`` (seconds).  Short-video platforms
#: use short segments; 2 s keeps per-segment exit-rate granularity fine.
DEFAULT_SEGMENT_DURATION: float = 2.0


@dataclass(frozen=True)
class BitrateLadder:
    """An ordered set of encoding bitrates with an associated quality function.

    Parameters
    ----------
    bitrates_kbps:
        Monotonically increasing encoding bitrates, one per quality level.
    tier_names:
        Optional human-readable names (defaults to LD/SD/HD/FullHD-style
        labels truncated or extended as needed).
    """

    bitrates_kbps: tuple[float, ...] = DEFAULT_LADDER_KBPS
    tier_names: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if len(self.bitrates_kbps) < 2:
            raise ValueError("a bitrate ladder needs at least two levels")
        if any(b <= 0 for b in self.bitrates_kbps):
            raise ValueError("bitrates must be positive")
        if list(self.bitrates_kbps) != sorted(self.bitrates_kbps):
            raise ValueError("bitrates must be sorted ascending")
        if self.tier_names and len(self.tier_names) != len(self.bitrates_kbps):
            raise ValueError("tier_names must match the number of bitrates")
        if not self.tier_names:
            names = tuple(
                QUALITY_TIERS[i] if i < len(QUALITY_TIERS) else f"Q{i}"
                for i in range(len(self.bitrates_kbps))
            )
            object.__setattr__(self, "tier_names", names)

    @property
    def num_levels(self) -> int:
        """Number of rungs on the ladder."""
        return len(self.bitrates_kbps)

    @property
    def max_bitrate(self) -> float:
        """Highest encoding bitrate (kbps)."""
        return self.bitrates_kbps[-1]

    @property
    def min_bitrate(self) -> float:
        """Lowest encoding bitrate (kbps)."""
        return self.bitrates_kbps[0]

    def bitrate(self, level: int) -> float:
        """Encoding bitrate (kbps) of ``level``."""
        return self.bitrates_kbps[self._check(level)]

    def quality(self, level: int) -> float:
        """Quality value ``q(Q_k)`` used by `QoE_lin` (Equation 1).

        Following the MPC/Pensieve convention the quality of a rung is its
        bitrate expressed in Mbps, which keeps the stall-penalty weight
        ``mu = q(max)`` (the paper's choice) in a sensible range.
        """
        return self.bitrates_kbps[self._check(level)] / 1000.0

    def qualities(self) -> np.ndarray:
        """Vector of quality values for every rung."""
        return np.asarray(self.bitrates_kbps, dtype=float) / 1000.0

    def tier_name(self, level: int) -> str:
        """Human-readable tier name of ``level``."""
        return self.tier_names[self._check(level)]

    def level_for_bitrate(self, bitrate_kbps: float) -> int:
        """Highest rung whose bitrate does not exceed ``bitrate_kbps``.

        Returns 0 if even the lowest rung exceeds the given bitrate.
        """
        level = 0
        for i, b in enumerate(self.bitrates_kbps):
            if b <= bitrate_kbps:
                level = i
        return level

    def _check(self, level: int) -> int:
        if not 0 <= level < self.num_levels:
            raise IndexError(
                f"quality level {level} out of range [0, {self.num_levels})"
            )
        return level


@dataclass
class Video:
    """A chunked video: ``num_segments`` segments of duration ``segment_duration``.

    Segment sizes are generated once (deterministically for a given seed) so a
    video object can be replayed across algorithms and experiments.
    """

    ladder: BitrateLadder = field(default_factory=BitrateLadder)
    num_segments: int = 60
    segment_duration: float = DEFAULT_SEGMENT_DURATION
    vbr_std: float = 0.10
    seed: int = 0
    #: (num_segments, num_levels) matrix of sizes in kilobits.
    segment_sizes_kbit: np.ndarray = field(init=False, repr=False)
    #: Lazily built per-segment size tuples (the ABRContext hot path reads a
    #: tuple per segment; building them once per video beats re-tupling the
    #: size matrix row on every simulated segment).
    _sizes_tuple_cache: list | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_segments <= 0:
            raise ValueError("num_segments must be positive")
        if self.segment_duration <= 0:
            raise ValueError("segment_duration must be positive")
        if not 0 <= self.vbr_std < 1:
            raise ValueError("vbr_std must be in [0, 1)")
        rng = np.random.default_rng(self.seed)
        nominal = (
            np.asarray(self.ladder.bitrates_kbps, dtype=float)[None, :]
            * self.segment_duration
        )
        jitter = rng.normal(1.0, self.vbr_std, size=(self.num_segments, 1))
        jitter = np.clip(jitter, 0.5, 1.5)
        self.segment_sizes_kbit = nominal * jitter

    @property
    def duration(self) -> float:
        """Total play-out duration of the video (seconds)."""
        return self.num_segments * self.segment_duration

    def segment_size(self, index: int, level: int) -> float:
        """Size in kilobits of segment ``index`` encoded at ``level``.

        Indices beyond the end of the video wrap around, which lets the
        Monte-Carlo evaluator run virtual playback longer than any single
        video without special-casing.
        """
        return float(
            self.segment_sizes_kbit[index % self.num_segments, self.ladder._check(level)]
        )

    def sizes_for_segment(self, index: int) -> np.ndarray:
        """All rung sizes (kilobits) for segment ``index``."""
        return self.segment_sizes_kbit[index % self.num_segments].copy()

    def sizes_tuple(self, index: int) -> tuple[float, ...]:
        """All rung sizes for segment ``index`` as a cached tuple of floats."""
        cache = self._sizes_tuple_cache
        if cache is None:
            cache = self._sizes_tuple_cache = [
                tuple(map(float, row)) for row in self.segment_sizes_kbit
            ]
        return cache[index % self.num_segments]


class VideoLibrary:
    """A catalogue of videos with short-video-platform length statistics.

    The paper sets the Monte-Carlo per-sample horizon ``T_sample`` to the
    average length of online videos; the library exposes that average so the
    evaluator and experiments share one source of truth.
    """

    def __init__(
        self,
        ladder: BitrateLadder | None = None,
        num_videos: int = 32,
        mean_duration: float = 60.0,
        std_duration: float = 25.0,
        segment_duration: float = DEFAULT_SEGMENT_DURATION,
        vbr_std: float = 0.10,
        seed: int = 0,
    ) -> None:
        if num_videos <= 0:
            raise ValueError("num_videos must be positive")
        self.ladder = ladder or BitrateLadder()
        self.segment_duration = segment_duration
        rng = np.random.default_rng(seed)
        durations = np.clip(
            rng.normal(mean_duration, std_duration, size=num_videos),
            4 * segment_duration,
            None,
        )
        self._videos = [
            Video(
                ladder=self.ladder,
                num_segments=max(2, int(round(d / segment_duration))),
                segment_duration=segment_duration,
                vbr_std=vbr_std,
                seed=seed + 1 + i,
            )
            for i, d in enumerate(durations)
        ]

    def __len__(self) -> int:
        return len(self._videos)

    def __getitem__(self, index: int) -> Video:
        return self._videos[index % len(self._videos)]

    def __iter__(self):
        return iter(self._videos)

    @property
    def videos(self) -> Sequence[Video]:
        """All videos in the library."""
        return tuple(self._videos)

    @property
    def mean_duration(self) -> float:
        """Average video duration (seconds) — used as ``T_sample``."""
        return float(np.mean([v.duration for v in self._videos]))

    def sample(self, rng: np.random.Generator) -> Video:
        """Draw a random video from the library."""
        return self._videos[int(rng.integers(len(self._videos)))]
