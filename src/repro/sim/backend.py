"""Pluggable simulation backends: the seam between *what* to simulate and *how*.

A :class:`SessionSpec` fully describes one playback session (ABR, video,
bandwidth trace, optional exit model, RNG substream, user id) without saying
anything about execution strategy.  A :class:`SimBackend` turns a batch of
specs into :class:`~repro.sim.session.PlaybackTrace` objects, one per spec,
in spec order.

Two backends are registered out of the box:

* ``"scalar"`` — the reference implementation: one
  :class:`~repro.sim.session.PlaybackSession` run per spec.
* ``"vector"`` — the struct-of-arrays lockstep engine of
  :mod:`repro.sim.vector` that advances all sessions of a batch one segment
  at a time with NumPy array math (registered on import of
  :mod:`repro.sim.vector`, which :mod:`repro.sim` performs eagerly).

Determinism contract
--------------------
Randomness never flows through a shared generator: every spec owns a
`Philox` substream derived from its ``seed`` (see :func:`session_rng`).
Philox is counter-based, so substreams are cheap to create and statistically
independent, and — crucially — each session consumes *its own* stream in
segment order.  Execution order across sessions therefore cannot change any
session's draws, which is what makes the scalar and vector backends produce
segment-for-segment identical traces for the same specs.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.sim.bandwidth import BandwidthTrace
from repro.sim.session import (
    ABRPolicy,
    ExitModel,
    PlaybackSession,
    PlaybackTrace,
    SessionConfig,
)
from repro.sim.video import Video

#: Anything accepted as a per-session seed.
SeedLike = int | None | np.random.SeedSequence


@dataclass(frozen=True)
class SessionSpec:
    """Everything needed to simulate one playback session, backend-agnostic.

    ``seed=None`` (the default) resolves to a distinct batch-position-derived
    substream in :func:`resolve_session_seeds` — unseeded specs in one batch
    never share a stream.

    The last three fields only matter to **networked** runs (``run_batch``
    with a :class:`~repro.net.topology.NetworkTopology`): ``link`` pins the
    session to an edge link by id (``None`` → deterministic attachment by
    ``user_id``), ``start_step`` is the slot the session starts downloading
    at, and ``weight`` is its weighted-fair-share weight.  Un-networked runs
    ignore them — without a shared bottleneck, sessions are independent, so
    shifting one in time or reweighting it cannot change its trace.
    """

    abr: ABRPolicy
    video: Video
    trace: BandwidthTrace
    exit_model: ExitModel | None = None
    seed: SeedLike = None
    user_id: str = "user"
    link: str | None = None
    start_step: int = 0
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.start_step < 0:
            raise ValueError("start_step must be non-negative")
        if self.weight <= 0:
            raise ValueError("weight must be positive")


def session_rng(seed: int | np.random.SeedSequence) -> np.random.Generator:
    # contract: DET-RNG-001
    """Per-session `Philox` substream generator for a resolved spec seed.

    Both backends build session RNGs exclusively through this function, so a
    spec's stream of exit-decision uniforms is identical no matter which
    backend executes it (or in what order the batch is processed).
    """
    if not isinstance(seed, np.random.SeedSequence):
        seed = np.random.SeedSequence(seed)
    return np.random.Generator(np.random.Philox(seed))


def resolve_session_seeds(specs: Sequence[SessionSpec]) -> list[np.random.SeedSequence]:
    """One seed sequence per spec, in batch order.

    Explicit seeds pass through; unseeded specs get substreams keyed by their
    batch position, so a batch of default-constructed specs draws independent
    randomness per session.  Both backends resolve seeds against the
    *original* batch order before any regrouping, which keeps a spec's stream
    independent of execution strategy.
    """
    return [
        spec.seed
        if isinstance(spec.seed, np.random.SeedSequence)
        else np.random.SeedSequence(spec.seed)
        if spec.seed is not None
        else np.random.SeedSequence(0, spawn_key=(index,))
        for index, spec in enumerate(specs)
    ]


def spawn_session_seeds(seed: int, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent per-session seed sequences derived from ``seed``."""
    return list(np.random.SeedSequence(seed).spawn(count))


class SimBackend(abc.ABC):
    """Executes batches of :class:`SessionSpec` into playback traces."""

    #: Registry name of the backend (set by subclasses).
    name: str = "base"

    @abc.abstractmethod
    def run_batch(
        self,
        specs: Sequence[SessionSpec],
        config: SessionConfig | None = None,
        *,
        network=None,
        link_usage=None,
    ) -> list[PlaybackTrace]:
        """Simulate every spec; results are returned in spec order.

        With ``network`` (a :class:`~repro.net.topology.NetworkTopology`) the
        batch runs **coupled**: at every slot the sessions actively
        downloading on an edge link fair-share its capacity, so each
        session's observed throughput is the allocator's answer instead of
        its trace value (the trace becomes the session's access-link
        *demand*).  ``link_usage`` (a list) collects one
        :class:`~repro.net.allocator.LinkUsageSample` per link per slot.
        """

    def run(
        self,
        spec: SessionSpec,
        config: SessionConfig | None = None,
        *,
        network=None,
        link_usage=None,
    ) -> PlaybackTrace:
        """Single-session convenience wrapper around :meth:`run_batch`."""
        return self.run_batch([spec], config, network=network, link_usage=link_usage)[0]


class ScalarBackend(SimBackend):
    """Reference backend: one sequential :class:`PlaybackSession` per spec.

    Networked batches route through the event-ordered reference engine of
    :mod:`repro.sim.networked` — sessions still advance with per-session
    scalar math (a :class:`~repro.sim.player.PlayerEnvironment` each), but
    interleaved slot by slot so the shared allocator sees every concurrent
    download.
    """

    name = "scalar"

    def run_batch(
        self,
        specs: Sequence[SessionSpec],
        config: SessionConfig | None = None,
        *,
        network=None,
        link_usage=None,
    ) -> list[PlaybackTrace]:
        if network is not None:
            from repro.sim.networked import run_networked_scalar

            return run_networked_scalar(
                specs, network, config, link_usage=link_usage
            )
        engine = PlaybackSession(config)
        return [
            engine.run(
                spec.abr,
                spec.video,
                spec.trace,
                exit_model=spec.exit_model,
                rng=session_rng(seed),
                user_id=spec.user_id,
            )
            for spec, seed in zip(specs, resolve_session_seeds(specs))
        ]


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[[], SimBackend]] = {}


def register_backend(name: str, factory: Callable[[], SimBackend]) -> None:
    """Register a backend factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_backends() -> list[str]:
    """Registered backend names, sorted."""
    return sorted(_REGISTRY)


def get_backend(backend: str | SimBackend | None) -> SimBackend:
    """Resolve a backend name (or pass an instance through, or default scalar)."""
    if backend is None:
        return ScalarBackend()
    if isinstance(backend, SimBackend):
        return backend
    try:
        factory = _REGISTRY[backend]
    except KeyError:
        raise KeyError(
            f"unknown backend {backend!r}; available: {available_backends()}"
        ) from None
    return factory()


def run_sessions(
    specs: Sequence[SessionSpec],
    config: SessionConfig | None = None,
    backend: str | SimBackend | None = "scalar",
    network=None,
    link_usage=None,
) -> list[PlaybackTrace]:
    """One-call helper: resolve ``backend`` and run ``specs`` through it."""
    return get_backend(backend).run_batch(
        specs, config, network=network, link_usage=link_usage
    )


register_backend("scalar", ScalarBackend)
