"""Playback simulation substrate.

This package implements the streaming substrate that LingXi's Monte-Carlo
evaluator, the pre-deployment simulation experiments (Figure 10) and the
simulated A/B campaigns (Figures 1, 12, 13) all run on:

* :mod:`repro.sim.video` — bitrate ladders and VBR segment-size models.
* :mod:`repro.sim.bandwidth` — bandwidth models and synthetic trace families.
* :mod:`repro.sim.player` — the player-environment transition of Equation 3
  (buffer, stall, waiting time, dynamic ``B_max``).
* :mod:`repro.sim.session` — the segment-by-segment playback loop that joins
  an ABR algorithm, the player and a user exit model into a
  :class:`~repro.sim.session.PlaybackTrace`.
* :mod:`repro.sim.backend` — the pluggable :class:`SimBackend` seam
  (``SessionSpec`` batches in, ``PlaybackTrace`` lists out) with the
  ``"scalar"`` reference backend and per-session `Philox` RNG substreams.
* :mod:`repro.sim.vector` — the ``"vector"`` struct-of-arrays backend that
  advances N sessions per step as pure array math, reproducing the scalar
  engine's traces segment for segment.
* :mod:`repro.sim.networked` — the event-ordered scalar reference engine for
  **networked** batches, where concurrent sessions fair-share
  :mod:`repro.net` edge-link capacity instead of each playing a private
  trace (the vector backend has a matching lockstep mode).
* :mod:`repro.sim.traces` — trace file I/O and bundled synthetic trace sets.
"""

from repro.sim.video import BitrateLadder, Video, VideoLibrary, QUALITY_TIERS
from repro.sim.bandwidth import (
    BandwidthModel,
    BandwidthTrace,
    StationaryTraceGenerator,
    MarkovTraceGenerator,
    LowBandwidthTraceGenerator,
    MixedTraceGenerator,
)
from repro.sim.player import PlayerEnvironment, SegmentResult
from repro.sim.session import (
    PlaybackSession,
    PlaybackTrace,
    SegmentRecord,
    SessionConfig,
)
from repro.sim.traces import generate_trace_set, save_traces, load_traces
from repro.sim.backend import (
    ScalarBackend,
    SessionSpec,
    SimBackend,
    available_backends,
    get_backend,
    register_backend,
    run_sessions,
    session_rng,
    spawn_session_seeds,
)
from repro.sim.networked import resolve_link_indices, run_networked_scalar
from repro.sim.vector import ExitStepView, VectorBackend, VectorStepContext

__all__ = [
    "resolve_link_indices",
    "run_networked_scalar",
    "ScalarBackend",
    "SessionSpec",
    "SimBackend",
    "available_backends",
    "get_backend",
    "register_backend",
    "run_sessions",
    "session_rng",
    "spawn_session_seeds",
    "ExitStepView",
    "VectorBackend",
    "VectorStepContext",
    "BitrateLadder",
    "Video",
    "VideoLibrary",
    "QUALITY_TIERS",
    "BandwidthModel",
    "BandwidthTrace",
    "StationaryTraceGenerator",
    "MarkovTraceGenerator",
    "LowBandwidthTraceGenerator",
    "MixedTraceGenerator",
    "PlayerEnvironment",
    "SegmentResult",
    "PlaybackSession",
    "PlaybackTrace",
    "SegmentRecord",
    "SessionConfig",
    "generate_trace_set",
    "save_traces",
    "load_traces",
]
