"""Playback session engine.

A :class:`PlaybackSession` joins three pieces around a
:class:`~repro.sim.player.PlayerEnvironment`:

* an **ABR algorithm** (anything implementing :class:`ABRPolicy`) that picks
  the quality level for each segment from an :class:`ABRContext` snapshot;
* a **bandwidth source** (a :class:`~repro.sim.bandwidth.BandwidthTrace`);
* an optional **user exit model** (anything implementing :class:`ExitModel`)
  that, after every segment, decides whether the simulated user abandons the
  video — this is the per-segment exit behaviour the paper's Monte-Carlo
  evaluator and pre-deployment simulation build on.

The session produces a :class:`PlaybackTrace` of per-segment
:class:`SegmentRecord` entries carrying everything later stages need
(analytics, exit-rate predictor features, production-log synthesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, Sequence

import numpy as np

from repro.sim.bandwidth import BandwidthTrace
from repro.sim.player import PlayerEnvironment, SegmentResult
from repro.sim.video import BitrateLadder, Video


@dataclass(frozen=True)
class ABRContext:
    """Snapshot handed to an ABR algorithm before each segment download."""

    segment_index: int
    buffer: float
    buffer_cap: float
    last_level: int | None
    throughput_history_kbps: tuple[float, ...]
    next_segment_sizes_kbit: tuple[float, ...]
    ladder: BitrateLadder
    segment_duration: float
    bandwidth_mean_kbps: float
    bandwidth_std_kbps: float

    @property
    def estimated_bandwidth_kbps(self) -> float:
        """Plain mean-of-window bandwidth estimate (kbps)."""
        return self.bandwidth_mean_kbps


class ABRPolicy(Protocol):
    """Minimal interface an ABR algorithm must expose to the session engine."""

    def select_level(self, context: ABRContext) -> int:
        """Return the ladder level to download next."""
        ...

    def reset(self) -> None:
        """Clear any per-session internal state."""
        ...


@dataclass(frozen=True)
class ExitObservation:
    """What a user exit model sees after each segment has played."""

    segment_index: int
    level: int
    previous_level: int | None
    bitrate_kbps: float
    stall_time: float
    cumulative_stall_time: float
    stall_count: int
    watch_time: float
    buffer: float
    segments_since_last_stall: int
    throughput_kbps: float

    @property
    def switch_magnitude(self) -> int:
        """Signed level change relative to the previous segment (0 if first)."""
        if self.previous_level is None:
            return 0
        return self.level - self.previous_level


class ExitModel(Protocol):
    """Minimal interface of a user exit/engagement model."""

    def exit_probability(self, observation: ExitObservation) -> float:
        """Probability of abandoning the video after this segment."""
        ...

    def reset(self) -> None:
        """Clear any per-session internal state."""
        ...


@dataclass(frozen=True)
class SegmentRecord:
    """Per-segment entry of a :class:`PlaybackTrace`."""

    segment_index: int
    level: int
    bitrate_kbps: float
    size_kbit: float
    bandwidth_kbps: float
    download_time: float
    stall_time: float
    wait_time: float
    buffer_before: float
    buffer_after: float
    watch_time: float
    cumulative_stall_time: float
    stall_count: int
    exit_probability: float
    exited: bool


#: Column layout of the cached per-record array of :class:`PlaybackTrace`.
_COL_STALL, _COL_BITRATE, _COL_LEVEL, _COL_CUM_STALL, _COL_EXITED = range(5)


@dataclass
class PlaybackTrace:
    """Full record of one playback session."""

    user_id: str = "user"
    video_duration: float = 0.0
    segment_duration: float = 0.0
    trace_name: str = ""
    records: list[SegmentRecord] = field(default_factory=list)
    exited_early: bool = False
    #: Lazily built (n, 5) array of per-record aggregates; rebuilt whenever the
    #: number of records changes (records are append-only in practice).
    _record_cache: np.ndarray | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.records)

    def record_array(self) -> np.ndarray:
        """Cached (n, 5) array: stall time, bitrate, level, cumulative stall, exited.

        The aggregate properties below (and the analytics inner loops) all read
        from this single array instead of rebuilding Python lists per access.
        The cache is invalidated by length, which covers the append-only way
        the session engine grows a trace.
        """
        if self._record_cache is None or self._record_cache.shape[0] != len(self.records):
            self._record_cache = np.asarray(
                [
                    (
                        r.stall_time,
                        r.bitrate_kbps,
                        float(r.level),
                        r.cumulative_stall_time,
                        float(r.exited),
                    )
                    for r in self.records
                ],
                dtype=float,
            ).reshape(len(self.records), 5)
        return self._record_cache

    @property
    def watch_time(self) -> float:
        """Seconds of video actually played."""
        return len(self.records) * self.segment_duration

    @property
    def completed(self) -> bool:
        """True when the full video was watched without an early exit."""
        return not self.exited_early and self.watch_time >= self.video_duration - 1e-9

    @property
    def completion_ratio(self) -> float:
        """Fraction of the video watched (0 for an empty trace)."""
        if self.video_duration <= 0:
            return 0.0
        return min(self.watch_time / self.video_duration, 1.0)

    @property
    def total_stall_time(self) -> float:
        """Total stall time (seconds)."""
        return float(np.sum(self.record_array()[:, _COL_STALL]))

    @property
    def stall_count(self) -> int:
        """Number of stall events."""
        return int(np.count_nonzero(self.record_array()[:, _COL_STALL] > 1e-12))

    @property
    def mean_bitrate_kbps(self) -> float:
        """Mean selected bitrate (kbps), 0 for an empty trace."""
        if not self.records:
            return 0.0
        return float(np.mean(self.record_array()[:, _COL_BITRATE]))

    @property
    def bitrates_kbps(self) -> np.ndarray:
        """Vector of selected bitrates."""
        return self.record_array()[:, _COL_BITRATE].copy()

    @property
    def levels(self) -> np.ndarray:
        """Vector of selected ladder levels."""
        return self.record_array()[:, _COL_LEVEL].astype(int)

    @property
    def num_switches(self) -> int:
        """Number of quality switches."""
        levels = self.record_array()[:, _COL_LEVEL]
        if levels.size < 2:
            return 0
        return int(np.count_nonzero(np.diff(levels)))

    @property
    def stall_times(self) -> np.ndarray:
        """Per-segment stall time vector."""
        return self.record_array()[:, _COL_STALL].copy()

    @property
    def cumulative_stall_times(self) -> np.ndarray:
        """Per-segment cumulative stall time vector."""
        return self.record_array()[:, _COL_CUM_STALL].copy()

    @property
    def exited_flags(self) -> np.ndarray:
        """Per-segment exit indicator vector (0/1 floats)."""
        return self.record_array()[:, _COL_EXITED].copy()


@dataclass(frozen=True)
class SessionConfig:
    """Knobs of a playback session."""

    start_level: int = 0
    initial_buffer: float = 0.0
    rtt: float = 0.08
    base_buffer_cap: float = 12.0
    max_segments: int | None = None


class PlaybackSession:
    """Run ABR + player + (optional) user exit model over a bandwidth trace."""

    def __init__(self, config: SessionConfig | None = None) -> None:
        self.config = config or SessionConfig()

    def run(
        self,
        abr: ABRPolicy,
        video: Video,
        trace: BandwidthTrace,
        exit_model: ExitModel | None = None,
        rng: np.random.Generator | None = None,
        user_id: str = "user",
    ) -> PlaybackTrace:
        """Play ``video`` over ``trace`` with ``abr`` deciding quality levels.

        When ``exit_model`` is given, the session may terminate early with an
        exit event; exit decisions are drawn with ``rng`` (a fresh default RNG
        is created when omitted, which makes deterministic rule-based exit
        models reproducible regardless).
        """
        rng = rng or np.random.default_rng(0)
        abr.reset()
        if exit_model is not None:
            exit_model.reset()

        player = PlayerEnvironment(
            video=video,
            rtt=self.config.rtt,
            initial_buffer=self.config.initial_buffer,
            base_buffer_cap=self.config.base_buffer_cap,
        )
        playback = PlaybackTrace(
            user_id=user_id,
            video_duration=video.duration,
            segment_duration=video.segment_duration,
            trace_name=trace.name,
        )

        max_segments = video.num_segments
        if self.config.max_segments is not None:
            max_segments = min(max_segments, self.config.max_segments)

        throughput_history: list[float] = []
        last_level: int | None = None
        cumulative_stall = 0.0
        stall_count = 0
        segments_since_stall = 0
        # Hoisted per-video constants: the ladder, level count and segment
        # duration are invariant across the loop, and the per-segment size
        # tuples are cached on the video itself.
        ladder = video.ladder
        num_levels = ladder.num_levels
        segment_duration = video.segment_duration
        bandwidth_model = player.bandwidth_model

        for k in range(max_segments):
            context = ABRContext(
                segment_index=k,
                buffer=player.buffer,
                buffer_cap=player.buffer_cap,
                last_level=last_level,
                throughput_history_kbps=tuple(throughput_history[-8:]),
                next_segment_sizes_kbit=video.sizes_tuple(k),
                ladder=ladder,
                segment_duration=segment_duration,
                bandwidth_mean_kbps=bandwidth_model.mean,
                bandwidth_std_kbps=bandwidth_model.std,
            )
            level = int(abr.select_level(context))
            if not 0 <= level < num_levels:
                raise ValueError(
                    f"ABR returned invalid level {level} for a "
                    f"{num_levels}-level ladder"
                )
            bandwidth = trace.bandwidth_at(k)
            result: SegmentResult = player.step(level, bandwidth)

            cumulative_stall += result.stall_time
            if result.stall_time > 1e-12:
                stall_count += 1
                segments_since_stall = 0
            else:
                segments_since_stall += 1
            throughput_history.append(result.throughput_kbps)

            watch_time = (k + 1) * segment_duration
            exit_probability = 0.0
            exited = False
            if exit_model is not None:
                observation = ExitObservation(
                    segment_index=k,
                    level=level,
                    previous_level=last_level,
                    bitrate_kbps=result.bitrate_kbps,
                    stall_time=result.stall_time,
                    cumulative_stall_time=cumulative_stall,
                    stall_count=stall_count,
                    watch_time=watch_time,
                    buffer=result.buffer_after,
                    segments_since_last_stall=segments_since_stall,
                    throughput_kbps=result.throughput_kbps,
                )
                exit_probability = float(exit_model.exit_probability(observation))
                if not 0.0 <= exit_probability <= 1.0:
                    raise ValueError("exit probability must be in [0, 1]")
                exited = bool(rng.random() < exit_probability)

            playback.records.append(
                SegmentRecord(
                    segment_index=k,
                    level=level,
                    bitrate_kbps=result.bitrate_kbps,
                    size_kbit=result.size_kbit,
                    bandwidth_kbps=result.bandwidth_kbps,
                    download_time=result.download_time,
                    stall_time=result.stall_time,
                    wait_time=result.wait_time,
                    buffer_before=result.buffer_before,
                    buffer_after=result.buffer_after,
                    watch_time=watch_time,
                    cumulative_stall_time=cumulative_stall,
                    stall_count=stall_count,
                    exit_probability=exit_probability,
                    exited=exited,
                )
            )
            observe = getattr(abr, "observe", None)
            if observe is not None:
                # Feedback hook used by LingXi-style wrappers that track
                # per-segment outcomes (stalls, exits) during live playback.
                observe(playback.records[-1])
            last_level = level
            if exited:
                playback.exited_early = True
                break

        return playback

    def run_many(
        self,
        abr: ABRPolicy,
        videos: Sequence[Video],
        traces: Sequence[BandwidthTrace],
        exit_model: ExitModel | None = None,
        rng: np.random.Generator | None = None,
        user_id: str = "user",
    ) -> list[PlaybackTrace]:
        """Run one session per (video, trace) pair, zipped and cycled."""
        rng = rng or np.random.default_rng(0)
        n = max(len(videos), len(traces))
        results = []
        for i in range(n):
            results.append(
                self.run(
                    abr,
                    videos[i % len(videos)],
                    traces[i % len(traces)],
                    exit_model=exit_model,
                    rng=rng,
                    user_id=user_id,
                )
            )
        return results
