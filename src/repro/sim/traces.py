"""Trace set generation and file I/O.

The paper's pre-deployment simulation (§5.2) runs over a set of online
bandwidth traces; we provide a synthetic but regime-matched equivalent: a
bundle of traces drawn from the population mixture of
:class:`~repro.sim.bandwidth.MixedTraceGenerator` plus explicit low-bandwidth
long-tail traces, saved/loaded as plain JSON so experiments can pin a fixed
trace set.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.sim.bandwidth import (
    BandwidthTrace,
    LowBandwidthTraceGenerator,
    MixedTraceGenerator,
)


def generate_trace_set(
    num_traces: int = 40,
    length: int = 200,
    low_bandwidth_fraction: float = 0.3,
    seed: int = 0,
) -> list[BandwidthTrace]:
    """Generate a mixed trace set matching the paper's bandwidth regimes.

    ``low_bandwidth_fraction`` of the traces come from the <2000 kbps long
    tail (the users Figure 13 focuses on); the rest follow the platform-wide
    log-normal mixture of Figure 2(a).
    """
    if num_traces <= 0:
        raise ValueError("num_traces must be positive")
    if not 0 <= low_bandwidth_fraction <= 1:
        raise ValueError("low_bandwidth_fraction must be in [0, 1]")
    rng = np.random.default_rng(seed)
    num_low = int(round(num_traces * low_bandwidth_fraction))
    traces: list[BandwidthTrace] = []
    low_generator = LowBandwidthTraceGenerator()
    mixed_generator = MixedTraceGenerator()
    for i in range(num_low):
        traces.append(low_generator.generate(length, rng, name=f"low_{i}"))
    for i in range(num_traces - num_low):
        traces.append(mixed_generator.generate(length, rng, name=f"mixed_{i}"))
    return traces


def save_traces(traces: Sequence[BandwidthTrace], path: str | Path) -> None:
    """Write a trace set to a JSON file."""
    payload = [
        {"name": trace.name, "values_kbps": list(trace.values_kbps)} for trace in traces
    ]
    Path(path).write_text(json.dumps(payload))


def load_traces(path: str | Path) -> list[BandwidthTrace]:
    """Load a trace set previously written by :func:`save_traces`."""
    payload = json.loads(Path(path).read_text())
    return [
        BandwidthTrace(values_kbps=tuple(entry["values_kbps"]), name=entry["name"])
        for entry in payload
    ]
