"""Figure 14 — relationship between stall exit rate and the ABR parameter.

For each day of the AB phase, every user contributes one point: their
stall-induced exit rate (fraction of stall events followed by an exit at the
current or next segment) and the ``beta`` LingXi assigned them that day.  The
paper reports consistently negative Pearson correlations (−0.23 to −0.52):
users who bail out of stalls quickly get conservative parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analytics.correlation import linear_trend, pearson_correlation
from repro.experiments import fig12_ab_test
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate


@dataclass
class DailyCorrelation:
    """One day's scatter of (stall exit rate, parameter) plus its statistics."""

    day: int
    exit_rates: list[float]
    parameters: list[float]
    correlation: float
    slope: float
    intercept: float


@dataclass
class Fig14Result:
    """Per-day correlations between stall exit rate and assigned parameter."""

    daily: list[DailyCorrelation]

    @property
    def correlations(self) -> list[float]:
        """Pearson correlation per day."""
        return [d.correlation for d in self.daily]

    @property
    def all_negative(self) -> bool:
        """True when every day with enough data shows a negative correlation."""
        defined = [c for c in self.correlations if c == c]
        return bool(defined) and all(c < 0 for c in defined)


def run(
    substrate: Substrate | None = None,
    ab_result: fig12_ab_test.Fig12Result | None = None,
    min_stall_events: int = 2,
    **fig12_kwargs,
) -> Fig14Result:
    """Correlate per-user stall exit rates with their assigned parameters."""
    substrate = substrate or build_substrate(SubstrateConfig())
    ab_result = ab_result or fig12_ab_test.run(substrate=substrate, **fig12_kwargs)
    treatment = ab_result.treatment_post

    daily: list[DailyCorrelation] = []
    for day in treatment.logs.days():
        day_logs = treatment.logs.filter(lambda s, d=day: s.day == d)
        exit_rates_by_user = day_logs.stall_exit_rate_by_user(min_stall_events=min_stall_events)
        exit_rates: list[float] = []
        parameters: list[float] = []
        for user, exit_rate in exit_rates_by_user.items():
            parameter = treatment.daily_parameters.get((user, day))
            if parameter is None:
                continue
            exit_rates.append(exit_rate)
            parameters.append(parameter)
        if len(exit_rates) >= 3:
            correlation = pearson_correlation(exit_rates, parameters)
            slope, intercept = linear_trend(exit_rates, parameters)
        else:
            correlation, slope, intercept = float("nan"), float("nan"), float("nan")
        daily.append(
            DailyCorrelation(
                day=day,
                exit_rates=exit_rates,
                parameters=parameters,
                correlation=correlation,
                slope=slope,
                intercept=intercept,
            )
        )
    return Fig14Result(daily=daily)
