"""Figure 10 — pre-deployment simulation evaluation.

Video completion rate of the baseline ABR under fixed ``QoE_lin`` parameters
(a sweep over stall and switch weights) versus LingXi with a fixed candidate
set (``L(F)``) and LingXi with online Bayesian optimization (``L(B)``), under
two user-engagement models: deterministic rule-based users (exit thresholds on
stall time and stall count) and data-driven per-user exit models fitted from
engagement histories.  The expected shape: fixed parameters barely move the
completion rate, ``L(F)`` beats the best fixed setting, ``L(B)`` beats
``L(F)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Sequence

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.abr.hyb import HYB
from repro.abr.pensieve import Pensieve, PensieveTrainer
from repro.abr.robust_mpc import RobustMPC
from repro.core.controller import ControllerConfig, LingXiABR, LingXiController
from repro.core.monte_carlo import MonteCarloConfig
from repro.core.parameter_space import ParameterSpace
from repro.core.triggers import TriggerPolicy
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate
from repro.sim.backend import SessionSpec, get_backend
from repro.sim.bandwidth import BandwidthTrace
from repro.sim.session import ExitModel, PlaybackSession, SessionConfig
from repro.sim.traces import generate_trace_set
from repro.sim.video import Video
from repro.users.engagement import (
    DataDrivenUser,
    QoSAwareExitModel,
    RuleBasedUser,
    features_from_segment_records,
    fit_data_driven_user,
)


@dataclass
class Fig10Result:
    """Completion rates for fixed parameters and the two LingXi variants."""

    baseline: str
    user_modeling: str
    completion_by_fixed: dict[tuple[float, float], float] = field(default_factory=dict)
    completion_lingxi_fixed: float | None = None
    completion_lingxi_bayesian: float | None = None
    #: Mean chosen stall parameter per user key (used by the Figure 11 heatmap).
    chosen_stall_parameter: dict[object, float] = field(default_factory=dict)

    @property
    def best_fixed(self) -> float:
        """Best completion rate over the fixed-parameter sweep."""
        if not self.completion_by_fixed:
            return float("nan")
        return max(self.completion_by_fixed.values())

    @property
    def mean_fixed(self) -> float:
        """Mean completion rate over the fixed-parameter sweep."""
        if not self.completion_by_fixed:
            return float("nan")
        return float(np.mean(list(self.completion_by_fixed.values())))


def _rule_based_users(
    thresholds: Sequence[float],
) -> dict[tuple[float, int], ExitModel]:
    users: dict[tuple[float, int], ExitModel] = {}
    for time_threshold, count_threshold in product(thresholds, thresholds):
        users[(float(time_threshold), int(count_threshold))] = RuleBasedUser(
            stall_time_threshold_s=float(time_threshold),
            stall_count_threshold=int(count_threshold),
        )
    return users


def _data_driven_users(
    substrate: Substrate,
    num_users: int,
    traces: Sequence[BandwidthTrace],
    video: Video,
    seed: int,
) -> dict[str, ExitModel]:
    """Fit per-user logistic exit models from two weeks of simulated engagement."""
    rng = np.random.default_rng(seed)
    engine = PlaybackSession(SessionConfig())
    users: dict[str, ExitModel] = {}
    # Active users: prefer those with moderate bandwidth so stalls occur.
    sorted_profiles = sorted(
        substrate.population, key=lambda p: p.mean_bandwidth_kbps
    )
    for profile in sorted_profiles[: num_users]:
        behavioural: QoSAwareExitModel = profile.exit_model()
        records = []
        for i in range(6):
            trace = traces[i % len(traces)]
            playback = engine.run(
                RobustMPC(), video, trace, exit_model=behavioural, rng=rng, user_id=profile.user_id
            )
            records.extend(playback.records)
        features, labels = features_from_segment_records(records)
        if labels.sum() == 0:
            labels = labels.copy()
            labels[-1] = 1  # avoid degenerate all-negative fits
        users[profile.user_id] = fit_data_driven_user(features, labels)
    return users


def _make_baseline(
    baseline: str,
    traces: Sequence[BandwidthTrace],
    video: Video,
    seed: int,
    pensieve_training_iterations: int,
) -> Callable[[QoEParameters], ABRAlgorithm]:
    """Return a factory producing a baseline ABR initialised with given parameters."""
    if baseline == "robust_mpc":
        return lambda parameters: RobustMPC(parameters=parameters, horizon=3)
    if baseline == "hyb":
        return lambda parameters: HYB(parameters=parameters)
    if baseline == "pensieve":
        agent = Pensieve(num_levels=video.ladder.num_levels, seed=seed)
        trainer = PensieveTrainer(
            agent, videos=[video], traces=list(traces), seed=seed
        )
        trainer.train(iterations=pensieve_training_iterations, episodes_per_iteration=3)

        def factory(parameters: QoEParameters) -> ABRAlgorithm:
            agent.set_parameters(parameters)
            agent.exploration = False
            return agent

        return factory
    raise ValueError("baseline must be 'robust_mpc', 'pensieve' or 'hyb'")


def _completion_rate(
    abr: ABRAlgorithm,
    video: Video,
    traces: Sequence[BandwidthTrace],
    exit_model: ExitModel,
    rng: np.random.Generator,
    repeats: int,
    backend: str = "scalar",
) -> float:
    if backend != "scalar":
        # Spec-batched path: each (repeat, trace) session gets its own RNG
        # substream derived from the driver RNG, and the whole sweep runs as
        # one backend batch (vectorized for HYB/BBA/throughput sessions,
        # sequential fallback for MPC/Pensieve/LingXi-wrapped ones).
        seeds = np.random.SeedSequence(int(rng.integers(2**31 - 1))).spawn(
            repeats * len(traces)
        )
        specs = [
            SessionSpec(
                abr=abr,
                video=video,
                trace=traces[index % len(traces)],
                exit_model=exit_model,
                seed=seeds[index],
            )
            for index in range(repeats * len(traces))
        ]
        playbacks = get_backend(backend).run_batch(specs, SessionConfig())
        return float(np.mean([float(playback.completed) for playback in playbacks]))
    engine = PlaybackSession(SessionConfig())
    completions = []
    for repeat in range(repeats):
        for trace in traces:
            playback = engine.run(abr, video, trace, exit_model=exit_model, rng=rng)
            completions.append(float(playback.completed))
    return float(np.mean(completions))


def run(
    baseline: str = "robust_mpc",
    user_modeling: str = "rule",
    substrate: Substrate | None = None,
    stall_parameters: Sequence[float] = (1.0, 10.0, 20.0),
    switch_parameters: Sequence[float] = (0.0, 2.0),
    rule_thresholds: Sequence[float] = (2.0, 5.0, 8.0),
    num_data_driven_users: int = 4,
    num_traces: int = 3,
    trace_length: int = 80,
    repeats: int = 2,
    include_fixed: bool = True,
    include_lingxi_fixed: bool = True,
    include_lingxi_bayesian: bool = True,
    pensieve_training_iterations: int = 15,
    seed: int = 0,
    backend: str | None = None,
) -> Fig10Result:
    """Run the pre-deployment simulation study (scaled-down defaults).

    The paper sweeps stall parameters 1–20, switch parameters 0–4, and 64
    rule-based engagement rules; the defaults here keep the same structure on
    a laptop-sized grid.  Pass larger sequences to approach the paper's scale.
    ``backend`` selects the completion-sweep simulation backend (defaults to
    the substrate's configured backend).
    """
    if user_modeling not in ("rule", "data"):
        raise ValueError("user_modeling must be 'rule' or 'data'")
    substrate = substrate or build_substrate(SubstrateConfig())
    backend = backend or getattr(substrate.config, "backend", "scalar")
    rng = np.random.default_rng(seed)
    # Low-bandwidth-heavy trace set: completion is limited by stall-driven exits.
    traces = generate_trace_set(
        num_traces=num_traces, length=trace_length, low_bandwidth_fraction=0.7, seed=seed
    )
    video = Video(ladder=substrate.library.ladder, num_segments=30, seed=seed + 1)
    baseline_factory = _make_baseline(
        baseline, traces, video, seed, pensieve_training_iterations
    )

    if user_modeling == "rule":
        users: dict[object, ExitModel] = dict(_rule_based_users(rule_thresholds))
    else:
        users = dict(
            _data_driven_users(substrate, num_data_driven_users, traces, video, seed)
        )

    result = Fig10Result(baseline=baseline, user_modeling=user_modeling)

    # Fixed-parameter sweep: for explicit-QoE baselines the swept objective is
    # (stall penalty, switch penalty); for HYB (implicit objective) the swept
    # knob is its aggressiveness beta.
    if baseline == "hyb":
        fixed_candidates = {
            (float(beta), 0.0): QoEParameters(beta=float(beta))
            for beta in (0.5, 0.7, 0.9)
        }
        space = ParameterSpace.for_hyb()
    else:
        fixed_candidates = {
            (float(stall), float(switch)): QoEParameters(
                stall_penalty=float(stall), switch_penalty=float(switch)
            )
            for stall in stall_parameters
            for switch in switch_parameters
        }
        space = ParameterSpace.for_qoe_lin(
            stall_range=(min(stall_parameters), max(stall_parameters)),
            switch_range=(min(switch_parameters), max(max(switch_parameters), 1.0)),
        )

    if include_fixed:
        for key, parameters in fixed_candidates.items():
            rates = [
                _completion_rate(
                    baseline_factory(parameters),
                    video,
                    traces,
                    exit_model,
                    rng,
                    repeats,
                    backend=backend,
                )
                for exit_model in users.values()
            ]
            result.completion_by_fixed[key] = float(np.mean(rates))

    def run_lingxi(mode: str) -> tuple[float, dict[object, float]]:
        completions = []
        chosen: dict[object, float] = {}
        for user_key, exit_model in users.items():
            controller = LingXiController(
                parameter_space=space,
                predictor=substrate.predictor,
                # T_sample follows the paper: the average online video length.
                monte_carlo=MonteCarloConfig(
                    num_samples=3, max_sample_duration_s=video.duration, seed=seed
                ),
                trigger=TriggerPolicy(stall_count_threshold=2),
                config=ControllerConfig(mode=mode, max_sample_times=4, seed=seed),
            )
            wrapped = LingXiABR(baseline_factory(QoEParameters()), controller)
            completions.append(
                _completion_rate(
                    wrapped, video, traces, exit_model, rng, repeats, backend=backend
                )
            )
            tracked_field = space.names[0]
            if controller.history:
                chosen[user_key] = float(
                    np.mean(
                        [getattr(e.chosen_parameters, tracked_field) for e in controller.history]
                    )
                )
            else:
                chosen[user_key] = float(getattr(controller.best_parameters, tracked_field))
        return float(np.mean(completions)), chosen

    if include_lingxi_fixed:
        result.completion_lingxi_fixed, _ = run_lingxi("fixed")
    if include_lingxi_bayesian:
        result.completion_lingxi_bayesian, result.chosen_stall_parameter = run_lingxi("bayesian")
    return result
