"""Figure 11 — heatmap of chosen stall parameters under different sensitivities.

For rule-based users on a (stall-count threshold × stall-time threshold)
grid, LingXi's average chosen stall parameter should decrease (darker cells
in the paper) as the user's exit thresholds increase — i.e. LingXi perceives
tolerant users as tolerant and relaxes the stall penalty for them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import fig10_simulation
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate


@dataclass
class Fig11Result:
    """Heatmap matrix of mean chosen stall parameters per baseline."""

    thresholds: list[float]
    #: baseline name -> matrix indexed [time_threshold_index, count_threshold_index]
    heatmaps: dict[str, np.ndarray]

    def tolerance_gradient(self, baseline: str) -> float:
        """Chosen stall parameter at the least-tolerant corner minus the most-tolerant one.

        Positive values mean LingXi assigns larger stall penalties to users who
        exit quickly — the paper's expected direction.
        """
        matrix = self.heatmaps[baseline]
        return float(matrix[0, 0] - matrix[-1, -1])


def run(
    substrate: Substrate | None = None,
    baselines: tuple[str, ...] = ("robust_mpc",),
    rule_thresholds: tuple[float, ...] = (2.0, 5.0, 8.0),
    seed: int = 0,
    **fig10_kwargs,
) -> Fig11Result:
    """Build the chosen-stall-parameter heatmap from LingXi(B) runs."""
    substrate = substrate or build_substrate(SubstrateConfig())
    heatmaps: dict[str, np.ndarray] = {}
    thresholds = list(rule_thresholds)
    for baseline in baselines:
        outcome = fig10_simulation.run(
            baseline=baseline,
            user_modeling="rule",
            substrate=substrate,
            rule_thresholds=rule_thresholds,
            include_fixed=False,
            include_lingxi_fixed=False,
            include_lingxi_bayesian=True,
            seed=seed,
            **fig10_kwargs,
        )
        matrix = np.full((len(thresholds), len(thresholds)), np.nan)
        for (time_threshold, count_threshold), value in outcome.chosen_stall_parameter.items():
            i = thresholds.index(float(time_threshold))
            j = thresholds.index(float(count_threshold))
            matrix[i, j] = value
        heatmaps[baseline] = matrix
    return Fig11Result(thresholds=thresholds, heatmaps=heatmaps)
