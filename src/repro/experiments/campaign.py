"""Multi-day campaign simulation with persistent per-user ABR instances.

The A/B experiments of §5.3–§5.5 need users to keep their algorithm state
across sessions and days (LingXi's long-term state is what personalisation is
built on), which the one-shot log generator does not provide.  The campaign
runner keeps one ABR instance per user for the whole campaign, records the
deployed parameter value at the end of every user-day, and returns the logs
in the same :class:`~repro.analytics.logs.LogCollection` format as everything
else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.abr.base import ABRAlgorithm
from repro.analytics.logs import LogCollection, SessionLog
from repro.sim.backend import SessionSpec, get_backend
from repro.sim.session import PlaybackSession, SessionConfig
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation, UserProfile


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of a simulated multi-day campaign."""

    days: int = 5
    sessions_per_user_per_day: int = 4
    trace_length: int = 150
    seed: int = 0
    start_day: int = 0

    def __post_init__(self) -> None:
        if self.days <= 0 or self.sessions_per_user_per_day <= 0:
            raise ValueError("days and sessions_per_user_per_day must be positive")


@dataclass
class CampaignResult:
    """Logs plus per-user-day deployed parameter values."""

    logs: LogCollection
    #: Parameter value (by default HYB's beta) at the end of each (user, day).
    daily_parameters: dict[tuple[str, int], float]
    #: The persistent per-user ABR instances (inspect e.g. LingXi controllers).
    abrs: dict[str, ABRAlgorithm] = field(default_factory=dict)


def run_campaign(
    population: UserPopulation,
    library: VideoLibrary,
    abr_factory: Callable[[UserProfile], ABRAlgorithm],
    config: CampaignConfig | None = None,
    parameter_getter: Callable[[ABRAlgorithm], float] | None = None,
    abrs: dict[str, ABRAlgorithm] | None = None,
    backend: str = "scalar",
) -> CampaignResult:
    """Simulate ``config.days`` days of playback for every user.

    ``abr_factory`` is called once per user (unless a pre-existing instance is
    supplied via ``abrs``, which allows chaining an AA phase into an AB phase
    with the same user state).  ``parameter_getter`` extracts the tracked
    parameter from an ABR (defaults to ``beta``).

    ``backend`` selects the simulation backend.  ``"scalar"`` is the
    historical loop (one shared RNG threading through every session); any
    other registered backend runs each day's sessions as one
    :class:`~repro.sim.backend.SessionSpec` batch with per-session RNG
    substreams — vectorizable users (e.g. plain HYB during AA phases) then
    advance in lockstep, while stateful LingXi users fall back to sequential
    execution inside the same batch.
    """
    config = config or CampaignConfig()
    parameter_getter = parameter_getter or (lambda abr: abr.parameters.beta)
    rng = np.random.default_rng(config.seed)
    sim_backend = None if backend == "scalar" else get_backend(backend)
    seed_root = np.random.SeedSequence(config.seed)
    session_engine = PlaybackSession(SessionConfig()) if sim_backend is None else None
    abrs = abrs if abrs is not None else {}

    sessions: list[SessionLog] = []
    daily_parameters: dict[tuple[str, int], float] = {}
    day_population = population
    for day_offset in range(config.days):
        day = config.start_day + day_offset
        specs: list[SessionSpec] = []
        metas: list[tuple[str, int, int, float]] = []
        for profile in day_population:
            abr = abrs.get(profile.user_id)
            if abr is None:
                abr = abr_factory(profile)
                abrs[profile.user_id] = abr
            exit_model = profile.exit_model()
            trace = profile.bandwidth_trace(config.trace_length, rng)
            for session_index in range(config.sessions_per_user_per_day):
                video = library.sample(rng)
                if sim_backend is not None:
                    specs.append(
                        SessionSpec(
                            abr=abr,
                            video=video,
                            trace=trace,
                            exit_model=exit_model,
                            seed=seed_root.spawn(1)[0],
                            user_id=profile.user_id,
                        )
                    )
                    metas.append(
                        (
                            profile.user_id,
                            day,
                            session_index,
                            profile.mean_bandwidth_kbps,
                        )
                    )
                    continue
                playback = session_engine.run(
                    abr,
                    video,
                    trace,
                    exit_model=exit_model,
                    rng=rng,
                    user_id=profile.user_id,
                )
                sessions.append(
                    SessionLog(
                        user_id=profile.user_id,
                        day=day,
                        session_index=session_index,
                        trace=playback,
                        mean_bandwidth_kbps=profile.mean_bandwidth_kbps,
                    )
                )
        if sim_backend is not None:
            playbacks = sim_backend.run_batch(specs, SessionConfig())
            sessions.extend(SessionLog.zip_with_playbacks(metas, playbacks))
        for profile in day_population:
            daily_parameters[(profile.user_id, day)] = float(
                parameter_getter(abrs[profile.user_id])
            )
        day_population = day_population.next_day(rng)
    return CampaignResult(
        logs=LogCollection(sessions), daily_parameters=daily_parameters, abrs=abrs
    )
