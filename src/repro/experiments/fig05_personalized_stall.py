"""Figure 5 — personalized perception of stall time.

(a) CDF of per-user average tolerable stall time, plus the distribution of
its day-to-day change.  (b) Example per-user exit-rate-vs-stall-time response
curves illustrating the sensitive / sensitive-to-threshold / insensitive
archetypes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    Substrate,
    SubstrateConfig,
    build_substrate,
    empirical_cdf,
)
from repro.users.perception import SensitivityArchetype


@dataclass
class Fig05Result:
    """Tolerance CDFs and example per-archetype response curves."""

    tolerance_sorted_s: np.ndarray
    tolerance_cdf: np.ndarray
    day_difference_sorted_s: np.ndarray
    day_difference_cdf: np.ndarray
    stall_grid_s: np.ndarray
    example_curves: dict[str, np.ndarray]

    @property
    def fraction_low_tolerance(self) -> float:
        """Fraction of users with tolerance below 1 second."""
        return float(np.mean(self.tolerance_sorted_s < 1.0))

    @property
    def fraction_above_5s(self) -> float:
        """Fraction of users tolerating more than 5 seconds."""
        return float(np.mean(self.tolerance_sorted_s > 5.0))


def run(substrate: Substrate | None = None, stall_grid_max_s: float = 8.0) -> Fig05Result:
    """Compute tolerance distributions and example response curves."""
    substrate = substrate or build_substrate(SubstrateConfig())
    logs = substrate.logs
    days = logs.days()

    tolerances = logs.tolerable_stall_times()
    tolerance_values = np.asarray(list(tolerances.values()), dtype=float)
    if tolerance_values.size == 0:
        tolerance_values = np.asarray([0.0])
    tol_sorted, tol_cdf = empirical_cdf(tolerance_values)

    # Day-to-day difference of the per-user tolerance between the first two days.
    differences: list[float] = []
    if len(days) >= 2:
        first = logs.filter(lambda s: s.day == days[0]).tolerable_stall_times()
        second = logs.filter(lambda s: s.day == days[1]).tolerable_stall_times()
        for user, value in first.items():
            if user in second:
                differences.append(abs(second[user] - value))
    if not differences:
        differences = [0.0]
    diff_sorted, diff_cdf = empirical_cdf(np.asarray(differences))

    # Example response curves straight from the population's perception profiles.
    grid = np.linspace(0.0, stall_grid_max_s, 33)
    examples: dict[str, np.ndarray] = {}
    for archetype in SensitivityArchetype:
        profile = next(
            (p.sensitivity for p in substrate.population if p.sensitivity.archetype is archetype),
            None,
        )
        if profile is None:
            continue
        examples[archetype.value] = np.asarray(
            [profile.stall_exit_probability(s) if s > 0 else 0.0 for s in grid]
        )

    return Fig05Result(
        tolerance_sorted_s=tol_sorted,
        tolerance_cdf=tol_cdf,
        day_difference_sorted_s=diff_sorted,
        day_difference_cdf=diff_cdf,
        stall_grid_s=grid,
        example_curves=examples,
    )
