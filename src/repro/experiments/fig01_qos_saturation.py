"""Figure 1 — QoS metrics meet their limits.

Three fixed-objective variants of the production algorithm are A/B-tested for
five days: ``Alg1`` prioritises stall reduction (large stall penalty),
``Alg2`` is the balanced baseline, ``Alg3`` prioritises video quality (small
stall penalty).  The figure reports normalized daily bitrate, stall time,
``QoE_lin`` and overall watch time; the reproduction's expected shape is the
paper's: Alg3 wins bitrate, Alg1 wins stall time and ``QoE_lin``, and watch
time shows no consistent winner.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.abr.base import QoEParameters
from repro.abr.robust_mpc import RobustMPC
from repro.analytics.metrics import aggregate_daily_metrics
from repro.datasets import LogGenerationConfig, generate_production_logs
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate

#: The three optimization preferences of the experiment.
ALGORITHM_VARIANTS: dict[str, QoEParameters] = {
    "Alg1": QoEParameters(stall_penalty=12.0, switch_penalty=1.0),  # stall-averse
    "Alg2": QoEParameters(stall_penalty=4.3, switch_penalty=1.0),  # production baseline
    "Alg3": QoEParameters(stall_penalty=1.0, switch_penalty=0.5),  # quality-leaning
}


@dataclass
class Fig01Result:
    """Normalized daily series per algorithm (reference = Alg2)."""

    days: list[int]
    bitrate: dict[str, list[float]]
    stall_time: dict[str, list[float]]
    qoe_lin: dict[str, list[float]]
    watch_time: dict[str, list[float]]

    def rows(self) -> list[list[object]]:
        """Table rows: one per (algorithm, day)."""
        out: list[list[object]] = []
        for name in self.bitrate:
            for i, day in enumerate(self.days):
                out.append(
                    [
                        name,
                        day + 1,
                        round(self.bitrate[name][i], 4),
                        round(self.stall_time[name][i], 4),
                        round(self.qoe_lin[name][i], 4),
                        round(self.watch_time[name][i], 4),
                    ]
                )
        return out


def run(
    substrate: Substrate | None = None,
    days: int = 5,
    sessions_per_user_per_day: int = 2,
    mpc_horizon: int = 3,
    seed: int = 11,
) -> Fig01Result:
    """Run the three-variant A/B comparison and return normalized series."""
    substrate = substrate or build_substrate(SubstrateConfig())
    per_algorithm: dict[str, list] = {}
    for name, parameters in ALGORITHM_VARIANTS.items():
        logs = generate_production_logs(
            substrate.population,
            substrate.library,
            LogGenerationConfig(
                days=days,
                sessions_per_user_per_day=sessions_per_user_per_day,
                seed=seed,
            ),
            abr_factory=lambda _profile, p=parameters: RobustMPC(
                parameters=p, horizon=mpc_horizon
            ),
        )
        per_algorithm[name] = aggregate_daily_metrics(logs.sessions, group=name)

    reference = per_algorithm["Alg2"]
    day_indices = [row.day for row in reference]

    def normalized(metric: str) -> dict[str, list[float]]:
        ref_values = np.asarray([getattr(row, metric) for row in reference], dtype=float)
        series = {}
        for name, rows in per_algorithm.items():
            values = np.asarray([getattr(row, metric) for row in rows], dtype=float)
            with np.errstate(invalid="ignore", divide="ignore"):
                series[name] = list(np.where(ref_values != 0, values / ref_values, np.nan))
        return series

    return Fig01Result(
        days=day_indices,
        bitrate=normalized("mean_bitrate_kbps"),
        stall_time=normalized("total_stall_time"),
        qoe_lin=normalized("qoe_lin"),
        watch_time=normalized("total_watch_time"),
    )
