"""Per-figure reproduction drivers.

Every module reproduces one figure of the paper's analysis or evaluation and
exposes a ``run(...)`` function with laptop-scale defaults that returns a
plain-data result object; ``benchmarks/`` wraps each one in a
pytest-benchmark target that prints the same rows/series the paper reports.

Index (see DESIGN.md for the full experiment table):

========  =======================================================
Figure 1  ``fig01_qos_saturation``   — QoS metrics meet their limits
Figure 2  ``fig02_opportunities``    — bandwidth / stall-count CDFs
Figure 3  ``fig03_watchtime_qos``    — watch time vs QoS
Figure 4  ``fig04_exit_rate_qos``    — exit rate vs QoS (magnitudes)
Figure 5  ``fig05_personalized_stall`` — per-user stall perception
Figure 8  ``fig08_trigger_tradeoff`` — stall counts vs model recall
Figure 9  ``fig09_predictor``        — predictor across dataset compositions
Figure 10 ``fig10_simulation``       — pre-deployment simulation study
Figure 11 ``fig11_heatmap``          — chosen stall parameter heatmap
Figure 12 ``fig12_ab_test``          — 10-day difference-in-differences A/B
Figure 13 ``fig13_bandwidth_bins``   — per-bandwidth-bin parameters / stalls
Figure 14 ``fig14_exit_rate_vs_param`` — stall exit rate vs parameter
Figure 15 ``fig15_user_trajectories`` — per-user parameter trajectories
Figure 16 ``fig16_longitudinal``      — compounding cross-day A/B campaign
========  =======================================================
"""

from repro.experiments import common

__all__ = ["common"]
