"""Shared scaffolding for the experiment drivers.

All experiments run on the same synthetic substrate: a heterogeneous user
population, a short-video library, a synthetic production-log corpus and a
trained exit-rate predictor.  This module centralises those defaults (and a
tiny in-process cache so benchmark runs do not regenerate the corpus for
every figure).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analytics.logs import LogCollection
from repro.core.exit_predictor import ExitRatePredictor, train_and_evaluate
from repro.core.statistics_model import OverallStatisticsModel
from repro.datasets import (
    DatasetComposition,
    LogGenerationConfig,
    build_exit_dataset,
    generate_production_logs,
)
from repro.net.topology import get_topology
from repro.sim.backend import get_backend
from repro.sim.video import VideoLibrary
from repro.users.population import UserPopulation


@dataclass(frozen=True)
class SubstrateConfig:
    """Shared knobs of the synthetic substrate used by the experiments."""

    num_users: int = 160
    days: int = 2
    sessions_per_user_per_day: int = 4
    num_videos: int = 8
    #: Median of the population bandwidth distribution.  The default keeps
    #: roughly 10–15% of users below the top encoding bitrate, matching the
    #: production picture of Figure 2(a).
    bandwidth_median_kbps: float = 12000.0
    #: Extra log-generation days restricted to bandwidth-constrained users,
    #: used only to enlarge the stall-event training corpus (stalls are rare
    #: platform-wide, exactly as in the paper).
    training_oversample_days: int = 8
    training_oversample_threshold_kbps: float = 4500.0
    seed: int = 0
    #: Simulation backend for substrate log generation and (via the figure
    #: drivers' defaults) the fig10/fig12 campaign loops.  ``"scalar"`` keeps
    #: the historical shared-RNG session loop; ``"vector"`` routes sessions
    #: through the struct-of-arrays backend with per-session RNG substreams.
    backend: str = "scalar"
    #: Shared-bottleneck topology name for substrate log generation: the
    #: synthetic corpus is produced by sessions fair-sharing edge-link
    #: capacity, so its stalls and exits carry emergent congestion.
    #: ``None`` keeps the classic uncoupled traces.
    network: str | None = None

    def __post_init__(self) -> None:
        if self.num_users <= 0 or self.days <= 0:
            raise ValueError("num_users and days must be positive")
        if self.training_oversample_days < 0:
            raise ValueError("training_oversample_days must be non-negative")
        get_backend(self.backend)  # fail fast on unknown backend names
        get_topology(self.network)  # ... and unknown topology names


@dataclass
class Substrate:
    """Population + videos + logs + trained predictor, built once per config."""

    config: SubstrateConfig
    population: UserPopulation
    library: VideoLibrary
    logs: LogCollection
    training_logs: LogCollection
    statistics_model: OverallStatisticsModel
    predictor: ExitRatePredictor


_CACHE: dict[SubstrateConfig, Substrate] = {}


def build_substrate(config: SubstrateConfig | None = None, train_epochs: int = 10) -> Substrate:
    """Build (or fetch from cache) the shared experiment substrate."""
    config = config or SubstrateConfig()
    if config in _CACHE:
        return _CACHE[config]
    population = UserPopulation.generate(
        config.num_users,
        seed=config.seed,
        bandwidth_median_kbps=config.bandwidth_median_kbps,
    )
    library = VideoLibrary(num_videos=config.num_videos, seed=config.seed + 1)
    logs = generate_production_logs(
        population,
        library,
        LogGenerationConfig(
            days=config.days,
            sessions_per_user_per_day=config.sessions_per_user_per_day,
            seed=config.seed + 2,
            backend=config.backend,
            network=config.network,
        ),
    )
    # Stall events are rare platform-wide, so the predictor's training corpus
    # additionally oversamples the bandwidth-constrained long tail (the same
    # users the paper's 100k stall-event entries inevitably come from).
    training_logs = logs
    constrained = population.low_bandwidth_users(config.training_oversample_threshold_kbps)
    if config.training_oversample_days > 0 and constrained:
        extra_logs = generate_production_logs(
            UserPopulation(constrained),
            library,
            LogGenerationConfig(
                days=config.training_oversample_days,
                sessions_per_user_per_day=config.sessions_per_user_per_day,
                seed=config.seed + 3,
                backend=config.backend,
                network=config.network,
            ),
        )
        training_logs = logs.extend(extra_logs)
    statistics_model = OverallStatisticsModel.fit(logs, library.ladder.num_levels)
    dataset = build_exit_dataset(training_logs, DatasetComposition.STALL)
    predictor, _evaluation = train_and_evaluate(
        dataset,
        epochs=train_epochs,
        seed=config.seed,
        statistics_model=statistics_model,
    )
    substrate = Substrate(
        config=config,
        population=population,
        library=library,
        logs=logs,
        training_logs=training_logs,
        statistics_model=statistics_model,
        predictor=predictor,
    )
    _CACHE[config] = substrate
    return substrate


def clear_cache() -> None:
    """Drop all cached substrates (used by tests)."""
    _CACHE.clear()


def empirical_cdf(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sorted values and their empirical CDF (both 1-D arrays)."""
    values = np.sort(np.asarray(values, dtype=float))
    if values.size == 0:
        raise ValueError("empirical_cdf needs at least one value")
    return values, np.arange(1, values.size + 1) / values.size


def format_table(headers: list[str], rows: list[list[object]]) -> str:
    """Simple fixed-width table formatting for benchmark output."""
    all_rows = [headers] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in all_rows) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(all_rows):
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
