"""Figure 15 — per-user parameter-adjustment trajectories.

Four representative users from the AB phase: two with high stall tolerance
and two stall-sensitive ones.  For each, the driver collects the sequence of
stall events (duration + whether the user exited) interleaved with the
parameter values LingXi deployed, so the classification / stability /
adaptation behaviour described in §5.5.2 can be inspected directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.controller import LingXiABR
from repro.experiments import fig12_ab_test
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate


@dataclass
class StallEvent:
    """One stall event in a user's trajectory."""

    index: int
    stall_time: float
    exited: bool
    parameter_after: float


@dataclass
class UserTrajectory:
    """A user's stall events, parameter trajectory and tolerance label."""

    user_id: str
    tolerance_s: float
    archetype: str
    events: list[StallEvent] = field(default_factory=list)
    final_parameter: float = float("nan")

    @property
    def mean_parameter(self) -> float:
        """Mean deployed parameter over the user's stall events."""
        if not self.events:
            return self.final_parameter
        return float(np.mean([e.parameter_after for e in self.events]))


@dataclass
class Fig15Result:
    """Trajectories for the selected high-tolerance and stall-sensitive users."""

    high_tolerance: list[UserTrajectory]
    stall_sensitive: list[UserTrajectory]

    @property
    def separation(self) -> float:
        """Mean parameter of tolerant users minus mean parameter of sensitive users."""
        tolerant = [t.mean_parameter for t in self.high_tolerance if t.events]
        sensitive = [t.mean_parameter for t in self.stall_sensitive if t.events]
        if not tolerant or not sensitive:
            return float("nan")
        return float(np.mean(tolerant) - np.mean(sensitive))


def _trajectory(user_id: str, profile, abr, logs) -> UserTrajectory:
    trajectory = UserTrajectory(
        user_id=user_id,
        tolerance_s=profile.sensitivity.tolerance_s,
        archetype=profile.sensitivity.archetype.value,
    )
    history = []
    if isinstance(abr, LingXiABR):
        history = abr.controller.history
        trajectory.final_parameter = abr.controller.best_parameters.beta
    # Walk the user's sessions in order and pair stall events with the most
    # recently deployed parameter (activations happen inside sessions, so the
    # deployed value after event k is the latest optimization result).
    activation_cursor = 0
    current_parameter = trajectory.final_parameter
    if history:
        current_parameter = history[0].chosen_parameters.beta
    event_index = 0
    user_sessions = [s for s in logs if s.user_id == user_id]
    total_stalls_seen = 0
    for session in sorted(user_sessions, key=lambda s: (s.day, s.session_index)):
        for record in session.records:
            if record.stall_time <= 0:
                continue
            total_stalls_seen += 1
            # Advance the activation cursor proportionally to observed stalls.
            while (
                activation_cursor < len(history)
                and history[activation_cursor].trigger_stall_count <= total_stalls_seen
            ):
                current_parameter = history[activation_cursor].chosen_parameters.beta
                activation_cursor += 1
            trajectory.events.append(
                StallEvent(
                    index=event_index,
                    stall_time=record.stall_time,
                    exited=record.exited,
                    parameter_after=float(current_parameter),
                )
            )
            event_index += 1
    return trajectory


def run(
    substrate: Substrate | None = None,
    ab_result: fig12_ab_test.Fig12Result | None = None,
    users_per_group: int = 2,
    **fig12_kwargs,
) -> Fig15Result:
    """Extract per-user trajectories from the AB-phase campaign."""
    substrate = substrate or build_substrate(SubstrateConfig())
    ab_result = ab_result or fig12_ab_test.run(substrate=substrate, **fig12_kwargs)
    treatment = ab_result.treatment_post
    profiles = {p.user_id: p for p in ab_result.treatment_population}

    # Rank users by their true tolerance, keeping only those who stalled at all.
    stalled_users = {
        user for (user, _day), count in treatment.logs.daily_stall_counts().items() if count > 0
    }
    candidates = [profiles[u] for u in stalled_users if u in profiles]
    if not candidates:
        candidates = list(profiles.values())
    ranked = sorted(candidates, key=lambda p: p.sensitivity.tolerance_s)

    sensitive_profiles = ranked[:users_per_group]
    tolerant_profiles = ranked[-users_per_group:]

    def build(profile_list) -> list[UserTrajectory]:
        return [
            _trajectory(p.user_id, p, treatment.abrs.get(p.user_id), treatment.logs)
            for p in profile_list
        ]

    return Fig15Result(
        high_tolerance=build(tolerant_profiles),
        stall_sensitive=build(sensitive_profiles),
    )
