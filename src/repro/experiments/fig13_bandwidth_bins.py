"""Figure 13 — LingXi behaviour across bandwidth regimes.

(a) The learned HYB aggressiveness ``beta`` as a function of the user's
bandwidth: low-bandwidth users get conservative (small) betas with larger
variation; high-bandwidth users keep large, stable betas.
(b) The relative change in stall time versus the static-HYB control group,
per bandwidth bin: the reduction concentrates in the <2000 kbps long tail,
fading to parity as bandwidth grows.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments import fig12_ab_test
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate

#: Bandwidth bin edges (kbps) used for both panels.
BANDWIDTH_BIN_EDGES_KBPS: tuple[float, ...] = (0, 2000, 4000, 6000, 1e9)


@dataclass
class Fig13Result:
    """Per-bin learned parameters and stall-time changes."""

    bin_labels: list[str]
    mean_beta: list[float]
    std_beta: list[float]
    stall_change_percent: list[float]

    @property
    def low_bandwidth_stall_change(self) -> float:
        """Stall-time change (%) in the lowest bandwidth bin."""
        return self.stall_change_percent[0]

    @property
    def beta_monotonic_increase(self) -> bool:
        """True when the learned beta does not decrease with bandwidth."""
        values = [v for v in self.mean_beta if np.isfinite(v)]
        return all(b >= a - 1e-9 for a, b in zip(values, values[1:]))


def run(
    substrate: Substrate | None = None,
    ab_result: fig12_ab_test.Fig12Result | None = None,
    **fig12_kwargs,
) -> Fig13Result:
    """Aggregate the AB-phase campaign by bandwidth bin."""
    substrate = substrate or build_substrate(SubstrateConfig())
    ab_result = ab_result or fig12_ab_test.run(substrate=substrate, **fig12_kwargs)

    treatment = ab_result.treatment_post
    control = ab_result.control_post
    treatment_bandwidth = {
        p.user_id: p.mean_bandwidth_kbps for p in ab_result.treatment_population
    }
    control_bandwidth = {
        p.user_id: p.mean_bandwidth_kbps for p in ab_result.control_population
    }

    edges = BANDWIDTH_BIN_EDGES_KBPS
    labels, mean_beta, std_beta, stall_change = [], [], [], []
    for low, high in zip(edges[:-1], edges[1:]):
        labels.append(f"{low / 1000:g}-{high / 1000:g} Mbps" if high < 1e8 else f">{low / 1000:g} Mbps")

        betas = [
            value
            for (user, _day), value in treatment.daily_parameters.items()
            if low <= treatment_bandwidth.get(user, -1.0) < high
        ]
        mean_beta.append(float(np.mean(betas)) if betas else float("nan"))
        std_beta.append(float(np.std(betas)) if betas else float("nan"))

        def stall_per_watch_second(result, bandwidths) -> float:
            stall = 0.0
            watch = 0.0
            for session in result.logs:
                bandwidth = bandwidths.get(session.user_id, -1.0)
                if low <= bandwidth < high:
                    stall += session.total_stall_time
                    watch += session.watch_time
            return stall / watch if watch > 0 else float("nan")

        treatment_rate = stall_per_watch_second(treatment, treatment_bandwidth)
        control_rate = stall_per_watch_second(control, control_bandwidth)
        if np.isfinite(treatment_rate) and np.isfinite(control_rate) and control_rate > 0:
            stall_change.append(100.0 * (treatment_rate - control_rate) / control_rate)
        else:
            stall_change.append(float("nan"))

    return Fig13Result(
        bin_labels=labels,
        mean_beta=mean_beta,
        std_beta=std_beta,
        stall_change_percent=stall_change,
    )
