"""Run every experiment with laptop-scale defaults and print a summary.

``python -m repro.experiments.runner`` regenerates the headline numbers of
every figure (EXPERIMENTS.md records a reference run).  Individual figures
can be run by importing their module and calling ``run()`` directly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.experiments import (
    fig01_qos_saturation,
    fig02_opportunities,
    fig03_watchtime_qos,
    fig04_exit_rate_qos,
    fig05_personalized_stall,
    fig08_trigger_tradeoff,
    fig09_predictor,
    fig10_simulation,
    fig11_heatmap,
    fig12_ab_test,
    fig13_bandwidth_bins,
    fig14_exit_rate_vs_param,
    fig15_user_trajectories,
)
from repro.experiments.common import SubstrateConfig, build_substrate


def run_all(substrate_config: SubstrateConfig | None = None, verbose: bool = True) -> dict[str, object]:
    """Run every figure driver once; returns a mapping figure-id -> result."""
    substrate = build_substrate(substrate_config or SubstrateConfig())
    results: dict[str, object] = {}

    def step(name: str, fn) -> None:
        start = time.time()
        results[name] = fn()
        if verbose:
            print(f"{name}: done in {time.time() - start:.1f}s")

    step("fig01", lambda: fig01_qos_saturation.run(substrate=substrate))
    step("fig02", lambda: fig02_opportunities.run(substrate=substrate))
    step("fig03", lambda: fig03_watchtime_qos.run(substrate=substrate))
    step("fig04", lambda: fig04_exit_rate_qos.run(substrate=substrate))
    step("fig05", lambda: fig05_personalized_stall.run(substrate=substrate))
    step("fig08", lambda: fig08_trigger_tradeoff.run(substrate=substrate))
    step("fig09", lambda: fig09_predictor.run(substrate=substrate))
    step("fig10_mpc_rule", lambda: fig10_simulation.run("robust_mpc", "rule", substrate=substrate))
    step("fig11", lambda: fig11_heatmap.run(substrate=substrate))
    ab_result = fig12_ab_test.run(substrate=substrate)
    results["fig12"] = ab_result
    step("fig13", lambda: fig13_bandwidth_bins.run(substrate=substrate, ab_result=ab_result))
    step("fig14", lambda: fig14_exit_rate_vs_param.run(substrate=substrate, ab_result=ab_result))
    step("fig15", lambda: fig15_user_trajectories.run(substrate=substrate, ab_result=ab_result))

    if verbose:
        fig04 = results["fig04"]
        print(
            "influence magnitudes:",
            f"quality={fig04.quality_magnitude:.4f}",
            f"smoothness={fig04.smoothness_magnitude:.4f}",
            f"stall={fig04.stall_magnitude:.4f}",
        )
        fig12 = results["fig12"]
        print(fig12.watch_time.summary())
        print(fig12.bitrate.summary())
        print(fig12.stall_time.summary())
    return results


if __name__ == "__main__":
    np.set_printoptions(precision=4, suppress=True)
    run_all()
