"""Run every experiment with laptop-scale defaults and print a summary.

``python -m repro.experiments.runner`` regenerates the headline numbers of
every figure (EXPERIMENTS.md records a reference run).  A subset can be
selected on the command line::

    python -m repro.experiments.runner --figures fig01,fig12 --quiet

Individual figures can also be run by importing their module and calling
``run()`` directly.
"""

from __future__ import annotations

import argparse
import time
from contextlib import ExitStack
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs.live import live_run
from repro.experiments import (
    fig01_qos_saturation,
    fig02_opportunities,
    fig03_watchtime_qos,
    fig04_exit_rate_qos,
    fig05_personalized_stall,
    fig08_trigger_tradeoff,
    fig09_predictor,
    fig10_simulation,
    fig11_heatmap,
    fig12_ab_test,
    fig13_bandwidth_bins,
    fig14_exit_rate_vs_param,
    fig15_user_trajectories,
    fig16_longitudinal,
)
from repro.experiments.common import SubstrateConfig, build_substrate
from repro.net.topology import available_topologies
from repro.sim.backend import available_backends

#: Figure ids in execution order.  Figures 13–15 reuse the AA/AB campaign of
#: Figure 12, so selecting any of them pulls ``fig12`` in as a dependency.
FIGURE_IDS: tuple[str, ...] = (
    "fig01",
    "fig02",
    "fig03",
    "fig04",
    "fig05",
    "fig08",
    "fig09",
    "fig10_mpc_rule",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16_longitudinal",
)

_FIG12_DEPENDENTS: frozenset[str] = frozenset({"fig13", "fig14", "fig15"})


def select_figures(requested: list[str] | None) -> list[str]:
    """Validate a figure selection and resolve the fig12 dependency.

    ``None`` (or an empty list) selects everything.  The result preserves the
    canonical execution order of :data:`FIGURE_IDS`.
    """
    if not requested:
        return list(FIGURE_IDS)
    unknown = sorted(set(requested) - set(FIGURE_IDS))
    if unknown:
        raise ValueError(f"unknown figures {unknown}; choose from {list(FIGURE_IDS)}")
    selected = set(requested)
    if selected & _FIG12_DEPENDENTS:
        selected.add("fig12")
    return [figure for figure in FIGURE_IDS if figure in selected]


def run_all(
    substrate_config: SubstrateConfig | None = None,
    verbose: bool = True,
    figures: list[str] | None = None,
) -> dict[str, object]:
    """Run the selected figure drivers once; returns figure-id -> result."""
    selected = select_figures(figures)
    substrate = build_substrate(substrate_config or SubstrateConfig())
    results: dict[str, object] = {}

    def step(name: str, fn) -> None:
        if name not in selected:
            return
        start = time.time()  # contract: DET-CLOCK-002 exempt(progress display only; never reaches figures or traces)
        with obs.span(f"runner.{name}"):
            results[name] = fn()
        if verbose:
            print(f"{name}: done in {time.time() - start:.1f}s")  # contract: DET-CLOCK-002 exempt(progress display only; never reaches figures or traces)

    step("fig01", lambda: fig01_qos_saturation.run(substrate=substrate))
    step("fig02", lambda: fig02_opportunities.run(substrate=substrate))
    step("fig03", lambda: fig03_watchtime_qos.run(substrate=substrate))
    step("fig04", lambda: fig04_exit_rate_qos.run(substrate=substrate))
    step("fig05", lambda: fig05_personalized_stall.run(substrate=substrate))
    step("fig08", lambda: fig08_trigger_tradeoff.run(substrate=substrate))
    step("fig09", lambda: fig09_predictor.run(substrate=substrate))
    step("fig10_mpc_rule", lambda: fig10_simulation.run("robust_mpc", "rule", substrate=substrate))
    step("fig11", lambda: fig11_heatmap.run(substrate=substrate))
    step("fig12", lambda: fig12_ab_test.run(substrate=substrate))
    ab_result = results.get("fig12")
    step("fig13", lambda: fig13_bandwidth_bins.run(substrate=substrate, ab_result=ab_result))
    step("fig14", lambda: fig14_exit_rate_vs_param.run(substrate=substrate, ab_result=ab_result))
    step("fig15", lambda: fig15_user_trajectories.run(substrate=substrate, ab_result=ab_result))
    step("fig16_longitudinal", lambda: fig16_longitudinal.run(substrate=substrate))

    if verbose:
        if "fig04" in results:
            fig04 = results["fig04"]
            print(
                "influence magnitudes:",
                f"quality={fig04.quality_magnitude:.4f}",
                f"smoothness={fig04.smoothness_magnitude:.4f}",
                f"stall={fig04.stall_magnitude:.4f}",
            )
        if "fig12" in results:
            fig12 = results["fig12"]
            print(fig12.watch_time.summary())
            print(fig12.bitrate.summary())
            print(fig12.stall_time.summary())
        if "fig16_longitudinal" in results:
            for line in results["fig16_longitudinal"].summary_lines():
                print(line)
    return results


def _parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.runner",
        description="Regenerate the paper's figures at laptop scale.",
    )
    parser.add_argument(
        "--figures",
        default=None,
        help=(
            "comma-separated figure ids to run (default: all); "
            f"available: {', '.join(FIGURE_IDS)}"
        ),
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-figure timing and summary output",
    )
    parser.add_argument(
        "--backend",
        default="scalar",
        choices=available_backends(),
        help=(
            "simulation backend for substrate log generation and the "
            "fig10/fig12 campaign loops (default: scalar)"
        ),
    )
    parser.add_argument(
        "--network",
        default=None,
        choices=available_topologies(),
        help=(
            "shared-bottleneck topology for substrate log generation: "
            "sessions fair-share edge-link capacity, so the synthetic "
            "corpus carries emergent congestion (default: uncoupled)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "enable the observability layer (repro.obs): per-figure span "
            "tree, fleet metrics and a run health report written to "
            "--report-out and printed at the end"
        ),
    )
    parser.add_argument(
        "--report-out",
        default="report.json",
        help="where --profile writes the run health report (default: report.json)",
    )
    parser.add_argument(
        "--live-status",
        default=None,
        metavar="PATH",
        help=(
            "publish live heartbeats while figures run: write a status file "
            "here (watch with `python -m repro.obs.monitor PATH`)"
        ),
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> dict[str, object]:
    """Command-line entry point."""
    args = _parse_args(argv)
    figures = (
        [name.strip() for name in args.figures.split(",") if name.strip()]
        if args.figures
        else None
    )
    try:
        select_figures(figures)
    except ValueError as error:
        raise SystemExit(f"error: {error}") from None
    np.set_printoptions(precision=4, suppress=True)
    if args.profile:
        obs.enable()
    try:
        with ExitStack() as stack:
            if args.live_status:
                stack.enter_context(
                    live_run(args.live_status, run_id="experiments.runner")
                )
                print(f"live status: python -m repro.obs.monitor {args.live_status}")
            results = run_all(
                substrate_config=SubstrateConfig(
                    backend=args.backend, network=args.network
                ),
                verbose=not args.quiet,
                figures=figures,
            )
    finally:
        if args.profile:
            report = obs.build_run_report(run_id="experiments.runner")
            path = obs.write_report(report, Path(args.report_out))
            obs.disable()
            if not args.quiet:
                print(obs.format_report(report))
            print(f"run health report written to {path}")
    return results


if __name__ == "__main__":
    main()
