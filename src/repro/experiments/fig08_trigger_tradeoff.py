"""Figure 8 — trade-offs between accumulated stall counts and model recall.

(a) CDF of per-user daily stall counts, split by bandwidth bin: stalls are
rare except in the low-bandwidth long tail, so waiting for many stall events
before activating personalization would take weeks.
(b) Predictor recall as a function of how many stall events the user had
already accumulated: recall improves with history, with a visible step
between one and two events — the paper's justification for the trigger
threshold of two.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exit_predictor import ExitRatePredictor
from repro.datasets import DatasetComposition, build_exit_dataset
from repro.experiments.common import (
    Substrate,
    SubstrateConfig,
    build_substrate,
    empirical_cdf,
)
from repro.nn.metrics import recall_score

#: Bandwidth bin edges (kbps) for panel (a).
BANDWIDTH_BIN_EDGES_KBPS: tuple[float, ...] = (0, 2000, 4000, 6000, 8000, 10000, 1e9)


@dataclass
class Fig08Result:
    """Per-bin stall-count CDFs and the recall-vs-history curve."""

    stall_count_cdfs: dict[str, tuple[np.ndarray, np.ndarray]]
    history_counts: list[int]
    recall_by_history: list[float]

    @property
    def recall_step_one_to_two(self) -> float:
        """Recall improvement going from one to two accumulated stall events."""
        if len(self.recall_by_history) < 2:
            return 0.0
        return self.recall_by_history[1] - self.recall_by_history[0]


def run(
    substrate: Substrate | None = None,
    max_history: int = 8,
    train_epochs: int = 10,
    seed: int = 0,
) -> Fig08Result:
    """Compute both panels from the shared substrate."""
    substrate = substrate or build_substrate(SubstrateConfig())
    logs = substrate.logs

    cdfs: dict[str, tuple[np.ndarray, np.ndarray]] = {}
    for label, counts in logs.daily_stall_counts_by_bandwidth(BANDWIDTH_BIN_EDGES_KBPS).items():
        if counts:
            cdfs[label] = empirical_cdf(np.asarray(counts, dtype=float))

    # Panel (b): train on one half of the users, measure recall on the other
    # half bucketed by how much stall history the user had at each sample.
    # The training corpus (long-tail oversampled) is used so both halves have
    # enough stall events.
    dataset = build_exit_dataset(substrate.training_logs, DatasetComposition.STALL)
    assert dataset.stall_ordinals is not None
    users = sorted(set(dataset.user_ids))
    rng = np.random.default_rng(seed)
    rng.shuffle(users)
    train_users = set(users[: len(users) // 2])
    train_idx = np.asarray([i for i, u in enumerate(dataset.user_ids) if u in train_users])
    test_idx = np.asarray([i for i, u in enumerate(dataset.user_ids) if u not in train_users])

    predictor = ExitRatePredictor(statistics_model=substrate.statistics_model, seed=seed)
    predictor.train(dataset.subset(train_idx), balanced=True, epochs=train_epochs, seed=seed)

    test = dataset.subset(test_idx)
    assert test.stall_ordinals is not None
    predictions = predictor.network.predict(test.features)
    history_counts = list(range(1, max_history + 1))
    recalls: list[float] = []
    for k in history_counts:
        mask = test.stall_ordinals >= (k - 1)
        if mask.sum() == 0 or test.labels[mask].sum() == 0:
            recalls.append(float("nan"))
            continue
        recalls.append(recall_score(test.labels[mask], predictions[mask]))
    return Fig08Result(
        stall_count_cdfs=cdfs,
        history_counts=history_counts,
        recall_by_history=recalls,
    )
