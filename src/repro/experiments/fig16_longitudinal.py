"""Figure 16 (extension) — compounding cross-day A/B campaign.

Figure 12 measures LingXi's effect with both groups' populations pinned:
every user plays every day, so better QoE can only move per-session metrics.
This experiment runs the same HYB-vs-LingXi comparison through the
longitudinal fleet (:mod:`repro.fleet.longitudinal`), where engagement
feeds back into arrivals: users who stall out churn, users who finish videos
come back.  The reported deltas — DAU, day-over-day retention, watch time,
stall time — therefore *compound* across days, which is the paper's actual
long-term claim.

Both arms run the same days with shared seeds (paired days), and the
per-metric comparisons come from
:func:`repro.analytics.abtest.compare_arm_series`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abr.base import QoEParameters
from repro.analytics.abtest import ArmComparison
from repro.core.monte_carlo import MonteCarloConfig
from repro.core.parameter_space import ParameterSpace
from repro.core.triggers import TriggerPolicy
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate
from repro.fleet.longitudinal import (
    LongitudinalABResult,
    LongitudinalConfig,
    DriftConfig,
    run_ab_campaign,
)
from repro.fleet.orchestrator import HybFleetFactory, LingXiFleetFactory
from repro.users.population import UserPopulation
from repro.users.retention import RuleBasedRetentionModel


@dataclass
class Fig16Result:
    """A/B campaign artefacts plus the headline comparisons."""

    ab: LongitudinalABResult
    dau: ArmComparison | None
    retention: ArmComparison | None
    watch_time: ArmComparison | None
    stall: ArmComparison | None

    def summary_lines(self) -> list[str]:
        """Per-metric one-liners (skipping metrics with too few days)."""
        return self.ab.summary_lines()


#: Production-default HYB aggressiveness (matches fig12).
BASELINE_BETA: float = 0.8
BETA_RANGE: tuple[float, float] = (0.4, 1.0)


def run(
    substrate: Substrate | None = None,
    days: int = 4,
    num_users: int = 80,
    sessions_per_user: int = 3,
    trace_length: int = 100,
    influx_per_day: int = 4,
    seed: int = 33,
    backend: str | None = None,
    network: str | None = None,
) -> Fig16Result:
    """Run the compounding A/B campaign on the substrate's population.

    The treatment arm runs per-user LingXi(HYB) controllers whose long-term
    state carries across days through the checkpoint layer; the control arm
    runs static HYB at the production beta.
    """
    substrate = substrate or build_substrate(SubstrateConfig())
    backend = backend or getattr(substrate.config, "backend", "scalar")
    profiles = substrate.population.profiles[:num_users]
    population = UserPopulation(profiles)

    lingxi_factory = LingXiFleetFactory(
        predictor=substrate.predictor,
        parameter_space=ParameterSpace.for_hyb(
            beta_range=BETA_RANGE, defaults=QoEParameters(beta=BASELINE_BETA)
        ),
        monte_carlo=MonteCarloConfig(num_samples=3, max_sample_duration_s=60.0),
        trigger=TriggerPolicy(stall_count_threshold=2),
        baseline_parameters=QoEParameters(beta=BASELINE_BETA),
    )
    hyb_factory = HybFleetFactory(parameters=QoEParameters(beta=BASELINE_BETA))

    config = LongitudinalConfig(
        days=days,
        seed=seed,
        num_shards=2,
        num_workers=0,
        sessions_per_user=sessions_per_user,
        trace_length=trace_length,
        backend=backend,
        network=network,
        drift=DriftConfig(influx_per_day=influx_per_day),
    )
    ab = run_ab_campaign(
        population,
        substrate.library,
        arms={"lingxi": lingxi_factory, "hyb": hyb_factory},
        config=config,
        retention_model=RuleBasedRetentionModel(),
    )
    return Fig16Result(
        ab=ab,
        dau=ab.comparisons.get("dau"),
        retention=ab.comparisons.get("retention_rate"),
        watch_time=ab.comparisons.get("total_watch_time"),
        stall=ab.comparisons.get("stall_seconds_per_hour"),
    )
