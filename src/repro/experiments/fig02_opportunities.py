"""Figure 2 — optimization opportunities in the production system.

(a) CDF of per-user bandwidth against the maximum encoding bitrate: only a
small minority of users (the long tail) sit below the top rung.
(b) CDF of per-user daily stall counts: the vast majority of users see at most
a couple of stalls per day.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import (
    Substrate,
    SubstrateConfig,
    build_substrate,
    empirical_cdf,
)


@dataclass
class Fig02Result:
    """Bandwidth CDF, stall-count CDF and headline fractions."""

    bandwidth_mbps_sorted: np.ndarray
    bandwidth_cdf: np.ndarray
    max_bitrate_mbps: float
    fraction_below_max_bitrate: float
    stall_counts_sorted: np.ndarray
    stall_count_cdf: np.ndarray
    fraction_stall_free: float
    fraction_at_most_two_stalls: float


def run(substrate: Substrate | None = None) -> Fig02Result:
    """Compute both CDFs from the shared synthetic substrate."""
    substrate = substrate or build_substrate(SubstrateConfig())
    bandwidths_mbps = substrate.population.mean_bandwidths() / 1000.0
    max_bitrate_mbps = substrate.library.ladder.max_bitrate / 1000.0
    bw_sorted, bw_cdf = empirical_cdf(bandwidths_mbps)

    per_user_day = substrate.logs.daily_stall_counts()
    counts = np.asarray(list(per_user_day.values()), dtype=float)
    counts_sorted, counts_cdf = empirical_cdf(counts)

    return Fig02Result(
        bandwidth_mbps_sorted=bw_sorted,
        bandwidth_cdf=bw_cdf,
        max_bitrate_mbps=max_bitrate_mbps,
        fraction_below_max_bitrate=float(np.mean(bandwidths_mbps < max_bitrate_mbps)),
        stall_counts_sorted=counts_sorted,
        stall_count_cdf=counts_cdf,
        fraction_stall_free=float(np.mean(counts == 0)),
        fraction_at_most_two_stalls=float(np.mean(counts <= 2)),
    )
