"""Figure 12 — large-scale difference-in-differences A/B test.

The production experiment runs 5 AA days (both groups on the static HYB
baseline) followed by 5 AB days (the experimental group switches to
LingXi-tuned HYB).  The reported effects: total watch time +0.146%, bitrate
+0.103%, stall time −1.287% — with the stall-time improvement an order of
magnitude larger than the bitrate improvement.  The reproduction runs the
same protocol on the simulated population; absolute effect sizes differ (the
simulated population is far smaller and more volatile than 30 M users) but
the signs and the stall-vs-bitrate asymmetry should match.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.abr.base import QoEParameters
from repro.abr.hyb import HYB
from repro.analytics.abtest import ABTestResult, difference_in_differences
from repro.analytics.metrics import GroupDailyMetrics, aggregate_daily_metrics
from repro.core.controller import ControllerConfig, LingXiABR, LingXiController
from repro.core.monte_carlo import MonteCarloConfig
from repro.core.parameter_space import ParameterSpace
from repro.core.triggers import TriggerPolicy
from repro.experiments.campaign import CampaignConfig, CampaignResult, run_campaign
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate
from repro.users.population import UserPopulation, UserProfile


@dataclass
class Fig12Result:
    """Daily metrics of both groups plus the difference-in-differences tests."""

    control_daily: list[GroupDailyMetrics]
    treatment_daily: list[GroupDailyMetrics]
    watch_time: ABTestResult
    bitrate: ABTestResult
    stall_time: ABTestResult
    #: Campaign artefacts of the AB (post-intervention) phase, for Figures 13–15.
    treatment_post: CampaignResult
    control_post: CampaignResult
    treatment_population: UserPopulation
    control_population: UserPopulation
    days_pre: int
    days_post: int


#: Production-default HYB aggressiveness used by both groups before (and, for
#: the control group, after) the intervention.  LingXi may move it in either
#: direction within BETA_RANGE.
BASELINE_BETA: float = 0.8
BETA_RANGE: tuple[float, float] = (0.4, 1.0)


def _baseline_parameters() -> QoEParameters:
    return QoEParameters(beta=BASELINE_BETA)


def _lingxi_hyb_factory(substrate: Substrate, seed: int):
    """Per-user factory building a LingXi-wrapped HYB with a fresh controller."""

    def factory(profile: UserProfile) -> LingXiABR:
        controller = LingXiController(
            parameter_space=ParameterSpace.for_hyb(
                beta_range=BETA_RANGE, defaults=_baseline_parameters()
            ),
            predictor=substrate.predictor,
            monte_carlo=MonteCarloConfig(num_samples=3, max_sample_duration_s=60.0, seed=seed),
            trigger=TriggerPolicy(stall_count_threshold=2),
            config=ControllerConfig(mode="bayesian", max_sample_times=4, seed=seed),
        )
        return LingXiABR(HYB(parameters=_baseline_parameters()), controller)

    return factory


def run(
    substrate: Substrate | None = None,
    days_pre: int = 3,
    days_post: int = 4,
    sessions_per_user_per_day: int = 4,
    trace_length: int = 120,
    split_fraction: float = 0.5,
    seed: int = 21,
    backend: str | None = None,
) -> Fig12Result:
    """Run the AA/AB campaign and the difference-in-differences analysis.

    ``backend`` selects the campaign simulation backend (defaults to the
    substrate's configured backend; the AA phases and the control group are
    plain HYB and fully vectorizable under ``"vector"``).
    """
    substrate = substrate or build_substrate(SubstrateConfig())
    backend = backend or getattr(substrate.config, "backend", "scalar")
    treatment_population, control_population = substrate.population.split(
        split_fraction, seed=seed
    )

    def campaign(population: UserPopulation, factory, start_day: int, days: int, abrs=None):
        return run_campaign(
            population,
            substrate.library,
            factory,
            CampaignConfig(
                days=days,
                sessions_per_user_per_day=sessions_per_user_per_day,
                trace_length=trace_length,
                seed=seed + start_day,
                start_day=start_day,
            ),
            abrs=abrs,
            backend=backend,
        )

    hyb_factory = lambda _profile: HYB(parameters=_baseline_parameters())  # noqa: E731

    control_pre = campaign(control_population, hyb_factory, 0, days_pre)
    treatment_pre = campaign(treatment_population, hyb_factory, 0, days_pre)
    control_post = campaign(control_population, hyb_factory, days_pre, days_post)
    treatment_post = campaign(
        treatment_population, _lingxi_hyb_factory(substrate, seed), days_pre, days_post
    )

    control_logs = control_pre.logs.extend(control_post.logs)
    treatment_logs = treatment_pre.logs.extend(treatment_post.logs)
    control_daily = aggregate_daily_metrics(control_logs.sessions, group="control")
    treatment_daily = aggregate_daily_metrics(treatment_logs.sessions, group="treatment")

    def did(metric: str, attribute: str) -> ABTestResult:
        # Guard against zero-valued control days (tiny simulated populations).
        floor = 1e-9
        control_values = [max(getattr(row, attribute), floor) for row in control_daily]
        treatment_values = [max(getattr(row, attribute), floor) for row in treatment_daily]
        return difference_in_differences(
            metric,
            treatment_pre=treatment_values[:days_pre],
            control_pre=control_values[:days_pre],
            treatment_post=treatment_values[days_pre:],
            control_post=control_values[days_pre:],
        )

    return Fig12Result(
        control_daily=control_daily,
        treatment_daily=treatment_daily,
        watch_time=did("total_watch_time", "total_watch_time"),
        bitrate=did("mean_bitrate", "mean_bitrate_kbps"),
        # Stall is compared per watch-hour: with a small simulated population
        # the raw daily totals are dominated by a handful of heavy sessions.
        stall_time=did("stall_seconds_per_hour", "stall_seconds_per_hour"),
        treatment_post=treatment_post,
        control_post=control_post,
        treatment_population=treatment_population,
        control_population=control_population,
        days_pre=days_pre,
        days_post=days_post,
    )
