"""Figure 9 — exit-rate predictor under different settings.

(a) Accuracy / precision / recall / F1 of predictors trained on the ALL,
event-only and stall-only dataset compositions (multiple seeds, standard
errors): restricting the training data to stall events removes most
QoS-unrelated exits and yields by far the best predictor.
(b) Balanced versus unbalanced sampling on the stall dataset: dropping the
class balancing costs recall (exits misclassified as continues).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.exit_predictor import train_and_evaluate
from repro.datasets import DatasetComposition, build_exit_dataset
from repro.experiments.common import Substrate, SubstrateConfig, build_substrate

_METRICS = ("accuracy", "precision", "recall", "f1")


@dataclass
class MetricSummary:
    """Mean and standard error of the four headline metrics across seeds."""

    mean: dict[str, float] = field(default_factory=dict)
    stderr: dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_runs(cls, runs: list[dict[str, float]]) -> "MetricSummary":
        """Summarise a list of per-seed metric dicts."""
        summary = cls()
        for metric in _METRICS:
            values = np.asarray([run[metric] for run in runs], dtype=float)
            summary.mean[metric] = float(values.mean())
            summary.stderr[metric] = float(
                values.std(ddof=1) / np.sqrt(values.size) if values.size > 1 else 0.0
            )
        return summary


@dataclass
class Fig09Result:
    """Per-composition summaries plus the sampling ablation."""

    by_composition: dict[str, MetricSummary]
    stall_balanced: MetricSummary
    stall_unbalanced: MetricSummary

    @property
    def recall_drop_without_balancing(self) -> float:
        """Recall lost when the balanced sampling step is removed."""
        return self.stall_balanced.mean["recall"] - self.stall_unbalanced.mean["recall"]


def run(
    substrate: Substrate | None = None,
    seeds: tuple[int, ...] = (0, 1, 2),
    epochs: int = 12,
) -> Fig09Result:
    """Train and evaluate predictors across dataset compositions and sampling."""
    substrate = substrate or build_substrate(SubstrateConfig())
    logs = substrate.training_logs

    by_composition: dict[str, MetricSummary] = {}
    for composition in (DatasetComposition.ALL, DatasetComposition.EVENT, DatasetComposition.STALL):
        dataset = build_exit_dataset(logs, composition)
        runs = []
        for seed in seeds:
            _predictor, evaluation = train_and_evaluate(
                dataset,
                balanced=True,
                epochs=epochs,
                seed=seed,
                statistics_model=substrate.statistics_model,
            )
            runs.append(evaluation.as_dict())
        by_composition[composition.value] = MetricSummary.from_runs(runs)

    stall_dataset = build_exit_dataset(logs, DatasetComposition.STALL)
    unbalanced_runs = []
    for seed in seeds:
        _predictor, evaluation = train_and_evaluate(
            stall_dataset,
            balanced=False,
            epochs=epochs,
            seed=seed,
            statistics_model=substrate.statistics_model,
        )
        unbalanced_runs.append(evaluation.as_dict())

    return Fig09Result(
        by_composition=by_composition,
        stall_balanced=by_composition[DatasetComposition.STALL.value],
        stall_unbalanced=MetricSummary.from_runs(unbalanced_runs),
    )
