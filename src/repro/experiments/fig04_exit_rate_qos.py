"""Figure 4 — the impact of QoS metrics on exit rates.

The headline "Takeaway 1" of the paper: video quality, smoothness and stall
time influence segment-level exit rates at the 1e-3, 1e-2 and 1e-1 orders of
magnitude respectively, and stall interacts with engagement (compound
effects).  The driver reproduces all four panels from the synthetic log
corpus.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Substrate, SubstrateConfig, build_substrate

#: Cumulative-stall-time bin edges (seconds) for panels (c)/(d).
STALL_BINS: tuple[float, ...] = (0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 14.0, 20.0)
#: Switch granularities examined in panel (b).
SWITCH_GRANULARITIES: tuple[int, ...] = (-2, -1, 0, 1, 2)


@dataclass
class Fig04Result:
    """Exit-rate series for the four panels plus the influence magnitudes."""

    tier_names: list[str]
    exit_rate_by_tier: np.ndarray
    switch_granularities: list[int]
    exit_rate_by_switch: dict[int, float]
    stall_bins_s: list[float]
    exit_rate_by_stall: np.ndarray
    exit_rate_by_stall_engaged: np.ndarray
    exit_rate_by_stall_top_tier: np.ndarray
    exit_rate_by_stall_multiple: np.ndarray

    @property
    def quality_magnitude(self) -> float:
        """Absolute exit-rate spread across quality tiers."""
        values = self.exit_rate_by_tier[np.isfinite(self.exit_rate_by_tier)]
        return float(values.max() - values.min()) if values.size else float("nan")

    @property
    def smoothness_magnitude(self) -> float:
        """Exit-rate spread between switching and non-switching segments."""
        values = [v for v in self.exit_rate_by_switch.values() if np.isfinite(v)]
        return float(max(values) - min(values)) if values else float("nan")

    @property
    def stall_magnitude(self) -> float:
        """Exit-rate spread across the stall-time bins."""
        values = self.exit_rate_by_stall[np.isfinite(self.exit_rate_by_stall)]
        return float(values.max() - values.min()) if values.size else float("nan")


def run(substrate: Substrate | None = None) -> Fig04Result:
    """Aggregate segment-level exit rates against the three QoS dimensions.

    The analysis runs on the long-tail-oversampled corpus (the paper's own
    analysis corpus is explicitly the trajectories that contain the QoS events
    of interest); platform-wide stalls are too rare for stable bin estimates.
    """
    substrate = substrate or build_substrate(SubstrateConfig())
    logs = substrate.training_logs
    ladder = substrate.library.ladder
    top_level = ladder.num_levels - 1

    # Panels (a)/(b) condition on non-stalled segments so the (much larger)
    # stall effect does not confound the quality and smoothness magnitudes.
    exit_rate_by_tier = np.asarray(
        [
            logs.segment_exit_rate(lambda r, lvl=level: r.level == lvl and r.stall_time <= 0)
            for level in range(ladder.num_levels)
        ]
    )
    return Fig04Result(
        tier_names=[ladder.tier_name(i) for i in range(ladder.num_levels)],
        exit_rate_by_tier=exit_rate_by_tier,
        switch_granularities=list(SWITCH_GRANULARITIES),
        exit_rate_by_switch=logs.exit_rate_by_switch(SWITCH_GRANULARITIES),
        stall_bins_s=list(STALL_BINS),
        exit_rate_by_stall=logs.exit_rate_by_stall_time(STALL_BINS),
        exit_rate_by_stall_engaged=logs.exit_rate_by_stall_time(
            STALL_BINS, record_filter=lambda r: r.watch_time > 20.0
        ),
        exit_rate_by_stall_top_tier=logs.exit_rate_by_stall_time(
            STALL_BINS, record_filter=lambda r, lvl=top_level: r.level == lvl
        ),
        exit_rate_by_stall_multiple=logs.exit_rate_by_stall_time(
            STALL_BINS, record_filter=lambda r: r.stall_count >= 2
        ),
    )
