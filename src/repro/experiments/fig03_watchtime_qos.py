"""Figure 3 — the impact of QoS metrics on watch time.

Watch time is a long-horizon metric, so per-session aggregation against QoS
is noisy; the paper uses this figure to motivate the switch to segment-level
exit rates.  We reproduce the two panels: mean (normalized) watch time by the
session's dominant quality tier, and by the session's total stall time bin.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import Substrate, SubstrateConfig, build_substrate

#: Stall-time bin left edges (seconds) for panel (b).
STALL_TIME_BINS: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0, 8.0, 16.0)


@dataclass
class Fig03Result:
    """Normalized watch time by quality tier and by stall-time bin."""

    tier_names: list[str]
    watch_time_by_tier: np.ndarray
    stall_bins_s: list[float]
    watch_time_by_stall: np.ndarray


def run(substrate: Substrate | None = None) -> Fig03Result:
    """Aggregate watch time against quality tier and stall time."""
    substrate = substrate or build_substrate(SubstrateConfig())
    logs = substrate.logs
    ladder = substrate.library.ladder

    by_tier = logs.watch_time_by_level(ladder.num_levels)
    by_stall = logs.watch_time_by_stall_time(STALL_TIME_BINS)

    def normalize(values: np.ndarray) -> np.ndarray:
        peak = np.nanmax(values)
        if not np.isfinite(peak) or peak == 0:
            return values
        return values / peak

    return Fig03Result(
        tier_names=[ladder.tier_name(i) for i in range(ladder.num_levels)],
        watch_time_by_tier=normalize(by_tier),
        stall_bins_s=list(STALL_TIME_BINS),
        watch_time_by_stall=normalize(by_stall),
    )
