"""repro — reproduction of LingXi (SIGCOMM 2025).

LingXi is a personalization layer for adaptive video streaming: it observes a
user's engagement (exits) during playback and continuously re-tunes the
optimization objective of the underlying ABR algorithm — per user — through a
hybrid exit-rate predictor, Monte-Carlo virtual playback and online Bayesian
optimization.

Package map
-----------
``repro.sim``        playback simulator (video, bandwidth, player, sessions)
``repro.abr``        ABR algorithms (HYB, BBA, BOLA, throughput, RobustMPC, Pensieve)
``repro.nn``         numpy neural-network framework
``repro.bayesopt``   Gaussian-process Bayesian optimization
``repro.users``      user stall-perception and engagement models, populations
``repro.analytics``  QoE_lin, playback logs, A/B testing statistics
``repro.datasets``   synthetic production logs and exit-predictor datasets
``repro.core``       LingXi itself (predictor, Monte Carlo, OBO controller)
``repro.fleet``      sharded fleet orchestration, batched inference, telemetry
``repro.experiments`` per-figure reproduction drivers
"""

from repro.abr import HYB, BBA, BOLA, Pensieve, QoEParameters, RobustMPC, ThroughputRule
from repro.core import (
    ControllerConfig,
    ExitRatePredictor,
    LingXiABR,
    LingXiController,
    MonteCarloConfig,
    MonteCarloEvaluator,
    OverallStatisticsModel,
    ParameterSpace,
    PlayerSnapshot,
    PruningPolicy,
    TriggerPolicy,
    UserState,
)
from repro.sim import (
    BandwidthModel,
    BandwidthTrace,
    BitrateLadder,
    PlaybackSession,
    PlaybackTrace,
    SessionConfig,
    Video,
    VideoLibrary,
)
from repro.fleet import (
    BatchedExitPredictor,
    BatchedMonteCarloEvaluator,
    FleetConfig,
    FleetOrchestrator,
    FleetResult,
    run_fleet_day,
)
from repro.users import UserPopulation, UserProfile

__version__ = "1.1.0"

__all__ = [
    "HYB",
    "BBA",
    "BOLA",
    "Pensieve",
    "RobustMPC",
    "ThroughputRule",
    "QoEParameters",
    "ControllerConfig",
    "ExitRatePredictor",
    "LingXiABR",
    "LingXiController",
    "MonteCarloConfig",
    "MonteCarloEvaluator",
    "OverallStatisticsModel",
    "ParameterSpace",
    "PlayerSnapshot",
    "PruningPolicy",
    "TriggerPolicy",
    "UserState",
    "BandwidthModel",
    "BandwidthTrace",
    "BitrateLadder",
    "PlaybackSession",
    "PlaybackTrace",
    "SessionConfig",
    "Video",
    "VideoLibrary",
    "BatchedExitPredictor",
    "BatchedMonteCarloEvaluator",
    "FleetConfig",
    "FleetOrchestrator",
    "FleetResult",
    "run_fleet_day",
    "UserPopulation",
    "UserProfile",
    "__version__",
]
