"""repro.net — shared-bottleneck network substrate.

Concurrent playback sessions attached to the same edge link fair-share its
capacity, so congestion, flash crowds and outages are *emergent* properties
of load rather than exogenous trace scaling:

* :mod:`repro.net.topology` — :class:`NetworkTopology` / :class:`EdgeLink`
  with deterministic (md5-stable) user attachment, scheduled capacity events
  and diurnal cross-traffic, plus a named-topology registry.
* :mod:`repro.net.allocator` — vectorized weighted max-min (water-filling)
  allocation, its path-aware multi-tier generalisation, the ``low_lapsley``
  primal-dual optimization-flow-control allocator, and the per-slot
  :func:`allocate_step` shared by the scalar and vector simulation engines.

Multi-tier topologies chain edge links to ISP peering and CDN origin links
(``EdgeLink.uplinks``); a deterministic :class:`CacheModel` decides per
(user, segment) whether a download stays on the edge (cache hit) or
traverses the full path (miss).

The package is a leaf dependency (numpy only): :mod:`repro.sim` builds its
networked stepping modes on top of it, and :mod:`repro.fleet` shards users
by link so allocation coupling stays inside one shard.
"""

from repro.net.allocator import (
    LinkUsageSample,
    allocate_step,
    low_lapsley,
    max_min_fair,
    path_water_fill,
)
from repro.net.topology import (
    ALLOCATORS,
    MIN_LINK_CAPACITY_KBPS,
    CacheModel,
    CrossTraffic,
    EdgeLink,
    LinkEvent,
    NetworkTopology,
    available_topologies,
    get_topology,
    register_topology,
    stable_fraction,
    stable_user_key,
)

__all__ = [
    "LinkUsageSample",
    "allocate_step",
    "low_lapsley",
    "max_min_fair",
    "path_water_fill",
    "ALLOCATORS",
    "MIN_LINK_CAPACITY_KBPS",
    "CacheModel",
    "CrossTraffic",
    "EdgeLink",
    "LinkEvent",
    "NetworkTopology",
    "available_topologies",
    "get_topology",
    "register_topology",
    "stable_fraction",
    "stable_user_key",
]
