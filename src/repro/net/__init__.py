"""repro.net — shared-bottleneck network substrate.

Concurrent playback sessions attached to the same edge link fair-share its
capacity, so congestion, flash crowds and outages are *emergent* properties
of load rather than exogenous trace scaling:

* :mod:`repro.net.topology` — :class:`NetworkTopology` / :class:`EdgeLink`
  with deterministic (md5-stable) user attachment, scheduled capacity events
  and diurnal cross-traffic, plus a named-topology registry.
* :mod:`repro.net.allocator` — vectorized weighted max-min (water-filling)
  allocation and the per-slot :func:`allocate_step` shared by the scalar and
  vector simulation engines.

The package is a leaf dependency (numpy only): :mod:`repro.sim` builds its
networked stepping modes on top of it, and :mod:`repro.fleet` shards users
by link so allocation coupling stays inside one shard.
"""

from repro.net.allocator import LinkUsageSample, allocate_step, max_min_fair
from repro.net.topology import (
    MIN_LINK_CAPACITY_KBPS,
    CrossTraffic,
    EdgeLink,
    LinkEvent,
    NetworkTopology,
    available_topologies,
    get_topology,
    register_topology,
    stable_fraction,
    stable_user_key,
)

__all__ = [
    "LinkUsageSample",
    "allocate_step",
    "max_min_fair",
    "MIN_LINK_CAPACITY_KBPS",
    "CrossTraffic",
    "EdgeLink",
    "LinkEvent",
    "NetworkTopology",
    "available_topologies",
    "get_topology",
    "register_topology",
    "stable_fraction",
    "stable_user_key",
]
