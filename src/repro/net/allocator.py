"""Vectorized weighted max-min fair bandwidth allocation.

The allocation model follows the classic fair-share picture of *Optimization
Flow Control* (Low & Lapsley): at every slot the sessions actively
downloading on a link split its usable capacity.  A session's **demand** is
the most it could pull on its own (its access-link bandwidth — the
pre-drawn trace value), so an uncongested link passes every demand through
unchanged and a congested one water-fills: small demands are served in full,
large ones are clipped to a common fair level ``lambda`` (scaled by the
session's weight) chosen so the link is exactly filled.

Everything is whole-batch array math — sorting plus cumulative sums, no
per-session Python loop — and, crucially, both simulation engines (the
event-ordered scalar reference and the lockstep vector engine) call the
*same* :func:`allocate_step` on identically ordered demand vectors, which is
what makes networked scalar and vector traces bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs


@dataclass(frozen=True)
class LinkUsageSample:
    """Per-slot, per-link utilization record (the telemetry unit)."""

    step: int
    link_id: str
    capacity_kbps: float
    active_sessions: int
    demand_kbps: float
    allocated_kbps: float

    @property
    def utilization(self) -> float:
        """Fraction of the link's usable capacity allocated this slot."""
        if self.capacity_kbps <= 0:
            return 0.0
        return self.allocated_kbps / self.capacity_kbps

    def as_payload(self) -> dict:
        """Plain-dict view (telemetry payload)."""
        return {
            "step": self.step,
            "link_id": self.link_id,
            "capacity_kbps": self.capacity_kbps,
            "active_sessions": self.active_sessions,
            "demand_kbps": self.demand_kbps,
            "allocated_kbps": self.allocated_kbps,
            "utilization": self.utilization,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LinkUsageSample":
        """Inverse of :meth:`as_payload` (``utilization`` is derived)."""
        return cls(
            step=int(payload["step"]),
            link_id=str(payload["link_id"]),
            capacity_kbps=float(payload["capacity_kbps"]),
            active_sessions=int(payload["active_sessions"]),
            demand_kbps=float(payload["demand_kbps"]),
            allocated_kbps=float(payload["allocated_kbps"]),
        )


def max_min_fair(
    demands: np.ndarray, capacity: float, weights: np.ndarray | None = None
) -> np.ndarray:
    """Weighted max-min fair allocation of ``capacity`` across ``demands``.

    Returns one allocation per demand: ``min(d_i, lambda * w_i)`` with the
    water level ``lambda`` chosen so allocations sum to ``capacity`` when the
    link is congested, and ``d_i`` itself when total demand fits.  Weights
    default to 1 (plain max-min); a weight-2 session receives twice the fair
    share of a weight-1 session whenever both are capacity-limited.

    Vectorized water-filling: sort sessions by ``d_i / w_i``, locate the
    first index where saturating everyone cheaper exceeds the capacity
    (``searchsorted`` on a cumulative fill curve), and solve for ``lambda``
    on the remaining weight.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.size == 0:
        return demands.copy()
    if np.any(demands < 0):
        raise ValueError("demands must be non-negative")
    if capacity <= 0:
        raise ValueError("capacity must be positive")
    if weights is None:
        weights = np.ones_like(demands)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != demands.shape:
            raise ValueError("weights must match demands")
        if np.any(weights <= 0):
            raise ValueError("weights must be positive")

    total_demand = float(demands.sum())
    if total_demand <= capacity:
        return demands.copy()

    ratio = demands / weights
    order = np.argsort(ratio, kind="stable")
    demand_sorted = demands[order]
    weight_sorted = weights[order]
    ratio_sorted = ratio[order]
    cum_demand = np.cumsum(demand_sorted)
    cum_weight = np.cumsum(weight_sorted)
    total_weight = cum_weight[-1]
    # fill[k]: capacity used if the water level sits at ratio_sorted[k] —
    # sessions 0..k saturated, the rest at level * weight.  Non-decreasing.
    fill = cum_demand + ratio_sorted * (total_weight - cum_weight)
    saturated = int(np.searchsorted(fill, capacity, side="left"))
    served = cum_demand[saturated - 1] if saturated > 0 else 0.0
    remaining_weight = total_weight - (cum_weight[saturated - 1] if saturated > 0 else 0.0)
    level = (capacity - served) / remaining_weight
    return np.minimum(demands, level * weights)


def allocate_step(
    topology,
    step: int,
    link_index: np.ndarray,
    demands: np.ndarray,
    active: np.ndarray,
    weights: np.ndarray | None = None,
    usage_out: list[LinkUsageSample] | None = None,
) -> np.ndarray:
    """Fair-share every link of ``topology`` for one slot.

    ``link_index``/``demands``/``active``/``weights`` are batch-order arrays
    (one row per session); inactive rows receive allocation 0 and take no
    capacity.  Links are processed in topology order and each link's active
    rows are gathered in ascending batch order — the ordering contract that
    keeps the scalar and vector engines' allocations identical.  When
    ``usage_out`` is given, one :class:`LinkUsageSample` per link (idle links
    included) is appended.
    """
    capacities = topology.capacities_at(step)
    allocations = np.zeros_like(np.asarray(demands, dtype=float))
    profiling = obs.enabled()
    congested = 0
    with obs.span("allocator.water_fill"):
        for index, link in enumerate(topology.links):
            rows = active & (link_index == index)
            capacity = float(capacities[index])
            count = int(np.count_nonzero(rows))
            if count:
                link_demands = demands[rows]
                link_weights = None if weights is None else weights[rows]
                link_alloc = max_min_fair(link_demands, capacity, link_weights)
                allocations[rows] = link_alloc
                demand_total = float(link_demands.sum())
                allocated_total = float(link_alloc.sum())
                if profiling and demand_total > capacity:
                    congested += 1
            else:
                demand_total = 0.0
                allocated_total = 0.0
            if usage_out is not None:
                usage_out.append(
                    LinkUsageSample(
                        step=step,
                        link_id=link.link_id,
                        capacity_kbps=capacity,
                        active_sessions=count,
                        demand_kbps=demand_total,
                        allocated_kbps=allocated_total,
                    )
                )
    if profiling:
        obs.counter_add("allocator.slots")
        obs.counter_add("allocator.links", len(topology.links))
        obs.counter_add("allocator.congested_links", congested)
        obs.gauge_max("allocator.active_sessions", int(np.count_nonzero(active)))
    return allocations
