"""Vectorized weighted max-min fair bandwidth allocation.

The allocation model follows the classic fair-share picture of *Optimization
Flow Control* (Low & Lapsley): at every slot the sessions actively
downloading on a link split its usable capacity.  A session's **demand** is
the most it could pull on its own (its access-link bandwidth — the
pre-drawn trace value), so an uncongested link passes every demand through
unchanged and a congested one water-fills: small demands are served in full,
large ones are clipped to a common fair level ``lambda`` (scaled by the
session's weight) chosen so the link is exactly filled.

Everything is whole-batch array math — sorting plus cumulative sums, no
per-session Python loop — and, crucially, both simulation engines (the
event-ordered scalar reference and the lockstep vector engine) call the
*same* :func:`allocate_step` on identically ordered demand vectors, which is
what makes networked scalar and vector traces bitwise identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs


@dataclass(frozen=True)
class LinkUsageSample:
    """Per-slot, per-link utilization record (the telemetry unit).

    ``tier`` carries the link's tier (``"edge"``, ``"peering"``,
    ``"origin"``, …) so multi-tier telemetry consumers can aggregate per
    tier; flat topologies emit ``"edge"`` rows only.
    """

    step: int
    link_id: str
    capacity_kbps: float
    active_sessions: int
    demand_kbps: float
    allocated_kbps: float
    tier: str = "edge"

    @property
    def utilization(self) -> float:
        """Fraction of the link's usable capacity allocated this slot."""
        if self.capacity_kbps <= 0:
            return 0.0
        return self.allocated_kbps / self.capacity_kbps

    def as_payload(self) -> dict:
        """Plain-dict view (telemetry payload)."""
        return {
            "step": self.step,
            "link_id": self.link_id,
            "tier": self.tier,
            "capacity_kbps": self.capacity_kbps,
            "active_sessions": self.active_sessions,
            "demand_kbps": self.demand_kbps,
            "allocated_kbps": self.allocated_kbps,
            "utilization": self.utilization,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "LinkUsageSample":
        """Inverse of :meth:`as_payload` (``utilization`` is derived)."""
        return cls(
            step=int(payload["step"]),
            link_id=str(payload["link_id"]),
            capacity_kbps=float(payload["capacity_kbps"]),
            active_sessions=int(payload["active_sessions"]),
            demand_kbps=float(payload["demand_kbps"]),
            allocated_kbps=float(payload["allocated_kbps"]),
            tier=str(payload.get("tier", "edge")),
        )


def max_min_fair(
    demands: np.ndarray, capacity: float, weights: np.ndarray | None = None
) -> np.ndarray:
    """Weighted max-min fair allocation of ``capacity`` across ``demands``.

    Returns one allocation per demand: ``min(d_i, lambda * w_i)`` with the
    water level ``lambda`` chosen so allocations sum to ``capacity`` when the
    link is congested, and ``d_i`` itself when total demand fits.  Weights
    default to 1 (plain max-min); a weight-2 session receives twice the fair
    share of a weight-1 session whenever both are capacity-limited.

    Vectorized water-filling: sort sessions by ``d_i / w_i``, locate the
    first index where saturating everyone cheaper exceeds the capacity
    (``searchsorted`` on a cumulative fill curve), and solve for ``lambda``
    on the remaining weight.
    """
    demands = np.asarray(demands, dtype=float)
    if demands.size == 0:
        return demands.copy()
    # NaN slips past a plain sign check (``nan < 0`` is False), so validate
    # finiteness explicitly — a NaN demand would otherwise silently poison
    # every allocation on the link.
    if not np.all(np.isfinite(demands)) or np.any(demands < 0):
        raise ValueError("demands must be finite and non-negative")
    if not np.isfinite(capacity) or capacity <= 0:
        raise ValueError("capacity must be finite and positive")
    if weights is None:
        weights = np.ones_like(demands)
    else:
        weights = np.asarray(weights, dtype=float)
        if weights.shape != demands.shape:
            raise ValueError("weights must match demands")
        if not np.all(np.isfinite(weights)) or np.any(weights <= 0):
            raise ValueError("weights must be finite and positive")

    total_demand = float(demands.sum())
    if total_demand <= capacity:
        return demands.copy()

    ratio = demands / weights
    order = np.argsort(ratio, kind="stable")
    demand_sorted = demands[order]
    weight_sorted = weights[order]
    ratio_sorted = ratio[order]
    cum_demand = np.cumsum(demand_sorted)
    cum_weight = np.cumsum(weight_sorted)
    total_weight = cum_weight[-1]
    # fill[k]: capacity used if the water level sits at ratio_sorted[k] —
    # sessions 0..k saturated, the rest at level * weight.  Non-decreasing.
    fill = cum_demand + ratio_sorted * (total_weight - cum_weight)
    saturated = int(np.searchsorted(fill, capacity, side="left"))
    served = cum_demand[saturated - 1] if saturated > 0 else 0.0
    remaining_weight = total_weight - (cum_weight[saturated - 1] if saturated > 0 else 0.0)
    level = (capacity - served) / remaining_weight
    return np.minimum(demands, level * weights)


def _session_routes(
    topology, link_index: np.ndarray, active: np.ndarray, full_path
) -> np.ndarray:
    """Boolean ``(num_sessions, num_links)`` route matrix for one slot.

    Row *i* marks every link session *i* traverses this slot: its edge link
    always, plus the edge link's uplink chain when ``full_path[i]`` (an
    edge-cache miss).  ``full_path=None`` means every session traverses its
    full path; inactive rows are all-False.
    """
    num_sessions = link_index.shape[0]
    routes = np.zeros((num_sessions, topology.num_links), dtype=bool)
    rows = np.flatnonzero(active)
    if rows.size == 0:
        return routes
    if full_path is None:
        routes[rows] = topology.path_matrix[link_index[rows]]
    else:
        full_path = np.asarray(full_path, dtype=bool)
        miss = rows[full_path[rows]]
        hit = rows[~full_path[rows]]
        routes[miss] = topology.path_matrix[link_index[miss]]
        routes[hit, link_index[hit]] = True
    return routes


def path_water_fill(
    demands: np.ndarray,
    capacities: np.ndarray,
    routes: np.ndarray,
    weights: np.ndarray,
) -> np.ndarray:
    """Path-aware weighted max-min fair allocation (fixed-point sweeps).

    Starting from every session at its demand, sweep links in canonical
    (topology) order applying single-link water-filling to each link's
    current allocations; a sweep only ever *lowers* rates, and sweeping
    repeats until a full pass changes nothing.  A session's rate ends up
    bounded by the min of its links' fair shares; on single-link paths the
    first sweep is exactly the classic allocation.  Termination is bounded:
    each non-final sweep fills at least one link exactly to capacity, after
    which later (rate-lowering) sweeps can never congest it again.
    """
    alloc = np.where(routes.any(axis=1), demands, 0.0)
    num_links = capacities.shape[0]
    for _ in range(num_links + 1):
        changed = False
        for index in range(num_links):
            rows = routes[:, index]
            if not rows.any():
                continue
            current = alloc[rows]
            filled = max_min_fair(current, float(capacities[index]), weights[rows])
            if np.any(filled < current):
                alloc[rows] = filled
                changed = True
        if not changed:
            break
    return alloc


def low_lapsley(
    demands: np.ndarray,
    capacities: np.ndarray,
    routes: np.ndarray,
    weights: np.ndarray,
    *,
    gamma: float = 0.5,
    tol: float = 1e-6,
    max_iters: int = 200,
) -> np.ndarray:
    """Primal-dual optimization flow control (Low & Lapsley).

    Each link *l* carries a price ``p_l``; each session solves its local
    problem in closed form — rate ``x_s = min(d_s, w_s / q_s)`` where ``q_s``
    is the price sum along its route (log-utility ⇒ weighted proportional
    fairness) — and prices ascend the dual gradient
    ``p_l ← max(0, p_l + gamma · s_l · (y_l − c_l) / c_l)`` with ``y_l`` the
    link's arrival rate and ``s_l`` a per-link step scale that keeps price
    magnitudes in the regime of ``w/c``.  Iteration stops at a fixed
    deterministic tolerance (or cap), and a final feasibility projection
    scales every session by the worst overload ratio on its path, so the
    result never exceeds any capacity.
    """
    demands = np.where(routes.any(axis=1), demands, 0.0)
    if not demands.any():
        return np.zeros_like(demands)
    weight_load = routes.T.astype(float) @ weights  # total weight per link
    scale = np.maximum(weight_load, 1.0) / capacities
    prices = scale.copy()
    rates = demands.copy()
    for _ in range(max_iters):
        path_price = routes.astype(float) @ prices
        with np.errstate(divide="ignore"):
            unconstrained = np.where(path_price > 0.0, weights / path_price, np.inf)
        new_rates = np.minimum(demands, unconstrained)
        arrivals = routes.T.astype(float) @ new_rates
        prices = np.maximum(
            0.0, prices + gamma * scale * (arrivals - capacities) / capacities
        )
        if np.max(np.abs(new_rates - rates)) <= tol * max(1.0, float(new_rates.max())):
            rates = new_rates
            break
        rates = new_rates
    # Feasibility projection: scale each session by the worst overload on its
    # path so no link ends above capacity (prices may not have fully settled).
    arrivals = routes.T.astype(float) @ rates
    link_scale = np.where(arrivals > capacities, capacities / np.maximum(arrivals, 1e-12), 1.0)
    session_scale = np.where(routes, link_scale[None, :], 1.0).min(axis=1)
    return rates * session_scale


def allocate_step(
    topology,
    step: int,
    link_index: np.ndarray,
    demands: np.ndarray,
    active: np.ndarray,
    weights: np.ndarray | None = None,
    usage_out: list[LinkUsageSample] | None = None,
    full_path: np.ndarray | None = None,
) -> np.ndarray:
    """Allocate every link of ``topology`` for one slot.

    ``link_index``/``demands``/``active``/``weights``/``full_path`` are
    batch-order arrays (one row per session); inactive rows receive
    allocation 0 and take no capacity.  Links are processed in topology
    order and each link's active rows are gathered in ascending batch order
    — the ordering contract that keeps the scalar and vector engines'
    allocations identical.  When ``usage_out`` is given, one
    :class:`LinkUsageSample` per link (idle links included) is appended.

    On flat topologies running ``max_min_fair`` this is the historical
    independent per-link water-fill, bit for bit.  Multi-tier topologies
    (or ``topology.allocator == "low_lapsley"``) route through the
    path-aware allocators: ``full_path`` marks the sessions whose download
    misses the edge cache this slot and therefore traverses the edge link's
    whole uplink chain (``None`` → every session takes its full path).
    """
    capacities = topology.capacities_at(step)
    demands = np.asarray(demands, dtype=float)
    allocations = np.zeros_like(demands)
    profiling = obs.enabled()
    congested = 0
    path_aware = topology.has_tiers or topology.allocator != "max_min_fair"
    with obs.span("allocator.water_fill"):
        if not path_aware:
            for index, link in enumerate(topology.links):
                rows = active & (link_index == index)
                capacity = float(capacities[index])
                count = int(np.count_nonzero(rows))
                if count:
                    link_demands = demands[rows]
                    link_weights = None if weights is None else weights[rows]
                    link_alloc = max_min_fair(link_demands, capacity, link_weights)
                    allocations[rows] = link_alloc
                    demand_total = float(link_demands.sum())
                    allocated_total = float(link_alloc.sum())
                    if profiling and demand_total > capacity:
                        congested += 1
                else:
                    demand_total = 0.0
                    allocated_total = 0.0
                if usage_out is not None:
                    usage_out.append(
                        LinkUsageSample(
                            step=step,
                            link_id=link.link_id,
                            capacity_kbps=capacity,
                            active_sessions=count,
                            demand_kbps=demand_total,
                            allocated_kbps=allocated_total,
                            tier=link.tier,
                        )
                    )
        else:
            if not np.all(np.isfinite(demands)) or np.any(demands < 0):
                raise ValueError("demands must be finite and non-negative")
            if weights is None:
                weights_arr = np.ones_like(demands)
            else:
                weights_arr = np.asarray(weights, dtype=float)
                if not np.all(np.isfinite(weights_arr)) or np.any(weights_arr <= 0):
                    raise ValueError("weights must be finite and positive")
            link_index = np.asarray(link_index)
            routes = _session_routes(topology, link_index, active, full_path)
            if topology.allocator == "low_lapsley":
                allocations = low_lapsley(demands, capacities, routes, weights_arr)
            else:
                allocations = path_water_fill(
                    demands, capacities, routes, weights_arr
                )
            for index, link in enumerate(topology.links):
                rows = routes[:, index]
                capacity = float(capacities[index])
                count = int(np.count_nonzero(rows))
                demand_total = float(demands[rows].sum()) if count else 0.0
                allocated_total = float(allocations[rows].sum()) if count else 0.0
                if profiling and demand_total > capacity:
                    congested += 1
                if usage_out is not None:
                    usage_out.append(
                        LinkUsageSample(
                            step=step,
                            link_id=link.link_id,
                            capacity_kbps=capacity,
                            active_sessions=count,
                            demand_kbps=demand_total,
                            allocated_kbps=allocated_total,
                            tier=link.tier,
                        )
                    )
    if profiling:
        obs.counter_add("allocator.slots")
        obs.counter_add("allocator.links", len(topology.links))
        obs.counter_add("allocator.congested_links", congested)
        obs.gauge_max("allocator.active_sessions", int(np.count_nonzero(active)))
    return allocations
