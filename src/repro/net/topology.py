"""Edge-link network topologies with deterministic user attachment.

A :class:`NetworkTopology` is a set of :class:`EdgeLink` objects — shared
bottlenecks in the spirit of the *Optimization Flow Control* model (Low &
Lapsley): every playback session attaches to exactly one edge link and all
sessions concurrently downloading on a link fair-share its capacity (the
allocation itself lives in :mod:`repro.net.allocator`).

Three properties make topologies safe to ship to fleet shard workers:

* **Picklable** — everything here is a frozen dataclass of plain values.
* **Deterministic attachment** — users map to links via the md5-based
  :func:`stable_fraction` idiom (stable across processes and Python runs),
  weighted by each link's ``user_share``.
* **Deterministic capacity profile** — a link's usable capacity at a slot is
  a pure function of the slot index: base capacity, scheduled
  :class:`LinkEvent` windows (outages, brown-outs) and an optional diurnal
  :class:`CrossTraffic` process.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass, replace
from functools import cached_property
from typing import Callable, Sequence

import numpy as np

#: Usable link capacity never drops below this (keeps Equation 3 finite even
#: during outages: downloads become very slow, not undefined).
MIN_LINK_CAPACITY_KBPS = 10.0

#: Allocators a topology (or FleetConfig) may select; implementations live in
#: :mod:`repro.net.allocator`.
ALLOCATORS = ("low_lapsley", "max_min_fair")


def _stable_digest(user_id: str, salt: str) -> str:
    return hashlib.md5(
        f"{salt}:{user_id}".encode(), usedforsecurity=False
    ).hexdigest()


def stable_fraction(user_id: str, salt: str = "") -> float:
    """Deterministic pseudo-uniform value in [0, 1) derived from a user id.

    Unlike ``hash()`` this is stable across processes and Python runs, so the
    same users land in the same cohort (scenario group, edge link, …) in
    every shard and worker.
    """
    return int(_stable_digest(user_id, salt)[:8], 16) / float(0x100000000)


def stable_user_key(user_id: str, salt: str = "user-rng") -> tuple[int, int]:
    """Two stable 32-bit words derived from a user id (a ``spawn_key``).

    Used to give every user their own ``SeedSequence`` substream keyed by
    identity rather than by shard position, which is what makes spec-batched
    fleet runs invariant to shard and worker counts.
    """
    digest = _stable_digest(user_id, salt)
    return int(digest[:8], 16), int(digest[8:16], 16)


@dataclass(frozen=True)
class CrossTraffic:
    """Deterministic diurnal background load on a link (kbps).

    The load at slot ``t`` is ``base + peak * (1 + cos(2*pi*(t/period -
    phase))) / 2`` — a smooth daily cycle peaking at ``phase`` (fraction of
    the period) with amplitude ``peak`` on top of a constant ``base``.
    """

    base_kbps: float = 0.0
    peak_kbps: float = 0.0
    period: int = 64
    phase: float = 0.5

    def __post_init__(self) -> None:
        if self.base_kbps < 0 or self.peak_kbps < 0:
            raise ValueError("cross-traffic loads must be non-negative")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def at(self, step: int) -> float:
        """Background load (kbps) during slot ``step``."""
        if self.peak_kbps <= 0.0:
            return self.base_kbps
        cycle = math.cos(2.0 * math.pi * (step / self.period - self.phase))
        return self.base_kbps + self.peak_kbps * (1.0 + cycle) / 2.0

    def scaled(self, factor: float) -> "CrossTraffic":
        """Copy with base and peak loads multiplied by ``factor``.

        The diurnal *shape* (period, phase) is preserved; only the amplitude
        changes — how longitudinal campaigns evolve background load across
        simulated days.
        """
        if not math.isfinite(factor) or factor < 0:
            raise ValueError(
                f"cross-traffic scale factor must be finite and non-negative, "
                f"got {factor!r}"
            )
        return replace(
            self, base_kbps=self.base_kbps * factor, peak_kbps=self.peak_kbps * factor
        )


@dataclass(frozen=True)
class LinkEvent:
    """A scheduled capacity change over a slot window (e.g. an outage)."""

    start_step: int
    end_step: int
    capacity_multiplier: float

    def __post_init__(self) -> None:
        if self.end_step <= self.start_step:
            raise ValueError("end_step must be after start_step")
        if self.capacity_multiplier < 0:
            raise ValueError("capacity_multiplier must be non-negative")

    def active_at(self, step: int) -> bool:
        """True while the event window covers ``step``."""
        return self.start_step <= step < self.end_step


@dataclass(frozen=True)
class CacheModel:
    """Deterministic per-user CDN edge-cache model.

    Segment ``k`` of a user's playback is an edge-cache **hit** (download
    stays on the edge link) or a **miss** (download traverses the edge link's
    full upstream path) according to the stable-digest draw
    ``stable_fraction(f"{user_id}:{k}", salt) < hit_ratio`` — a pure function
    of identity, so every backend, shard and worker agrees segment for
    segment.
    """

    hit_ratio: float
    salt: str = "cdn-cache"

    def __post_init__(self) -> None:
        if not (0.0 <= self.hit_ratio <= 1.0):  # NaN fails this too
            raise ValueError(
                f"hit_ratio must be a finite value in [0, 1], got {self.hit_ratio!r}"
            )

    def is_miss(self, user_id: str, segment_index: int) -> bool:
        """True when segment ``segment_index`` misses the edge cache."""
        return (
            stable_fraction(f"{user_id}:{segment_index}", self.salt)
            >= self.hit_ratio
        )

    def miss_profile(self, user_id: str, num_segments: int) -> np.ndarray:
        """Boolean miss mask for a user's first ``num_segments`` segments."""
        return np.fromiter(
            (self.is_miss(user_id, k) for k in range(num_segments)),
            dtype=bool,
            count=num_segments,
        )


@dataclass(frozen=True)
class EdgeLink:
    """One shared bottleneck link.

    ``user_share`` is the link's relative weight in user attachment: a link
    with twice the share of another attracts (deterministically) twice the
    users.  Users only ever attach to ``tier == "edge"`` links; upstream
    tiers (``"peering"``, ``"origin"``) are reached through an edge link's
    ``uplinks`` chain — the ordered link ids a cache-miss download traverses
    beyond the edge.
    """

    link_id: str
    capacity_kbps: float
    user_share: float = 1.0
    cross_traffic: CrossTraffic | None = None
    events: tuple[LinkEvent, ...] = ()
    tier: str = "edge"
    uplinks: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.link_id:
            raise ValueError("link_id must be non-empty")
        if self.capacity_kbps <= 0:
            raise ValueError("capacity_kbps must be positive")
        if self.user_share <= 0:
            raise ValueError("user_share must be positive")
        if not self.tier:
            raise ValueError("tier must be non-empty")
        if self.uplinks and self.tier != "edge":
            raise ValueError(
                f"only edge-tier links may declare uplinks; {self.link_id!r} "
                f"is tier {self.tier!r}"
            )
        if len(set(self.uplinks)) != len(self.uplinks):
            raise ValueError(f"duplicate uplinks on {self.link_id!r}: {self.uplinks}")
        if self.link_id in self.uplinks:
            raise ValueError(f"{self.link_id!r} cannot be its own uplink")

    def capacity_at(self, step: int) -> float:
        """Usable capacity (kbps) for sessions during slot ``step``."""
        capacity = self.capacity_kbps
        for event in self.events:
            if event.active_at(step):
                capacity *= event.capacity_multiplier
        if self.cross_traffic is not None:
            capacity -= self.cross_traffic.at(step)
        return max(capacity, MIN_LINK_CAPACITY_KBPS)


@dataclass(frozen=True)
class NetworkTopology:
    """An immutable set of links with deterministic user attachment.

    Flat topologies (every link ``tier == "edge"``, no ``uplinks``) behave
    exactly as before.  Multi-tier topologies add upstream links that a
    download traverses on an edge-cache miss (see :class:`CacheModel`):
    the session's rate is then bounded by every link on its path.
    ``allocator`` names the rate-control algorithm of
    :mod:`repro.net.allocator` used for the topology (``"max_min_fair"``
    water-filling or ``"low_lapsley"`` primal-dual optimization flow
    control).
    """

    links: tuple[EdgeLink, ...]
    name: str = "topology"
    salt: str = "net-link"
    cache: CacheModel | None = None
    allocator: str = "max_min_fair"

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a topology needs at least one link")
        ids = [link.link_id for link in self.links]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate link ids in topology: {ids}")
        if self.allocator not in ALLOCATORS:
            raise ValueError(
                f"unknown allocator {self.allocator!r}; "
                f"available: {list(ALLOCATORS)}"
            )
        known = set(ids)
        edge_tiers = 0
        for link in self.links:
            if link.tier == "edge":
                edge_tiers += 1
            missing = [up for up in link.uplinks if up not in known]
            if missing:
                raise ValueError(
                    f"link {link.link_id!r} references unknown uplinks {missing}"
                )
        if edge_tiers == 0:
            raise ValueError("a topology needs at least one edge-tier link")

    @property
    def num_links(self) -> int:
        return len(self.links)

    @property
    def link_ids(self) -> tuple[str, ...]:
        """Link ids in topology order."""
        return tuple(link.link_id for link in self.links)

    def index_of(self, link_id: str) -> int:
        """Topology index of a link id."""
        for index, link in enumerate(self.links):
            if link.link_id == link_id:
                return index
        raise KeyError(f"unknown link {link_id!r}; available: {list(self.link_ids)}")

    @cached_property
    def has_tiers(self) -> bool:
        """True when any link declares an upstream path (multi-tier topology)."""
        return any(link.uplinks for link in self.links)

    @cached_property
    def edge_indices(self) -> tuple[int, ...]:
        """Topology indices of the user-attachable (edge-tier) links."""
        return tuple(
            index for index, link in enumerate(self.links) if link.tier == "edge"
        )

    @cached_property
    def path_matrix(self) -> np.ndarray:
        """Boolean ``(num_links, num_links)``: ``[e, l]`` = link ``l`` is on
        the full (cache-miss) path of edge link ``e``.  Rows of non-edge
        links are just their own one-hot (they never originate sessions)."""
        matrix = np.eye(self.num_links, dtype=bool)
        index = {link.link_id: i for i, link in enumerate(self.links)}
        for i, link in enumerate(self.links):
            for up in link.uplinks:
                matrix[i, index[up]] = True
        return matrix

    def path_for(self, link_id: str) -> tuple[str, ...]:
        """Full cache-miss path of an edge link: itself, then its uplinks."""
        link = self.links[self.index_of(link_id)]
        return (link.link_id, *link.uplinks)

    def link_index_for(self, user_id: str) -> int:
        """Deterministic link attachment of a user (``user_share``-weighted).

        Only edge-tier links attract users; upstream tiers are reached via
        ``uplinks`` on cache misses.  On flat topologies (every link is edge
        tier) this is the historical attachment, bit for bit.
        """
        draw = stable_fraction(user_id, self.salt)
        edge = self.edge_indices
        total = sum(self.links[index].user_share for index in edge)
        cumulative = 0.0
        for index in edge:
            cumulative += self.links[index].user_share / total
            if draw < cumulative:
                return index
        return edge[-1]

    def link_for(self, user_id: str) -> EdgeLink:
        """The edge link a user attaches to."""
        return self.links[self.link_index_for(user_id)]

    def capacities_at(self, step: int) -> np.ndarray:
        """Per-link usable capacity (kbps) during slot ``step``."""
        return np.asarray([link.capacity_at(step) for link in self.links])

    def with_event(self, link_id: str, event: LinkEvent) -> "NetworkTopology":
        """Copy of the topology with ``event`` appended to one link."""
        index = self.index_of(link_id)
        links = list(self.links)
        links[index] = replace(links[index], events=links[index].events + (event,))
        return replace(self, links=tuple(links))

    def with_cross_traffic(self, cross_traffic: CrossTraffic) -> "NetworkTopology":
        """Copy of the topology with ``cross_traffic`` applied to every link."""
        return replace(
            self,
            links=tuple(
                replace(link, cross_traffic=cross_traffic) for link in self.links
            ),
        )

    def with_cross_traffic_scale(self, factor: float) -> "NetworkTopology":
        """Copy with every link's cross-traffic amplitude scaled by ``factor``.

        Links without cross traffic are left untouched, so the helper
        composes with scenario shaping (e.g. ``evening_peak`` adds the
        profiles, the longitudinal drift then grows them day over day).
        """
        if not math.isfinite(factor) or factor < 0:
            # validate up front even when no link carries cross traffic —
            # otherwise a bad factor only explodes links-deep into a run
            raise ValueError(
                f"cross-traffic scale factor must be finite and non-negative, "
                f"got {factor!r}"
            )
        return replace(
            self,
            links=tuple(
                link
                if link.cross_traffic is None
                else replace(link, cross_traffic=link.cross_traffic.scaled(factor))
                for link in self.links
            ),
        )

    def restrict(self, link_ids: Sequence[str]) -> "NetworkTopology":
        """Sub-topology keeping only ``link_ids`` (in topology order).

        Used by the fleet orchestrator to hand each shard exactly the links
        it owns; attachment on a restricted topology is only meaningful for
        users whose link survived, so restricted specs should carry explicit
        ``SessionSpec.link`` ids (the orchestrator always sets them).
        """
        keep = set(link_ids)
        unknown = keep - set(self.link_ids)
        if unknown:
            raise KeyError(f"unknown links {sorted(unknown)}")
        return replace(
            self, links=tuple(link for link in self.links if link.link_id in keep)
        )

    @cached_property
    def _components(self) -> tuple[tuple[int, ...], ...]:
        """Connected components of the uplink graph, each a tuple of link
        indices in topology order; components ordered by smallest member.

        Links sharing any path must co-shard (the allocator couples them), so
        sharding distributes whole components.  On flat topologies every link
        is a singleton component in topology order, which reproduces the
        historical per-link round-robin exactly.
        """
        parent = list(range(self.num_links))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        index = {link.link_id: i for i, link in enumerate(self.links)}
        for i, link in enumerate(self.links):
            for up in link.uplinks:
                root_a, root_b = find(i), find(index[up])
                if root_a != root_b:
                    parent[max(root_a, root_b)] = min(root_a, root_b)
        members: dict[int, list[int]] = {}
        for i in range(self.num_links):
            members.setdefault(find(i), []).append(i)
        return tuple(tuple(members[root]) for root in sorted(members))

    def shard_links(self, num_shards: int) -> list[list[str]]:
        """Round-robin assignment of link ids to shards (some may be empty).

        Whole uplink-connected components are assigned together so a shard
        always owns every link of each of its sessions' paths.
        """
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        shards: list[list[str]] = [[] for _ in range(num_shards)]
        for position, component in enumerate(self._components):
            shards[position % num_shards].extend(
                self.links[i].link_id for i in component
            )
        return shards

    def shard_profiles(self, profiles: Sequence, num_shards: int) -> list[list]:
        """Shard user profiles *by link* so allocation coupling stays intra-shard.

        Every user of a link lands in the shard that owns the link, so a
        shard sees the complete set of competitors on each of its links —
        which is also what makes networked fleet aggregates invariant to the
        shard count (links never straddle shards).  Profile order within a
        shard follows the input order.
        """
        link_shards = self.shard_links(num_shards)
        shard_of_link = {
            link_id: shard
            for shard, ids in enumerate(link_shards)
            for link_id in ids
        }
        shards: list[list] = [[] for _ in range(num_shards)]
        for profile in profiles:
            link = self.links[self.link_index_for(profile.user_id)]
            shards[shard_of_link[link.link_id]].append(profile)
        return shards


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: dict[str, Callable[[], NetworkTopology]] = {}


def register_topology(name: str, factory: Callable[[], NetworkTopology]) -> None:
    """Register a topology factory under ``name`` (overwrites silently)."""
    _REGISTRY[name] = factory


def available_topologies() -> list[str]:
    """Registered topology names, sorted."""
    return sorted(_REGISTRY)


def get_topology(topology: str | NetworkTopology | None) -> NetworkTopology | None:
    """Resolve a topology name (pass instances and ``None`` through)."""
    if topology is None or isinstance(topology, NetworkTopology):
        return topology
    try:
        factory = _REGISTRY[topology]
    except KeyError:
        raise KeyError(
            f"unknown topology {topology!r}; available: {available_topologies()}"
        ) from None
    return factory()


def _single_bottleneck() -> NetworkTopology:
    return NetworkTopology(
        name="single_bottleneck",
        links=(EdgeLink("bottleneck", capacity_kbps=500_000.0),),
    )


def _dual_isp() -> NetworkTopology:
    return NetworkTopology(
        name="dual_isp",
        links=(
            EdgeLink("fiber", capacity_kbps=800_000.0, user_share=0.65),
            EdgeLink("dsl", capacity_kbps=120_000.0, user_share=0.35),
        ),
    )


def _metro_8() -> NetworkTopology:
    capacities = (300_000.0, 250_000.0, 200_000.0, 160_000.0,
                  120_000.0, 100_000.0, 80_000.0, 60_000.0)
    return NetworkTopology(
        name="metro_8",
        links=tuple(
            EdgeLink(f"metro{i}", capacity_kbps=capacity)
            for i, capacity in enumerate(capacities)
        ),
    )


def _cdn_3tier() -> NetworkTopology:
    """Three-tier CDN: edge caches → ISP peering → shared origin.

    Edge capacities sum to 135 Mbps against 110 Mbps of peering and an
    80 Mbps origin, so cold caches (misses traversing the full path) push
    congestion upstream — the cache-storm / origin-overload regime.
    """
    return NetworkTopology(
        name="cdn_3tier",
        cache=CacheModel(hit_ratio=0.7),
        links=(
            EdgeLink("edge_a", 60_000.0, user_share=0.4,
                     uplinks=("peer_a", "origin")),
            EdgeLink("edge_b", 45_000.0, user_share=0.35,
                     uplinks=("peer_a", "origin")),
            EdgeLink("edge_c", 30_000.0, user_share=0.25,
                     uplinks=("peer_b", "origin")),
            EdgeLink("peer_a", 70_000.0, tier="peering"),
            EdgeLink("peer_b", 40_000.0, tier="peering"),
            EdgeLink("origin", 80_000.0, tier="origin"),
        ),
    )


register_topology("single_bottleneck", _single_bottleneck)
register_topology("dual_isp", _dual_isp)
register_topology("metro_8", _metro_8)
register_topology("cdn_3tier", _cdn_3tier)
