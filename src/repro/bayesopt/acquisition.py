"""Acquisition functions for minimisation problems.

LingXi minimises the predicted exit rate, so all acquisitions below are
written for minimisation: larger acquisition values indicate more promising
candidates.
"""

from __future__ import annotations

import numpy as np
from scipy import stats


def expected_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """Expected improvement below the incumbent ``best`` (minimisation)."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    improvement = best - mean - xi
    z = improvement / std
    return improvement * stats.norm.cdf(z) + std * stats.norm.pdf(z)


def probability_of_improvement(
    mean: np.ndarray, std: np.ndarray, best: float, xi: float = 0.01
) -> np.ndarray:
    """Probability of improving on the incumbent ``best`` (minimisation)."""
    mean = np.asarray(mean, dtype=float)
    std = np.maximum(np.asarray(std, dtype=float), 1e-12)
    return stats.norm.cdf((best - mean - xi) / std)


def lower_confidence_bound(mean: np.ndarray, std: np.ndarray, kappa: float = 2.0) -> np.ndarray:
    """Negative LCB so that larger is better for minimisation."""
    mean = np.asarray(mean, dtype=float)
    std = np.asarray(std, dtype=float)
    return -(mean - kappa * std)
