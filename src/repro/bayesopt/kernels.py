"""Covariance kernels for Gaussian-process regression."""

from __future__ import annotations

import numpy as np


def _pairwise_sq_dists(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a = np.atleast_2d(a)
    b = np.atleast_2d(b)
    if a.shape[1] != b.shape[1]:
        raise ValueError("inputs must have the same dimensionality")
    return np.sum(a**2, axis=1)[:, None] + np.sum(b**2, axis=1)[None, :] - 2.0 * a @ b.T


class RBFKernel:
    """Squared-exponential kernel ``s^2 * exp(-||x-y||^2 / (2 l^2))``."""

    def __init__(self, length_scale: float = 1.0, signal_variance: float = 1.0) -> None:
        if length_scale <= 0 or signal_variance <= 0:
            raise ValueError("length_scale and signal_variance must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Covariance matrix between row sets ``a`` and ``b``."""
        sq = np.maximum(_pairwise_sq_dists(a, b), 0.0)
        return self.signal_variance * np.exp(-0.5 * sq / self.length_scale**2)


class Matern52Kernel:
    """Matérn kernel with smoothness 5/2 (a common BO default)."""

    def __init__(self, length_scale: float = 1.0, signal_variance: float = 1.0) -> None:
        if length_scale <= 0 or signal_variance <= 0:
            raise ValueError("length_scale and signal_variance must be positive")
        self.length_scale = length_scale
        self.signal_variance = signal_variance

    def __call__(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Covariance matrix between row sets ``a`` and ``b``."""
        distance = np.sqrt(np.maximum(_pairwise_sq_dists(a, b), 0.0))
        scaled = np.sqrt(5.0) * distance / self.length_scale
        return self.signal_variance * (1.0 + scaled + scaled**2 / 3.0) * np.exp(-scaled)
