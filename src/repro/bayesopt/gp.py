"""Gaussian-process regression with a Cholesky solve."""

from __future__ import annotations

import numpy as np

from repro.bayesopt.kernels import RBFKernel


class GaussianProcess:
    """Zero-mean GP regression surrogate.

    Observations are internally centred on their mean, which keeps the
    zero-mean assumption harmless for exit-rate surfaces whose baseline is far
    from zero.
    """

    def __init__(self, kernel=None, noise: float = 1e-4) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel or RBFKernel()
        self.noise = noise
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._alpha: np.ndarray | None = None
        self._cholesky: np.ndarray | None = None

    @property
    def num_observations(self) -> int:
        """Number of fitted observations."""
        return 0 if self._x is None else self._x.shape[0]

    def fit(
        self, x: np.ndarray, y: np.ndarray, noise_scale: np.ndarray | None = None
    ) -> "GaussianProcess":
        """Fit the GP to observations ``x`` (n, d) and targets ``y`` (n,).

        ``noise_scale`` optionally scales the observation-noise variance per
        observation (``noise * noise_scale[i]`` on the diagonal): values above
        1 soften an observation's pull on the posterior, which is how decayed
        warm-start trials enter the online optimizer as weaker evidence.  The
        default (all ones) reproduces the homoscedastic fit exactly.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("need at least one observation")
        if noise_scale is None:
            noise_diag = np.full(x.shape[0], self.noise + 1e-10)
        else:
            noise_scale = np.asarray(noise_scale, dtype=float).ravel()
            if noise_scale.shape[0] != x.shape[0]:
                raise ValueError("noise_scale must have one entry per observation")
            if np.any(noise_scale <= 0):
                raise ValueError("noise_scale entries must be positive")
            noise_diag = (self.noise + 1e-10) * noise_scale
        self._x = x
        self._y_mean = float(y.mean())
        centred = y - self._y_mean
        covariance = self.kernel(x, x) + np.diag(noise_diag)
        # Add jitter until the Cholesky succeeds (degenerate repeated points).
        jitter = 0.0
        for _ in range(6):
            try:
                self._cholesky = np.linalg.cholesky(covariance + jitter * np.eye(x.shape[0]))
                break
            except np.linalg.LinAlgError:
                jitter = max(jitter * 10.0, 1e-8)
        else:
            raise np.linalg.LinAlgError("covariance matrix is not positive definite")
        self._alpha = np.linalg.solve(
            self._cholesky.T, np.linalg.solve(self._cholesky, centred)
        )
        return self

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points ``x``."""
        if self._x is None or self._alpha is None or self._cholesky is None:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        cross = self.kernel(x, self._x)
        mean = cross @ self._alpha + self._y_mean
        v = np.linalg.solve(self._cholesky, cross.T)
        prior_var = np.diag(self.kernel(x, x))
        variance = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        return mean, np.sqrt(variance)
