"""Gaussian-process regression with a Cholesky solve."""

from __future__ import annotations

import numpy as np

from repro.bayesopt.kernels import RBFKernel


class GaussianProcess:
    """Zero-mean GP regression surrogate.

    Observations are internally centred on their mean, which keeps the
    zero-mean assumption harmless for exit-rate surfaces whose baseline is far
    from zero.
    """

    def __init__(self, kernel=None, noise: float = 1e-4) -> None:
        if noise < 0:
            raise ValueError("noise must be non-negative")
        self.kernel = kernel or RBFKernel()
        self.noise = noise
        self._x: np.ndarray | None = None
        self._y_mean = 0.0
        self._alpha: np.ndarray | None = None
        self._cholesky: np.ndarray | None = None

    @property
    def num_observations(self) -> int:
        """Number of fitted observations."""
        return 0 if self._x is None else self._x.shape[0]

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GaussianProcess":
        """Fit the GP to observations ``x`` (n, d) and targets ``y`` (n,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y, dtype=float).ravel()
        if x.shape[0] != y.shape[0]:
            raise ValueError("x and y must have the same number of rows")
        if x.shape[0] == 0:
            raise ValueError("need at least one observation")
        self._x = x
        self._y_mean = float(y.mean())
        centred = y - self._y_mean
        covariance = self.kernel(x, x) + (self.noise + 1e-10) * np.eye(x.shape[0])
        # Add jitter until the Cholesky succeeds (degenerate repeated points).
        jitter = 0.0
        for _ in range(6):
            try:
                self._cholesky = np.linalg.cholesky(covariance + jitter * np.eye(x.shape[0]))
                break
            except np.linalg.LinAlgError:
                jitter = max(jitter * 10.0, 1e-8)
        else:
            raise np.linalg.LinAlgError("covariance matrix is not positive definite")
        self._alpha = np.linalg.solve(
            self._cholesky.T, np.linalg.solve(self._cholesky, centred)
        )
        return self

    def predict(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Posterior mean and standard deviation at query points ``x``."""
        if self._x is None or self._alpha is None or self._cholesky is None:
            raise RuntimeError("predict called before fit")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        cross = self.kernel(x, self._x)
        mean = cross @ self._alpha + self._y_mean
        v = np.linalg.solve(self._cholesky, cross.T)
        prior_var = np.diag(self.kernel(x, x))
        variance = np.maximum(prior_var - np.sum(v**2, axis=0), 1e-12)
        return mean, np.sqrt(variance)
