"""Sequential Bayesian optimizer over a box domain (minimisation)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bayesopt.acquisition import (
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.kernels import Matern52Kernel

_ACQUISITIONS = ("ei", "pi", "lcb")


@dataclass(frozen=True)
class Trial:
    """One evaluated candidate."""

    x: tuple[float, ...]
    value: float


class BayesianOptimizer:
    """GP-based sequential minimiser with random-restart acquisition search.

    Parameters are normalised to the unit cube internally; candidates are
    proposed by scoring a random cloud of points (plus the incumbent's
    neighbourhood) under the acquisition function.
    """

    def __init__(
        self,
        bounds: np.ndarray,
        acquisition: str = "ei",
        kernel_length_scale: float = 0.2,
        noise: float = 1e-4,
        num_candidates: int = 256,
        initial_random: int = 3,
        seed: int = 0,
    ) -> None:
        bounds = np.asarray(bounds, dtype=float)
        if bounds.ndim != 2 or bounds.shape[1] != 2:
            raise ValueError("bounds must be an array of (lower, upper) rows")
        if np.any(bounds[:, 1] <= bounds[:, 0]):
            raise ValueError("upper bounds must exceed lower bounds")
        if acquisition not in _ACQUISITIONS:
            raise ValueError(f"acquisition must be one of {_ACQUISITIONS}")
        if initial_random < 1:
            raise ValueError("initial_random must be at least 1")
        self.bounds = bounds
        self.acquisition = acquisition
        self.num_candidates = num_candidates
        self.initial_random = initial_random
        self.rng = np.random.default_rng(seed)
        self.gp = GaussianProcess(
            kernel=Matern52Kernel(length_scale=kernel_length_scale), noise=noise
        )
        self.trials: list[Trial] = []
        #: Per-trial observation weights (parallel to ``trials``); a weight
        #: below 1 inflates that observation's GP noise by ``1 / weight``.
        self.weights: list[float] = []

    @property
    def dimension(self) -> int:
        """Number of optimised parameters."""
        return self.bounds.shape[0]

    def _normalise(self, x: np.ndarray) -> np.ndarray:
        return (x - self.bounds[:, 0]) / (self.bounds[:, 1] - self.bounds[:, 0])

    def _denormalise(self, u: np.ndarray) -> np.ndarray:
        return self.bounds[:, 0] + u * (self.bounds[:, 1] - self.bounds[:, 0])

    @property
    def best_trial(self) -> Trial | None:
        """Trial with the lowest observed value (None before any update)."""
        if not self.trials:
            return None
        return min(self.trials, key=lambda t: t.value)

    def suggest(self) -> np.ndarray:
        """Propose the next candidate parameter vector (denormalised)."""
        if len(self.trials) < self.initial_random:
            return self._denormalise(self.rng.random(self.dimension))

        x = np.asarray([t.x for t in self.trials], dtype=float)
        y = np.asarray([t.value for t in self.trials], dtype=float)
        weights = np.asarray(self.weights, dtype=float)
        if np.all(weights == 1.0):
            self.gp.fit(self._normalise(x), y)
        else:
            self.gp.fit(self._normalise(x), y, noise_scale=1.0 / weights)

        candidates = self.rng.random((self.num_candidates, self.dimension))
        best = self.best_trial
        if best is not None:
            local = self._normalise(np.asarray(best.x)) + self.rng.normal(
                0.0, 0.05, size=(max(self.num_candidates // 8, 1), self.dimension)
            )
            candidates = np.vstack([candidates, np.clip(local, 0.0, 1.0)])

        mean, std = self.gp.predict(candidates)
        incumbent = float(y.min())
        if self.acquisition == "ei":
            scores = expected_improvement(mean, std, incumbent)
        elif self.acquisition == "pi":
            scores = probability_of_improvement(mean, std, incumbent)
        else:
            scores = lower_confidence_bound(mean, std)
        return self._denormalise(candidates[int(np.argmax(scores))])

    def update(self, x: np.ndarray, value: float, weight: float = 1.0) -> None:
        """Record the observed objective ``value`` at candidate ``x``.

        ``weight`` (in ``(0, 1]``) marks softer evidence: the GP treats the
        observation with noise variance scaled by ``1 / weight``, so decayed
        warm-start trials influence the surrogate without being mistaken for
        fresh measurements.
        """
        x = np.asarray(x, dtype=float).ravel()
        if x.shape[0] != self.dimension:
            raise ValueError("candidate has the wrong dimensionality")
        if not np.isfinite(value):
            raise ValueError("objective value must be finite")
        if not 0.0 < weight <= 1.0:
            raise ValueError("weight must be in (0, 1]")
        self.trials.append(Trial(x=tuple(float(v) for v in x), value=float(value)))
        self.weights.append(float(weight))

    def minimize(self, objective, num_iterations: int = 20) -> Trial:
        """Convenience loop: suggest → evaluate → update, returning the best trial."""
        if num_iterations <= 0:
            raise ValueError("num_iterations must be positive")
        for _ in range(num_iterations):
            candidate = self.suggest()
            self.update(candidate, float(objective(candidate)))
        best = self.best_trial
        assert best is not None
        return best
