"""Online Bayesian Optimization (OBO) with warm starts across activations.

§3.1: "The optimization process initializes with default parameters and, upon
activation of the QoE adjustment mechanism, leverages previously optimized
configurations as initialization points for subsequent iterations."  The
wrapper below keeps a per-user history of (parameters, exit rate) trials;
every new activation spins up a fresh :class:`BayesianOptimizer` seeded with a
decayed subset of that history so the search is responsive to temporal drift
while still benefiting from what was already learned.
"""

from __future__ import annotations

import numpy as np

from repro.bayesopt.optimizer import BayesianOptimizer, Trial


class OnlineBayesianOptimizer:
    """Warm-started sequence of Bayesian optimization rounds."""

    def __init__(
        self,
        bounds: np.ndarray,
        acquisition: str = "ei",
        memory: int = 12,
        decay: float = 0.8,
        seed: int = 0,
    ) -> None:
        if memory < 1:
            raise ValueError("memory must be at least 1")
        if not 0 < decay <= 1:
            raise ValueError("decay must be in (0, 1]")
        self.bounds = np.asarray(bounds, dtype=float)
        self.acquisition = acquisition
        self.memory = memory
        self.decay = decay
        self.seed = seed
        self._history: list[Trial] = []
        self._round = 0
        self._active: BayesianOptimizer | None = None

    @property
    def history(self) -> list[Trial]:
        """Trials carried across activations."""
        return list(self._history)

    @property
    def best_trial(self) -> Trial | None:
        """Best trial across the whole history."""
        if not self._history:
            return None
        return min(self._history, key=lambda t: t.value)

    #: Warm-start trials whose decayed weight falls below this are dropped
    #: from the new round's surrogate entirely.
    MIN_WARM_START_WEIGHT = 0.1

    def start_round(self, incumbent: np.ndarray | None = None, incumbent_value: float | None = None) -> None:
        """Begin a new activation (``OBO.init`` in Algorithm 1).

        ``incumbent``/``incumbent_value`` optionally record the currently
        deployed parameters and their freshly measured objective, which become
        part of the warm start; supplying one without the other is an error
        (a half-specified incumbent used to be silently discarded).

        Decay semantics: the warm start walks the retained history from
        newest to oldest with weight ``decay ** age``.  A trial's weight both
        *gates* its inclusion (below :attr:`MIN_WARM_START_WEIGHT` it is
        dropped) and *weights* the surviving observation in the new
        surrogate — the GP's noise for that trial scales by ``1 / weight``,
        so stale measurements pull the posterior progressively less than
        fresh ones instead of counting as full-strength evidence.
        """
        if (incumbent is None) != (incumbent_value is None):
            raise ValueError(
                "incumbent and incumbent_value must be supplied together "
                "(got only one of them)"
            )
        self._round += 1
        optimizer = BayesianOptimizer(
            bounds=self.bounds,
            acquisition=self.acquisition,
            seed=self.seed + self._round,
        )
        if incumbent is not None and incumbent_value is not None:
            self._history.append(
                Trial(x=tuple(float(v) for v in np.asarray(incumbent, dtype=float)), value=float(incumbent_value))
            )
        # Decayed warm start: most recent trials, newest weighted strongest.
        recent = self._history[-self.memory :]
        for age, trial in enumerate(reversed(recent)):
            weight = self.decay**age
            if weight < self.MIN_WARM_START_WEIGHT:
                continue
            optimizer.update(np.asarray(trial.x), trial.value, weight=weight)
        self._active = optimizer

    def next_candidate(self) -> np.ndarray:
        """Next parameter vector to evaluate (``OBO.next_candidate``)."""
        if self._active is None:
            self.start_round()
        assert self._active is not None
        return self._active.suggest()

    def update(self, x: np.ndarray, value: float) -> None:
        """Record an evaluated candidate (``OBO.update``)."""
        if self._active is None:
            raise RuntimeError("update called before start_round")
        self._active.update(x, value)
        self._history.append(self._active.trials[-1])
        if len(self._history) > 10 * self.memory:
            del self._history[: len(self._history) - 10 * self.memory]
