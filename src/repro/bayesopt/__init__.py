"""Bayesian optimization (Gaussian-process surrogate + acquisition functions).

LingXi treats the mapping from QoE parameters to the user's exit rate as a
black box and optimises it with Online Bayesian Optimization (§3.1): a GP
surrogate is fitted to the (parameters, exit-rate) trials observed so far, an
acquisition function proposes the next candidate, and successive activations
of the QoE-adjustment mechanism warm-start from the previous optimum.

* :mod:`repro.bayesopt.kernels` — RBF and Matérn-5/2 kernels.
* :mod:`repro.bayesopt.gp` — Gaussian-process regression (Cholesky based).
* :mod:`repro.bayesopt.acquisition` — Expected Improvement, Probability of
  Improvement, Lower Confidence Bound (we minimise).
* :mod:`repro.bayesopt.optimizer` — the sequential :class:`BayesianOptimizer`.
* :mod:`repro.bayesopt.online` — :class:`OnlineBayesianOptimizer`, the
  warm-started OBO wrapper used by the LingXi controller.
"""

from repro.bayesopt.kernels import RBFKernel, Matern52Kernel
from repro.bayesopt.gp import GaussianProcess
from repro.bayesopt.acquisition import (
    expected_improvement,
    probability_of_improvement,
    lower_confidence_bound,
)
from repro.bayesopt.optimizer import BayesianOptimizer, Trial
from repro.bayesopt.online import OnlineBayesianOptimizer

__all__ = [
    "RBFKernel",
    "Matern52Kernel",
    "GaussianProcess",
    "expected_improvement",
    "probability_of_improvement",
    "lower_confidence_bound",
    "BayesianOptimizer",
    "Trial",
    "OnlineBayesianOptimizer",
]
