"""LingXi controller (Algorithm 1) and the ``LingXiABR`` integration wrapper.

The controller owns the per-user optimization loop: it accumulates the dual
layer user state from played segments, decides when to activate (trigger of
§4), prunes activations that cannot help, and — when activated — runs either
online Bayesian optimization (``L(B)``) or a fixed candidate sweep (``L(F)``)
with the Monte-Carlo evaluator scoring each candidate.  The best candidate
becomes the ABR's new objective.

:class:`LingXiABR` packages a controller together with any
:class:`~repro.abr.base.ABRAlgorithm` so the combination drops straight into
the session engine: bitrate decisions are delegated to the wrapped algorithm
and every downloaded segment is fed back into the controller through the
``observe`` hook.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.abr.base import ABRAlgorithm, QoEParameters
from repro.bayesopt.online import OnlineBayesianOptimizer
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloConfig, MonteCarloEvaluator
from repro.core.parameter_space import ParameterSpace
from repro.core.state import PlayerSnapshot, UserState
from repro.core.triggers import PruningPolicy, TriggerPolicy
from repro.sim.bandwidth import BandwidthModel
from repro.sim.session import ABRContext, SegmentRecord


@dataclass(frozen=True)
class ControllerConfig:
    """Optimization-loop knobs of Algorithm 1."""

    mode: str = "bayesian"
    max_sample_times: int = 6
    fixed_candidates_per_dimension: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mode not in ("bayesian", "fixed"):
            raise ValueError("mode must be 'bayesian' or 'fixed'")
        if self.max_sample_times < 1:
            raise ValueError("max_sample_times must be at least 1")
        if self.fixed_candidates_per_dimension < 2:
            raise ValueError("fixed_candidates_per_dimension must be at least 2")


@dataclass(frozen=True)
class OptimizationEvent:
    """Record of one activation of the QoE-adjustment mechanism."""

    activation_index: int
    trigger_stall_count: int
    chosen_parameters: QoEParameters
    predicted_exit_rate: float
    candidates_evaluated: int


class LingXiController:
    """Per-user personalization loop: state tracking + triggered optimization."""

    def __init__(
        self,
        parameter_space: ParameterSpace,
        predictor: ExitRatePredictor,
        monte_carlo: MonteCarloConfig | None = None,
        trigger: TriggerPolicy | None = None,
        pruning: PruningPolicy | None = None,
        config: ControllerConfig | None = None,
    ) -> None:
        self.parameter_space = parameter_space
        self.predictor = predictor
        self.config = config or ControllerConfig()
        self.trigger = trigger or TriggerPolicy()
        self.pruning = pruning or PruningPolicy()
        self.evaluator = MonteCarloEvaluator(
            predictor, config=monte_carlo, pruning=self.pruning
        )
        self.obo = OnlineBayesianOptimizer(
            bounds=parameter_space.bounds_array(), seed=self.config.seed
        )
        self.user_state = UserState()
        self.best_parameters = parameter_space.to_parameters(parameter_space.default_vector())
        self.stalls_since_optimization = 0
        self.history: list[OptimizationEvent] = []
        self._rng = np.random.default_rng(self.config.seed)

    def start_session(self) -> None:
        """Reset the short-term state layer at session start."""
        self.user_state.start_session()

    def observe_segment(
        self,
        bitrate_kbps: float,
        throughput_kbps: float,
        stall_time: float,
        segment_duration: float,
        exited: bool = False,
    ) -> None:
        """Fold one played segment into the user state and the trigger counter."""
        self.user_state.observe_segment(
            bitrate_kbps=bitrate_kbps,
            throughput_kbps=throughput_kbps,
            stall_time=stall_time,
            segment_duration=segment_duration,
            exited=exited,
        )
        if stall_time > 1e-12:
            self.stalls_since_optimization += 1

    def should_optimize(self, bandwidth: BandwidthModel, max_bitrate_kbps: float) -> bool:
        """Trigger threshold reached and not pruned away by the bandwidth rule."""
        if not self.trigger.should_trigger(self.stalls_since_optimization):
            return False
        if self.pruning.skip_optimization(bandwidth, max_bitrate_kbps):
            return False
        return True

    def draw_activation_seed(self) -> int:
        """Seed shared by all candidates of one activation (common random numbers).

        Drawn from the controller's private stream, one per activation, so a
        controller's sequence of activation seeds is independent of *where*
        its sessions execute (scalar loop or the lockstep controller host).
        """
        return int(self._rng.integers(2**31 - 1))

    def select_best(
        self, candidates: list[QoEParameters], values: list[float]
    ) -> tuple[QoEParameters, float]:
        """Lowest-predicted-exit-rate candidate (first wins ties), as the
        fixed-mode sweep picks it; falls back to the current deployment when
        every value is non-finite."""
        best_value = float("inf")
        best_parameters = self.best_parameters
        for candidate, value in zip(candidates, values):
            if value < best_value:
                best_value = value
                best_parameters = candidate
        return best_parameters, best_value

    def finish_activation(
        self, best_parameters: QoEParameters, best_value: float, evaluated: int
    ) -> QoEParameters:
        """Record one completed activation and deploy its winner.

        Shared bookkeeping tail of :meth:`optimize`, also driven directly by
        :class:`~repro.core.vector_host.VectorControllerHost` when the
        evaluation itself was batched across sessions.
        """
        self.history.append(
            OptimizationEvent(
                activation_index=len(self.history),
                trigger_stall_count=self.stalls_since_optimization,
                chosen_parameters=best_parameters,
                predicted_exit_rate=float(best_value),
                candidates_evaluated=evaluated,
            )
        )
        self.best_parameters = best_parameters
        self.stalls_since_optimization = 0
        return best_parameters

    def optimize(self, abr: ABRAlgorithm, snapshot: PlayerSnapshot) -> QoEParameters:
        """Run one activation: evaluate candidates and deploy the best one.

        All candidates within one activation are evaluated under common random
        numbers (the same Monte-Carlo seed), so the comparison between
        candidates is paired and not dominated by sampling noise.
        """
        activation_seed = self.draw_activation_seed()

        def evaluate(parameters: QoEParameters, best: float) -> float:
            return self.evaluator.evaluate(
                parameters,
                abr,
                snapshot,
                self.user_state,
                rng=np.random.default_rng(activation_seed),
                best_exit_rate=best,
            )

        if self.config.mode == "fixed":
            candidates = self.parameter_space.candidate_grid(
                self.config.fixed_candidates_per_dimension
            )
            evaluate_many = getattr(self.evaluator, "evaluate_many", None)
            if evaluate_many is not None:
                # Batched sweep: all candidates' Monte-Carlo rollouts advance
                # as one lockstep batch.  Identically seeded per-candidate
                # generators keep the comparison paired (common random
                # numbers) like the sequential sweep below, but without its
                # inter-candidate pruning: every candidate runs its full
                # budget, so a candidate the sequential sweep would have
                # aborted can occasionally win here.
                values = evaluate_many(
                    candidates,
                    abr,
                    snapshot,
                    self.user_state,
                    rngs=[
                        np.random.default_rng(activation_seed) for _ in candidates
                    ],
                )
            else:
                values = []
                best_so_far = float("inf")
                for candidate in candidates:
                    value = evaluate(candidate, best_so_far)
                    values.append(value)
                    best_so_far = min(best_so_far, value)
            best_parameters, best_value = self.select_best(candidates, values)
            evaluated = len(candidates)
        else:
            incumbent_vector = self.parameter_space.to_vector(self.best_parameters)
            incumbent_value = evaluate(self.best_parameters, float("inf"))
            self.obo.start_round(incumbent=incumbent_vector, incumbent_value=incumbent_value)
            best_value = incumbent_value
            best_parameters = self.best_parameters
            for _ in range(self.config.max_sample_times):
                candidate_vector = self.obo.next_candidate()
                candidate = self.parameter_space.to_parameters(candidate_vector)
                value = evaluate(candidate, best_value)
                self.obo.update(candidate_vector, value)
                if value < best_value:
                    best_value = value
                    best_parameters = candidate
            evaluated = self.config.max_sample_times + 1

        return self.finish_activation(best_parameters, best_value, evaluated)


class LingXiABR(ABRAlgorithm):
    """Any ABR + a LingXi controller, packaged as a single session-ready ABR."""

    def __init__(
        self,
        inner: ABRAlgorithm,
        controller: LingXiController,
        bandwidth_window: int = 8,
    ) -> None:
        super().__init__(inner.parameters)
        self.inner = inner
        self.controller = controller
        self.bandwidth_model = BandwidthModel(window=bandwidth_window)
        self._last_context: ABRContext | None = None
        self.inner.set_parameters(controller.best_parameters)
        super().set_parameters(controller.best_parameters)

    @property
    def name(self) -> str:
        """LingXi-wrapped name, e.g. ``LingXi(HYB)``."""
        return f"LingXi({self.inner.name})"

    def reset(self) -> None:
        """Start a new session on both the inner ABR and the controller."""
        self.inner.reset()
        self.controller.start_session()
        self._last_context = None

    def set_parameters(self, parameters: QoEParameters) -> None:
        """Forward parameter changes to the wrapped algorithm."""
        super().set_parameters(parameters)
        self.inner.set_parameters(parameters)

    def select_level(self, context: ABRContext) -> int:
        """Delegate the bitrate decision to the wrapped algorithm."""
        self._last_context = context
        return self.inner.select_level(context)

    def observe(self, record: SegmentRecord) -> None:
        """Segment feedback hook called by the session engine after each download."""
        context = self._last_context
        if context is None:
            return
        self.bandwidth_model.update(record.bandwidth_kbps)
        self.controller.observe_segment(
            bitrate_kbps=record.bitrate_kbps,
            throughput_kbps=record.bandwidth_kbps,
            stall_time=record.stall_time,
            segment_duration=context.segment_duration,
            exited=record.exited,
        )
        if not self.controller.should_optimize(self.bandwidth_model, context.ladder.max_bitrate):
            return
        snapshot = PlayerSnapshot(
            ladder=context.ladder,
            segment_duration=context.segment_duration,
            buffer=record.buffer_after,
            last_level=record.level,
            bandwidth_model=self.bandwidth_model.copy(),
        )
        new_parameters = self.controller.optimize(self.inner, snapshot)
        self.set_parameters(new_parameters)
