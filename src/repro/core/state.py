"""Dual-layer user state and the player snapshot used for virtual playback.

LingXi tracks "comprehensive state, including historical stall, user
engagement, buffer occupancy, and bitrate" (§1) and manages it in two layers
(§4): short-term state is re-initialised at every session start, long-term
state (engagement history) persists across sessions and is serialised when
the app terminates.  :class:`UserState` implements both layers and produces
exactly the 5×8 feature matrix the exit-rate predictor was trained on
(:mod:`repro.datasets.stall_dataset`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.datasets.stall_dataset import (
    WINDOW_LENGTH,
    _BITRATE_SCALE,
    _LONG_TERM_SCALE,
    _RECENCY_SCALE,
    _STALL_CUMULATIVE_SCALE,
    _THROUGHPUT_SCALE,
    estimate_tolerance,
)
from repro.sim.bandwidth import BandwidthModel
from repro.sim.video import BitrateLadder


@dataclass
class UserState:
    """Short-term playback window plus long-term engagement counters."""

    # Short-term (reset every session)
    bitrates_kbps: list[float] = field(default_factory=list)
    throughputs_kbps: list[float] = field(default_factory=list)
    stall_times: list[float] = field(default_factory=list)
    cumulative_stall_history: list[float] = field(default_factory=list)
    segments_since_stall_history: list[float] = field(default_factory=list)
    session_stall_count: int = 0
    session_stall_time: float = 0.0
    session_watch_time: float = 0.0

    # Long-term (persists across sessions)
    segments_since_stall_exit: float = _LONG_TERM_SCALE
    lifetime_stall_events: int = 0
    lifetime_stall_exits: int = 0
    lifetime_segments: int = 0
    stall_exit_time_sum: float = 0.0
    max_survived_stall_time: float = 0.0

    def start_session(self) -> None:
        """Reset the short-term layer (long-term counters are kept)."""
        self.bitrates_kbps = []
        self.throughputs_kbps = []
        self.stall_times = []
        self.cumulative_stall_history = []
        self.segments_since_stall_history = []
        self.session_stall_count = 0
        self.session_stall_time = 0.0
        self.session_watch_time = 0.0

    def observe_segment(
        self,
        bitrate_kbps: float,
        throughput_kbps: float,
        stall_time: float,
        segment_duration: float,
        exited: bool = False,
    ) -> None:
        """Fold one played segment into both state layers."""
        if bitrate_kbps <= 0 or throughput_kbps <= 0:
            raise ValueError("bitrate and throughput must be positive")
        if stall_time < 0 or segment_duration <= 0:
            raise ValueError("invalid stall_time or segment_duration")
        self.bitrates_kbps.append(float(bitrate_kbps))
        self.throughputs_kbps.append(float(throughput_kbps))
        self.stall_times.append(float(stall_time))
        stalled = stall_time > 0
        if stalled:
            self.session_stall_count += 1
            self.session_stall_time += stall_time
            self.lifetime_stall_events += 1
            since_stall = 0.0
        else:
            previous = (
                self.segments_since_stall_history[-1]
                if self.segments_since_stall_history
                else float(WINDOW_LENGTH)
            )
            since_stall = previous + 1.0
        self.cumulative_stall_history.append(self.session_stall_time)
        self.segments_since_stall_history.append(since_stall)
        self.session_watch_time += segment_duration
        self.lifetime_segments += 1
        self.segments_since_stall_exit += 1.0
        if exited and stalled:
            self.lifetime_stall_exits += 1
            self.segments_since_stall_exit = 0.0
            self.stall_exit_time_sum += self.session_stall_time
        elif not exited:
            self.max_survived_stall_time = max(
                self.max_survived_stall_time, self.session_stall_time
            )

    @property
    def stall_exit_propensity(self) -> float:
        """Lifetime fraction of stall events followed by an exit."""
        if self.lifetime_stall_events == 0:
            return 0.0
        return self.lifetime_stall_exits / self.lifetime_stall_events

    @property
    def tolerance_estimate_s(self) -> float:
        """Personal stall-tolerance estimate (seconds) from engagement history."""
        return estimate_tolerance(
            self.stall_exit_time_sum,
            self.lifetime_stall_exits,
            self.max_survived_stall_time,
        )

    def feature_matrix(self) -> np.ndarray:
        """The 5×8 predictor input for the *current* decision point."""

        def window(values: list[float], scale: float) -> np.ndarray:
            out = np.zeros(WINDOW_LENGTH)
            recent = values[-WINDOW_LENGTH:]
            if recent:
                out[-len(recent) :] = np.asarray(recent) / scale
            return out

        return np.vstack(
            [
                window(self.bitrates_kbps, _BITRATE_SCALE),
                window(self.throughputs_kbps, _THROUGHPUT_SCALE),
                window(self.cumulative_stall_history, _STALL_CUMULATIVE_SCALE),
                window(self.segments_since_stall_history, _RECENCY_SCALE),
                np.full(
                    WINDOW_LENGTH, self.tolerance_estimate_s / _STALL_CUMULATIVE_SCALE
                ),
            ]
        )

    def copy(self) -> "UserState":
        """Independent copy used to seed virtual (Monte-Carlo) playback."""
        clone = UserState(
            bitrates_kbps=list(self.bitrates_kbps),
            throughputs_kbps=list(self.throughputs_kbps),
            stall_times=list(self.stall_times),
            cumulative_stall_history=list(self.cumulative_stall_history),
            segments_since_stall_history=list(self.segments_since_stall_history),
            session_stall_count=self.session_stall_count,
            session_stall_time=self.session_stall_time,
            session_watch_time=self.session_watch_time,
            segments_since_stall_exit=self.segments_since_stall_exit,
            lifetime_stall_events=self.lifetime_stall_events,
            lifetime_stall_exits=self.lifetime_stall_exits,
            lifetime_segments=self.lifetime_segments,
            stall_exit_time_sum=self.stall_exit_time_sum,
            max_survived_stall_time=self.max_survived_stall_time,
        )
        return clone

    def long_term_dict(self) -> dict[str, float]:
        """Long-term layer as a plain dict (for persistence)."""
        return {
            "segments_since_stall_exit": float(self.segments_since_stall_exit),
            "lifetime_stall_events": int(self.lifetime_stall_events),
            "lifetime_stall_exits": int(self.lifetime_stall_exits),
            "lifetime_segments": int(self.lifetime_segments),
            "stall_exit_time_sum": float(self.stall_exit_time_sum),
            "max_survived_stall_time": float(self.max_survived_stall_time),
        }

    def restore_long_term(self, payload: dict[str, float]) -> None:
        """Restore the long-term layer from :meth:`long_term_dict` output."""
        self.segments_since_stall_exit = float(
            payload.get("segments_since_stall_exit", _LONG_TERM_SCALE)
        )
        self.lifetime_stall_events = int(payload.get("lifetime_stall_events", 0))
        self.lifetime_stall_exits = int(payload.get("lifetime_stall_exits", 0))
        self.lifetime_segments = int(payload.get("lifetime_segments", 0))
        self.stall_exit_time_sum = float(payload.get("stall_exit_time_sum", 0.0))
        self.max_survived_stall_time = float(payload.get("max_survived_stall_time", 0.0))


@dataclass
class PlayerSnapshot:
    """Everything virtual playback needs to start from the live player's state."""

    ladder: BitrateLadder
    segment_duration: float
    buffer: float
    last_level: int | None
    bandwidth_model: BandwidthModel
    rtt: float = 0.08
    base_buffer_cap: float = 12.0

    def __post_init__(self) -> None:
        if self.segment_duration <= 0:
            raise ValueError("segment_duration must be positive")
        if self.buffer < 0:
            raise ValueError("buffer must be non-negative")

    @property
    def max_bitrate_kbps(self) -> float:
        """Top rung of the ladder (used by the pre-playback pruning rule)."""
        return self.ladder.max_bitrate
