"""LingXi core: the paper's primary contribution.

* :mod:`repro.core.state` — dual-layer (short-term / long-term) user state and
  the player snapshot handed to virtual playback.
* :mod:`repro.core.statistics_model` — the overall-statistics (OS) exit-rate
  model for video quality and smoothness.
* :mod:`repro.core.exit_predictor` — the hybrid exit-rate predictor of
  Equation 4 (personalised neural network for stalls + OS for the rest).
* :mod:`repro.core.monte_carlo` — the Monte-Carlo parameter evaluator of
  Algorithm 2.
* :mod:`repro.core.parameter_space` — which objective parameters LingXi tunes
  for a given ABR and over what ranges.
* :mod:`repro.core.triggers` — activation threshold and pruning rules (§4).
* :mod:`repro.core.controller` — the online controller of Algorithm 1 and the
  :class:`~repro.core.controller.LingXiABR` wrapper that plugs into any ABR.
* :mod:`repro.core.persistence` — JSON persistence of long-term state.
"""

from repro.core.state import UserState, PlayerSnapshot
from repro.core.statistics_model import OverallStatisticsModel
from repro.core.exit_predictor import ExitRatePredictor
from repro.core.monte_carlo import MonteCarloEvaluator, MonteCarloConfig
from repro.core.parameter_space import ParameterSpace
from repro.core.triggers import TriggerPolicy, PruningPolicy
from repro.core.controller import LingXiController, LingXiABR, ControllerConfig
from repro.core.persistence import (
    controller_state_payload,
    load_long_term_state,
    restore_controller_state,
    save_long_term_state,
)

__all__ = [
    "UserState",
    "PlayerSnapshot",
    "OverallStatisticsModel",
    "ExitRatePredictor",
    "MonteCarloEvaluator",
    "MonteCarloConfig",
    "ParameterSpace",
    "TriggerPolicy",
    "PruningPolicy",
    "LingXiController",
    "LingXiABR",
    "ControllerConfig",
    "save_long_term_state",
    "load_long_term_state",
    "controller_state_payload",
    "restore_controller_state",
]
