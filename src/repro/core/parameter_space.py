"""Which objective parameters LingXi tunes for a given ABR, and over what ranges."""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product

import numpy as np

from repro.abr.base import QoEParameters

_TUNABLE_FIELDS = ("stall_penalty", "switch_penalty", "beta")


@dataclass(frozen=True)
class ParameterSpace:
    """A box domain over a subset of :class:`QoEParameters` fields.

    ``names`` picks the tuned fields; anything not named keeps the value from
    ``defaults``.  Two ready-made spaces cover the paper's experiments:
    :meth:`for_qoe_lin` (stall 1–20, switch 0–4, the §5.2 simulation) and
    :meth:`for_hyb` (``beta`` 0.4–1.0, the §5.3 production integration).
    """

    names: tuple[str, ...]
    bounds: tuple[tuple[float, float], ...]
    defaults: QoEParameters = field(default_factory=QoEParameters)

    def __post_init__(self) -> None:
        if not self.names:
            raise ValueError("need at least one tuned parameter")
        if len(self.names) != len(self.bounds):
            raise ValueError("names and bounds must align")
        for name in self.names:
            if name not in _TUNABLE_FIELDS:
                raise ValueError(f"unknown parameter {name!r}; expected one of {_TUNABLE_FIELDS}")
        for low, high in self.bounds:
            if high <= low:
                raise ValueError("each bound must satisfy low < high")

    @classmethod
    def for_qoe_lin(
        cls,
        stall_range: tuple[float, float] = (1.0, 20.0),
        switch_range: tuple[float, float] = (0.0, 4.0),
        defaults: QoEParameters | None = None,
    ) -> "ParameterSpace":
        """Stall/switch-weight space used with RobustMPC and Pensieve (§5.2)."""
        return cls(
            names=("stall_penalty", "switch_penalty"),
            bounds=(stall_range, switch_range),
            defaults=defaults or QoEParameters(),
        )

    @classmethod
    def for_hyb(
        cls,
        beta_range: tuple[float, float] = (0.4, 1.0),
        defaults: QoEParameters | None = None,
    ) -> "ParameterSpace":
        """Aggressiveness (``beta``) space used with HYB (§5.3)."""
        return cls(names=("beta",), bounds=(beta_range,), defaults=defaults or QoEParameters())

    @property
    def dimension(self) -> int:
        """Number of tuned parameters."""
        return len(self.names)

    def bounds_array(self) -> np.ndarray:
        """Bounds as a (d, 2) array for the optimizers."""
        return np.asarray(self.bounds, dtype=float)

    def to_parameters(self, vector: np.ndarray) -> QoEParameters:
        """Embed an optimizer vector into a full :class:`QoEParameters`."""
        vector = np.asarray(vector, dtype=float).ravel()
        if vector.shape[0] != self.dimension:
            raise ValueError("vector dimensionality mismatch")
        changes = {}
        for name, value, (low, high) in zip(self.names, vector, self.bounds):
            changes[name] = float(np.clip(value, low, high))
        return self.defaults.replace(**changes)

    def to_vector(self, parameters: QoEParameters) -> np.ndarray:
        """Extract the tuned fields of ``parameters`` as a vector."""
        return np.asarray([getattr(parameters, name) for name in self.names], dtype=float)

    def default_vector(self) -> np.ndarray:
        """Vector form of the default parameters, clipped into the bounds."""
        raw = self.to_vector(self.defaults)
        lows = np.asarray([b[0] for b in self.bounds])
        highs = np.asarray([b[1] for b in self.bounds])
        return np.clip(raw, lows, highs)

    def candidate_grid(self, points_per_dimension: int = 4) -> list[QoEParameters]:
        """A fixed candidate set (the ``L(F)`` variant of §5.2)."""
        if points_per_dimension < 2:
            raise ValueError("points_per_dimension must be at least 2")
        axes = [
            np.linspace(low, high, points_per_dimension) for low, high in self.bounds
        ]
        return [self.to_parameters(np.asarray(combo)) for combo in product(*axes)]

    def sample(self, rng: np.random.Generator) -> QoEParameters:
        """Uniformly random parameters inside the box."""
        lows = np.asarray([b[0] for b in self.bounds])
        highs = np.asarray([b[1] for b in self.bounds])
        return self.to_parameters(lows + rng.random(self.dimension) * (highs - lows))
