"""Hybrid exit-rate predictor (Equation 4).

``R_exit = NN(Stall) + OS(Quality, Smoothness)`` when the segment stalled,
``OS(Quality, Smoothness)`` otherwise.  The neural part is the branched
1D-CNN of Figure 7 trained on the stall-event dataset with balanced
undersampling (§3.3); the OS part is the population-level
:class:`~repro.core.statistics_model.OverallStatisticsModel`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.statistics_model import OverallStatisticsModel
from repro.datasets.stall_dataset import ExitDataset, NUM_FEATURES, WINDOW_LENGTH
from repro.nn.metrics import classification_report
from repro.nn.network import MultiBranchNetwork
from repro.nn.sampling import balanced_undersample, stratified_split


@dataclass(frozen=True)
class PredictorEvaluation:
    """Headline metrics of the predictor on a held-out set."""

    accuracy: float
    precision: float
    recall: float
    f1: float

    def as_dict(self) -> dict[str, float]:
        """Plain-dict view."""
        return {
            "accuracy": self.accuracy,
            "precision": self.precision,
            "recall": self.recall,
            "f1": self.f1,
        }


class ExitRatePredictor:
    """Hybrid stall-NN + overall-statistics exit-rate predictor."""

    def __init__(
        self,
        statistics_model: OverallStatisticsModel | None = None,
        channels: int = 64,
        kernel_size: int = 4,
        hidden: int = 64,
        seed: int = 0,
    ) -> None:
        self.statistics_model = statistics_model or OverallStatisticsModel()
        self.network = MultiBranchNetwork(
            num_features=NUM_FEATURES,
            length=WINDOW_LENGTH,
            channels=channels,
            kernel_size=kernel_size,
            hidden=hidden,
            num_classes=2,
            seed=seed,
        )
        self._trained = False

    @property
    def is_trained(self) -> bool:
        """True once :meth:`train` has been called."""
        return self._trained

    def train(
        self,
        dataset: ExitDataset,
        balanced: bool = True,
        epochs: int = 12,
        batch_size: int = 64,
        learning_rate: float = 1e-3,
        seed: int = 0,
    ) -> list[float]:
        """Train the stall network; returns per-epoch losses."""
        features, labels = dataset.features, dataset.labels
        if balanced:
            features, labels = balanced_undersample(features, labels, seed=seed)
        losses = self.network.fit(
            features,
            labels,
            epochs=epochs,
            batch_size=batch_size,
            learning_rate=learning_rate,
            seed=seed,
        )
        self._trained = True
        return losses

    def stall_exit_probability(self, feature_matrix: np.ndarray) -> float:
        """NN(Stall): exit probability for one 5×8 feature matrix."""
        matrix = np.asarray(feature_matrix, dtype=float)
        if matrix.shape != (NUM_FEATURES, WINDOW_LENGTH):
            raise ValueError(
                f"expected a ({NUM_FEATURES}, {WINDOW_LENGTH}) matrix, got {matrix.shape}"
            )
        probabilities = self.network.predict_proba(matrix[None, :, :])
        return float(probabilities[0, 1])

    def predict(
        self,
        feature_matrix: np.ndarray,
        level: int,
        switch_magnitude: int,
        stalled: bool,
    ) -> float:
        """Equation 4: hybrid segment-level exit probability."""
        baseline = self.statistics_model.predict(level, switch_magnitude)
        if not stalled:
            return baseline
        return float(np.clip(baseline + self.stall_exit_probability(feature_matrix), 0.0, 1.0))

    def predict_batch(self, features: np.ndarray) -> np.ndarray:
        """NN class probabilities for a batch of feature matrices (n, 5, 8)."""
        return self.network.predict_proba(np.asarray(features, dtype=float))

    def evaluate(self, features: np.ndarray, labels: np.ndarray) -> PredictorEvaluation:
        """Accuracy / precision / recall / F1 of the NN on a labelled set."""
        predictions = self.network.predict(np.asarray(features, dtype=float))
        report = classification_report(np.asarray(labels, dtype=int), predictions)
        return PredictorEvaluation(**report)


def train_and_evaluate(
    dataset: ExitDataset,
    balanced: bool = True,
    test_fraction: float = 0.2,
    epochs: int = 12,
    seed: int = 0,
    statistics_model: OverallStatisticsModel | None = None,
) -> tuple[ExitRatePredictor, PredictorEvaluation]:
    """80/20 stratified split, train on the training part, evaluate on the rest.

    This is the experimental protocol of §5.1 (Figure 9): identical dataset
    partitioning and sampling across dataset compositions.
    """
    x_train, y_train, x_test, y_test = stratified_split(
        dataset.features, dataset.labels, test_fraction=test_fraction, seed=seed
    )
    predictor = ExitRatePredictor(statistics_model=statistics_model, seed=seed)
    train_subset = ExitDataset(
        features=x_train, labels=y_train, composition=dataset.composition
    )
    predictor.train(train_subset, balanced=balanced, epochs=epochs, seed=seed)
    evaluation = predictor.evaluate(x_test, y_test)
    return predictor, evaluation
